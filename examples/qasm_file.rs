//! Load an OpenQASM 2.0 circuit and simulate it under the paper's noise
//! model.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example qasm_file               # uses a built-in sample
//! cargo run --release --example qasm_file -- my_circuit.qasm
//! ```

use qsdd::circuit::qasm::parse_source;
use qsdd::core::StochasticSimulator;
use qsdd::noise::NoiseModel;

/// A small built-in sample (a 4-qubit entangled adder-like circuit) used when
/// no file is given on the command line.
const SAMPLE: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
h q[1];
cx q[0], q[2];
ccx q[0], q[1], q[3];
rz(pi/4) q[2];
cx q[1], q[3];
measure q -> c;
"#;

fn main() {
    let source = match std::env::args().nth(1) {
        Some(path) => {
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read `{path}`: {e}"))
        }
        None => SAMPLE.to_string(),
    };

    let circuit = match parse_source(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let stats = circuit.stats();
    println!(
        "parsed circuit: {} qubits, {} gates (depth {}), {} measurements",
        circuit.num_qubits(),
        stats.gate_count,
        stats.depth,
        stats.measure_count
    );

    let simulator = StochasticSimulator::new()
        .with_shots(1000)
        .with_noise(NoiseModel::paper_defaults())
        .with_seed(1);
    let result = simulator.run(&circuit);

    println!(
        "{} shots in {:.3} s ({} threads), {:.3} error events per run",
        result.shots,
        result.wall_time.as_secs_f64(),
        result.threads,
        result.error_rate()
    );
    let mut outcomes: Vec<_> = result.counts.iter().collect();
    outcomes.sort_by(|a, b| b.1.cmp(a.1));
    println!("top outcomes:");
    for (outcome, count) in outcomes.into_iter().take(8) {
        println!(
            "  {outcome:0width$b}  {count:5} ({:.2} %)",
            100.0 * *count as f64 / result.shots as f64,
            width = circuit.num_qubits()
        );
    }
}
