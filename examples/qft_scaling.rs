//! Quantum Fourier Transform scaling — a small interactive version of
//! Table Ib of the paper, with decision diagram size statistics.
//!
//! Run with `cargo run --release --example qft_scaling`.

use std::time::Instant;

use qsdd::circuit::generators::qft;
use qsdd::core::{BackendKind, DdSimulator, StochasticSimulator};
use qsdd::noise::NoiseModel;

fn main() {
    let shots = 200;
    let noise = NoiseModel::paper_defaults();
    println!("QFT scaling, {shots} stochastic runs per point, paper noise model");
    println!(
        "{:>6} {:>10} {:>10} {:>16} {:>16}",
        "qubits", "gates", "DD nodes", "DD time [s]", "dense time [s]"
    );

    for qubits in [8usize, 12, 16, 20, 24, 32, 48, 64] {
        let circuit = qft(qubits);
        let gates = circuit.stats().gate_count;

        // Size of the final decision diagram of a noiseless run: the QFT of
        // |0...0> is a product state, so this stays linear in the qubit count.
        let node_count = DdSimulator::new().simulate_noiseless(&circuit).node_count();

        let dd = StochasticSimulator::new()
            .with_backend(BackendKind::DecisionDiagram)
            .with_shots(shots)
            .with_noise(noise)
            .with_seed(11);
        let started = Instant::now();
        let _ = dd.run(&circuit);
        let dd_time = started.elapsed().as_secs_f64();

        let dense_time = if qubits <= 16 {
            let dense = StochasticSimulator::new()
                .with_backend(BackendKind::Statevector)
                .with_shots(shots)
                .with_noise(noise)
                .with_seed(11);
            let started = Instant::now();
            let _ = dense.run(&circuit);
            format!("{:>16.3}", started.elapsed().as_secs_f64())
        } else {
            format!("{:>16}", "skipped")
        };

        println!("{qubits:>6} {gates:>10} {node_count:>10} {dd_time:>16.3} {dense_time}");
    }
}
