//! Server smoke check: boot the HTTP service on an ephemeral port, then
//! act as a plain HTTP client — health probe, submit one GHZ job, poll it
//! to completion, verify the cache answers a repeat submission — and shut
//! the service down cleanly. CI runs this on every push.
//!
//! ```bash
//! cargo run --release --example server_smoke
//! ```

use qsdd::json::{self, Value};
use qsdd::server::{client, Server, ServerConfig};

fn main() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral loopback port");
    let addr = server.addr();
    println!("server_smoke: listening on http://{addr}");

    // 1. Health probe.
    let (status, body) = client::request(addr, "GET", "/v1/healthz", None).expect("healthz");
    assert_eq!(status, 200, "healthz returned {status}: {body}");
    println!("server_smoke: healthz ok");

    // 2. Submit one GHZ job and poll it to completion.
    let job = r#"{"circuit":{"generator":"ghz","qubits":10},"shots":500,"seed":42}"#;
    let (status, body) = client::request(addr, "POST", "/v1/jobs", Some(job)).expect("submit");
    assert_eq!(status, 202, "submit returned {status}: {body}");
    let id = json::parse(&body)
        .expect("submission response is JSON")
        .get("id")
        .and_then(Value::as_str)
        .expect("submission response carries an id")
        .to_string();
    println!("server_smoke: submitted job {id}");

    let mut session = client::Client::connect(addr).expect("connect");
    let result = loop {
        let (status, body) = session
            .request("GET", &format!("/v1/jobs/{id}"), None)
            .expect("poll");
        assert_eq!(status, 200, "poll returned {status}: {body}");
        let envelope = json::parse(&body).expect("envelope is JSON");
        match envelope.get("status").and_then(Value::as_str) {
            Some("completed") => break envelope,
            Some("failed") => panic!("job failed: {body}"),
            _ => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    };
    let shots = result
        .get("result")
        .and_then(|r| r.get("shots_executed"))
        .and_then(Value::as_u64)
        .expect("result carries shots_executed");
    assert_eq!(shots, 500);
    println!("server_smoke: job completed with {shots} shots");

    // 3. The identical submission must answer from the cache.
    let (status, body) = client::request(addr, "POST", "/v1/jobs", Some(job)).expect("resubmit");
    assert_eq!(status, 200, "cached submit returned {status}: {body}");
    assert!(
        body.contains("\"cached\":true"),
        "expected a cache hit: {body}"
    );
    let (_, stats) = client::request(addr, "GET", "/v1/stats", None).expect("stats");
    let stats = json::parse(&stats).expect("stats are JSON");
    assert_eq!(stats.get("simulations").and_then(Value::as_u64), Some(1));
    assert!(
        stats
            .get("cache_hit_rate")
            .and_then(Value::as_f64)
            .unwrap_or(0.0)
            > 0.0
    );
    println!("server_smoke: cache hit confirmed");

    // 4. Graceful shutdown over HTTP.
    let (status, _) = client::request(addr, "POST", "/v1/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    server.join();
    assert!(
        client::request(addr, "GET", "/v1/healthz", None).is_err(),
        "listener survived shutdown"
    );
    println!("server_smoke: clean shutdown — all checks passed");
}
