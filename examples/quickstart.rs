//! Quickstart: simulate a noisy GHZ-state preparation and inspect the
//! measurement statistics.
//!
//! Run with `cargo run --release --example quickstart`.

use qsdd::circuit::generators::ghz;
use qsdd::core::{Observable, StochasticSimulator};
use qsdd::noise::NoiseModel;

fn main() {
    let qubits = 12;
    let circuit = ghz(qubits);
    println!(
        "circuit: {} ({} gates)",
        circuit.name(),
        circuit.stats().gate_count
    );

    // The paper's noise model: depolarizing 0.1 %, T1 0.2 %, T2 0.1 %.
    let noise = NoiseModel::paper_defaults();
    let simulator = StochasticSimulator::new()
        .with_shots(2000)
        .with_noise(noise)
        .with_seed(2021);

    let all_ones = (1u64 << qubits) - 1;
    let result = simulator.run_with_observables(
        &circuit,
        &[
            Observable::BasisProbability(0),
            Observable::BasisProbability(all_ones),
        ],
    );

    println!(
        "{} shots on {} threads in {:.3} s",
        result.shots,
        result.threads,
        result.wall_time.as_secs_f64()
    );
    println!("average error events per run: {:.3}", result.error_rate());
    println!("P(|0...0>) ~= {:.4}", result.observable_estimates[0]);
    println!("P(|1...1>) ~= {:.4}", result.observable_estimates[1]);

    // Show the five most frequent outcomes.
    let mut outcomes: Vec<_> = result.counts.iter().collect();
    outcomes.sort_by(|a, b| b.1.cmp(a.1));
    println!("top outcomes:");
    for (outcome, count) in outcomes.into_iter().take(5) {
        println!(
            "  |{outcome:0width$b}>  {count:5} ({:.2} %)",
            100.0 * *count as f64 / result.shots as f64,
            width = qubits
        );
    }
}
