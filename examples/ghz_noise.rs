//! Entanglement (GHZ) scaling under noise — a small interactive version of
//! Table Ia of the paper.
//!
//! For a sweep of qubit counts the example runs the stochastic decision
//! diagram simulator and, where still feasible, the dense statevector
//! baseline, and reports wall-clock times and the surviving GHZ-peak
//! probability.
//!
//! Run with `cargo run --release --example ghz_noise`.

use std::time::Instant;

use qsdd::circuit::generators::ghz;
use qsdd::core::{BackendKind, StochasticSimulator};
use qsdd::noise::NoiseModel;

fn main() {
    let shots = 500;
    let noise = NoiseModel::paper_defaults();
    println!("GHZ scaling, {shots} stochastic runs per point, paper noise model");
    println!(
        "{:>6} {:>16} {:>16} {:>12}",
        "qubits", "DD time [s]", "dense time [s]", "peak mass"
    );

    for qubits in [8usize, 12, 16, 20, 24, 32, 48, 64] {
        let circuit = ghz(qubits);

        let dd = StochasticSimulator::new()
            .with_backend(BackendKind::DecisionDiagram)
            .with_shots(shots)
            .with_noise(noise)
            .with_seed(7);
        let started = Instant::now();
        let result = dd.run(&circuit);
        let dd_time = started.elapsed().as_secs_f64();

        let all_ones = if qubits == 64 {
            u64::MAX
        } else {
            (1u64 << qubits) - 1
        };
        let peak_mass = result.frequency(0) + result.frequency(all_ones);

        // The dense baseline becomes impractical quickly; only run it while
        // the state vector still fits comfortably in memory.
        let dense_time = if qubits <= 16 {
            let dense = StochasticSimulator::new()
                .with_backend(BackendKind::Statevector)
                .with_shots(shots)
                .with_noise(noise)
                .with_seed(7);
            let started = Instant::now();
            let _ = dense.run(&circuit);
            format!("{:>16.3}", started.elapsed().as_secs_f64())
        } else {
            format!("{:>16}", "skipped")
        };

        println!("{qubits:>6} {dd_time:>16.3} {dense_time} {peak_mass:>12.4}");
    }
}
