//! Monte-Carlo property estimation and the Theorem 1 sample bound.
//!
//! The example estimates several quadratic observables of a noisy GHZ
//! circuit with the stochastic decision-diagram simulator and compares them
//! against the exact values from the density-matrix reference simulator.
//! The observed errors are then put side by side with the epsilon guaranteed
//! by Theorem 1 for the used number of samples.
//!
//! Run with `cargo run --release --example property_estimation`.

use qsdd::circuit::generators::ghz;
use qsdd::core::{sampling, Observable, StochasticSimulator};
use qsdd::density;
use qsdd::noise::NoiseModel;

fn main() {
    let qubits = 5;
    let circuit = ghz(qubits);
    let noise = NoiseModel::new(0.01, 0.02, 0.01); // exaggerated noise for visible effects

    // Exact reference: the full density matrix of the noisy computation.
    let exact = density::simulate(&circuit, &noise);
    let populations = exact.populations();

    // Observables: the probabilities of the two GHZ peaks and of qubit 0
    // being excited.
    let all_ones = (1u64 << qubits) - 1;
    let observables = vec![
        Observable::BasisProbability(0),
        Observable::BasisProbability(all_ones),
        Observable::QubitExcitation(0),
    ];
    let exact_values = [
        populations[0],
        populations[all_ones as usize],
        exact.probability_one(0),
    ];

    let delta = 0.05;
    println!("Theorem 1 sample bound (delta = {delta}):");
    for epsilon in [0.05, 0.02, 0.01] {
        let m = sampling::required_samples(observables.len(), epsilon, delta);
        println!("  epsilon = {epsilon:<5} -> M = {m}");
    }

    let shots = 4000;
    let epsilon = sampling::achievable_epsilon(shots, observables.len(), delta);
    println!("\nrunning M = {shots} samples (guaranteed epsilon = {epsilon:.4})\n");

    let simulator = StochasticSimulator::new()
        .with_shots(shots)
        .with_noise(noise)
        .with_seed(99);
    let result = simulator.run_with_observables(&circuit, &observables);

    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "observable", "estimate", "exact", "abs error"
    );
    for ((observable, estimate), exact) in observables
        .iter()
        .zip(&result.observable_estimates)
        .zip(&exact_values)
    {
        println!(
            "{:<14} {:>12.5} {:>12.5} {:>12.5}",
            observable.label(),
            estimate,
            exact,
            (estimate - exact).abs()
        );
    }
    println!("\nall errors should lie below the guaranteed epsilon = {epsilon:.4}");
}
