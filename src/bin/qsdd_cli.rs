//! `qsdd-cli` — command-line front-end for the stochastic decision-diagram
//! simulator.
//!
//! ```text
//! qsdd_cli run circuit.qasm --shots 2000 --seed 7
//! qsdd_cli generate ghz 32 --shots 1000 --backend dd
//! qsdd_cli generate qft 20 --noiseless --top 10
//! qsdd_cli batch jobs.txt --out report.json
//! qsdd_cli serve --addr 127.0.0.1:8080 --threads 4
//! ```
//!
//! The tool loads a circuit (from an OpenQASM 2.0 file or a built-in
//! generator), runs the stochastic simulation under the configured noise
//! model and prints the outcome histogram; the `batch` command schedules a
//! whole job file across one shared worker pool; the `serve` command runs
//! the long-lived HTTP job service (`docs/server.md`). The complete
//! reference, including exit-code semantics, lives in `docs/cli.md`.

use std::path::Path;
use std::process::ExitCode;

use qsdd::batch::{jobfile, json::Value, run_batch, BatchOptions, BatchReport, JobStatus};
use qsdd::circuit::{generators, qasm, Circuit};
use qsdd::core::{
    BackendKind, OptLevel, Stage, StageTimings, StochasticSimulator, WeightedOptions,
};
use qsdd::noise::NoiseModel;
use qsdd::server::{serve_forever, ServerConfig};
use qsdd::transpile::{transpile, verify, DEFAULT_FIDELITY_TOLERANCE};

/// Parsed command-line options.
#[derive(Debug, Clone)]
struct Options {
    circuit: Circuit,
    shots: usize,
    threads: usize,
    intra_threads: usize,
    seed: u64,
    backend: BackendKind,
    noise: NoiseModel,
    top: usize,
    opt: OptLevel,
    verify_opt: bool,
    dedup: bool,
    profile: bool,
    format: RunFormat,
    weighted: Option<WeightedOptions>,
    timeout_ms: Option<u64>,
    trace_out: Option<String>,
}

/// Output format of the `run` / `generate` result on stdout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunFormat {
    /// Human-readable top-K histogram (the default).
    Text,
    /// A machine-readable JSON document (`qsdd_cli run ... > out.json`).
    Json,
}

/// The top-level subcommands, resolved **before** any flag parsing so a
/// typoed subcommand reports itself instead of a misleading "unknown flag"
/// from run-mode parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    Help,
    RunOrGenerate,
    Batch,
    Serve,
}

/// Classifies the first CLI argument into a subcommand.
///
/// The error message for an unrecognised word lists the valid subcommands
/// (regression: `qsdd_cli serev` used to fall through to run-mode flag
/// parsing and die with ``unknown command `serev` `` buried in flag
/// context).
fn classify_command(first: Option<&str>) -> Result<Command, String> {
    match first {
        None => Err("missing subcommand".to_string()),
        Some("--help" | "-h" | "help") => Ok(Command::Help),
        Some("run" | "generate") => Ok(Command::RunOrGenerate),
        Some("batch") => Ok(Command::Batch),
        Some("serve") => Ok(Command::Serve),
        Some(other) => Err(format!(
            "unknown subcommand `{other}`: expected run|generate|batch|serve|help"
        )),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fail = |message: String| {
        eprintln!("error: {message}");
        eprintln!();
        eprintln!("{USAGE}");
        ExitCode::FAILURE
    };
    match classify_command(args.first().map(String::as_str)) {
        Err(message) => fail(message),
        Ok(Command::Help) => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Command::Batch) => match parse_batch_args(&args[1..]) {
            Ok(options) => run_batch_command(options),
            Err(message) => fail(message),
        },
        Ok(Command::Serve) => match parse_serve_args(&args[1..]) {
            Ok(config) => run_serve_command(config),
            Err(message) => fail(message),
        },
        Ok(Command::RunOrGenerate) => match parse_args(&args) {
            Ok(options) => run(options),
            Err(message) => fail(message),
        },
    }
}

const USAGE: &str = "\
usage:
  qsdd_cli run <circuit.qasm> [options]
  qsdd_cli generate <ghz|qft|grover|bv|wstate|qaoa> <qubits> [options]
  qsdd_cli batch <jobfile> [--out <path>] [--format json|csv] [--threads <N>]
  qsdd_cli serve [--addr <host:port>] [--threads <N>] [--cache-entries <N>]
                 [--queue-depth <N>] [--store-dir <path>]

options (run / generate):
  --shots <N>          number of stochastic runs (default 1000)
  --threads <N>        worker threads, 0 = all cores (default 0)
  --intra-threads <N>  fork-join width inside each shot (default 1 = serial);
                       clamped against the shot-worker count, results are
                       bit-identical for every setting
  --seed <N>           master seed (default 2021)
  --backend <dd|dense> simulation engine (default dd)
  --opt <0|1|2>        circuit optimization level (default 0); the gate-count
                       report of the transpiler is printed for levels > 0
  --verify-opt         cross-check the optimized circuit against the original
                       via statevector fidelity before running (<= 22 qubits)
  --no-dedup           disable trajectory deduplication (per-shot execution;
                       results are identical, this is a benchmarking escape
                       hatch)
  --weighted           enumerate error trajectories in descending probability
                       order and simulate each distinct one once, exactly;
                       only the residual probability mass is sampled
  --mass-cutoff <p>    stop enumerating once this much probability mass is
                       covered (default 0.999; requires --weighted)
  --max-patterns <N>   cap on enumerated trajectories (default 1024;
                       requires --weighted)
  --exact-histogram    skip residual-tail sampling and report the enumerated
                       distribution alone (requires --weighted)
  --noiseless          disable all errors
  --depolarizing <p>   gate error probability (default 0.001)
  --damping <p>        amplitude damping / T1 probability (default 0.002)
  --phaseflip <p>      phase flip / T2 probability (default 0.001)
  --top <K>            number of outcomes to print (default 10)
  --format <text|json> result format on stdout (default text); json emits a
                       single machine-readable document, so
                       `qsdd_cli run c.qasm --format json > out.json` composes
  --profile            print a per-stage timing breakdown (parse, transpile,
                       compile, presample, execute, ...) to stderr
  --timeout <ms>       cancel the run once this many milliseconds have
                       elapsed (cooperative, checked between shots); a
                       timed-out run prints `timed_out` and exits nonzero
  --trace-out <path>   record the run's span trace and write it as Chrome
                       trace-event JSON (loadable in Perfetto or
                       chrome://tracing); results are byte-identical with
                       and without tracing

options (batch):
  --out <path>         write the report to a file instead of stdout
  --format <json|csv>  report format (default json, or inferred from --out)
  --threads <N>        worker threads shared by all jobs, 0 = all cores
  --intra-threads <N>  fork-join width inside each shot (default 1 = serial;
                       0 = big jobs borrow idle shot-workers)
  --no-dedup           disable trajectory deduplication for every job
  --profile            print the aggregated per-stage timing breakdown of
                       the whole batch to stderr
  --trace-out <path>   record the batch's span trace (scheduler chunks per
                       worker lane) as Chrome trace-event JSON

options (serve):
  --addr <host:port>   bind address (default 127.0.0.1:8080; port 0 picks
                       an ephemeral port, printed on startup)
  --threads <N>        simulation worker threads, 0 = all cores (default 0)
  --cache-entries <N>  completed results kept by the cache (default 1024)
  --queue-depth <N>    queued jobs before 429 backpressure (default 256)
  --store-dir <path>   persist completed results to this directory and
                       reload them on the next boot (default: memory-only);
                       restarts serve previously completed jobs
                       byte-identically

Diagnostics and progress lines go to stderr; stdout carries only results
(the histogram / JSON document / batch report), so output redirection
composes with pipes.

Full reference (job-file format, HTTP API, exit codes): docs/cli.md,
docs/server.md";

/// Parsed options of the `batch` subcommand.
#[derive(Debug, Clone)]
struct BatchCliOptions {
    jobfile: String,
    out: Option<String>,
    format: ReportFormat,
    threads: usize,
    intra_threads: usize,
    dedup: bool,
    profile: bool,
    trace_out: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReportFormat {
    Json,
    Csv,
}

fn parse_batch_args(args: &[String]) -> Result<BatchCliOptions, String> {
    let mut iter = args.iter();
    let jobfile = iter
        .next()
        .ok_or_else(|| "missing job file path".to_string())?
        .clone();
    let mut out = None;
    let mut format = None;
    let mut threads = 0usize;
    let mut intra_threads = 1usize;
    let mut dedup = true;
    let mut profile = false;
    let mut trace_out = None;
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--out" => out = Some(value("--out")?),
            "--threads" => threads = parse_number(&value("--threads")?)?,
            "--intra-threads" => intra_threads = parse_number(&value("--intra-threads")?)?,
            "--no-dedup" => dedup = false,
            "--profile" => profile = true,
            "--trace-out" => trace_out = Some(value("--trace-out")?),
            "--format" => {
                format = Some(match value("--format")?.as_str() {
                    "json" => ReportFormat::Json,
                    "csv" => ReportFormat::Csv,
                    other => return Err(format!("unknown format `{other}` (expected json|csv)")),
                })
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    // Without an explicit --format, infer CSV from the output extension.
    let format = format.unwrap_or_else(|| match &out {
        Some(path) if path.ends_with(".csv") => ReportFormat::Csv,
        _ => ReportFormat::Json,
    });
    Ok(BatchCliOptions {
        jobfile,
        out,
        format,
        threads,
        intra_threads,
        dedup,
        profile,
        trace_out,
    })
}

fn run_batch_command(options: BatchCliOptions) -> ExitCode {
    let jobs = match jobfile::parse_file(Path::new(&options.jobfile)) {
        Ok(jobs) => jobs,
        Err(error) => {
            eprintln!("error: {error}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("batch: {} job(s) from `{}`", jobs.len(), options.jobfile);
    if options.profile {
        // Profiling opts into process-wide telemetry: the batch pool's
        // chunk/queue/worker series publish to the global registry.
        qsdd::telemetry::set_enabled(true);
    }
    let mut batch_options =
        BatchOptions::with_threads(options.threads).with_intra_threads(options.intra_threads);
    if !options.dedup {
        batch_options = batch_options.without_dedup();
    }
    // --trace-out records the batch's scheduler chunks per worker lane.
    let tracer = options.trace_out.as_ref().map(|_| {
        qsdd::telemetry::trace::configure_trace_from_env(true);
        qsdd::telemetry::trace::Tracer::forced("batch", "batch")
    });
    let traced = tracer.as_ref().map(|tracer| tracer.install(0));
    let report = run_batch(&jobs, &batch_options);
    drop(traced);
    if let (Some(tracer), Some(path)) = (tracer, &options.trace_out) {
        if let Err(message) = write_trace(path, tracer.finish("batch")) {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    }
    print_batch_summary(&report);
    if options.profile {
        let mut total = StageTimings::new();
        for job in &report.jobs {
            total.merge(&job.stage_timings);
        }
        print_profile(&total);
    }

    let serialized = match options.format {
        ReportFormat::Json => report.to_json(),
        ReportFormat::Csv => report.to_csv(),
    };
    match &options.out {
        Some(path) => {
            if let Err(error) = std::fs::write(path, &serialized) {
                eprintln!("error: cannot write `{path}`: {error}");
                return ExitCode::FAILURE;
            }
            eprintln!("report written to `{path}`");
        }
        None => print!("{serialized}"),
    }
    if report.all_completed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Prints the human-readable per-job summary to stderr (stdout carries the
/// machine-readable report when no --out file is given).
fn print_batch_summary(report: &BatchReport) {
    for job in &report.jobs {
        match &job.status {
            JobStatus::Completed => {
                let stopped = if job.early_stopped {
                    " (early stop)"
                } else {
                    ""
                };
                eprintln!(
                    "  {:<16} {:>7}/{} shots{} on {} qubits, {:.3} err/run, \
                     {} unique trajectories ({:.1} % dedup hit rate), {:.3} s",
                    job.name,
                    job.shots_executed,
                    job.shots_requested,
                    stopped,
                    job.qubits,
                    job.error_rate(),
                    job.unique_trajectories,
                    100.0 * job.dedup_hit_rate,
                    job.wall_time.as_secs_f64(),
                );
            }
            JobStatus::Failed(message) => {
                eprintln!("  {:<16} FAILED: {message}", job.name);
            }
        }
    }
    eprintln!(
        "batch: {} shots total on {} threads in {:.3} s",
        report.total_shots(),
        report.threads,
        report.total_wall_time.as_secs_f64()
    );
}

/// Prints the `--profile` stage-breakdown table to stderr (CPU seconds per
/// pipeline stage; on multi-threaded runs the execute row sums over workers
/// and can exceed wall-clock time).
fn print_profile(timings: &StageTimings) {
    eprintln!("profile: stage breakdown");
    let total = timings.total();
    for (stage, elapsed) in timings.iter() {
        if elapsed.is_zero() {
            continue;
        }
        let share = if total.is_zero() {
            0.0
        } else {
            100.0 * elapsed.as_secs_f64() / total.as_secs_f64()
        };
        eprintln!(
            "  {:<12} {:>12.6} s  {:>5.1} %",
            stage.name(),
            elapsed.as_secs_f64(),
            share
        );
    }
    eprintln!("  {:<12} {:>12.6} s", "total", total.as_secs_f64());
}

/// Writes a finished trace as Chrome trace-event JSON (Perfetto /
/// `chrome://tracing` loadable) and reports it on stderr.
fn write_trace(path: &str, trace: qsdd::telemetry::trace::Trace) -> Result<(), String> {
    std::fs::write(path, trace.to_chrome_json().to_pretty_string())
        .map_err(|error| format!("cannot write trace `{path}`: {error}"))?;
    eprintln!("trace written to `{path}` ({} spans)", trace.spans.len());
    Ok(())
}

fn parse_serve_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:8080".to_string(),
        ..ServerConfig::default()
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--threads" => config.threads = parse_number(&value("--threads")?)?,
            "--cache-entries" => {
                config.cache_entries = parse_number(&value("--cache-entries")?)?;
                if config.cache_entries == 0 {
                    return Err("--cache-entries must be positive".to_string());
                }
            }
            "--queue-depth" => {
                config.queue_depth = parse_number(&value("--queue-depth")?)?;
                if config.queue_depth == 0 {
                    return Err("--queue-depth must be positive".to_string());
                }
            }
            "--store-dir" => config.store_dir = Some(value("--store-dir")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(config)
}

fn run_serve_command(config: ServerConfig) -> ExitCode {
    // The startup banner (bound address, endpoint list) is diagnostics, so
    // it goes to stderr like every other non-result line.
    match serve_forever(config, &mut std::io::stderr()) {
        Ok(()) => {
            eprintln!("qsdd-server: shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: cannot serve: {error}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    if args.is_empty() {
        return Err("missing command".to_string());
    }
    let mut iter = args.iter().peekable();
    let command = iter.next().expect("nonempty").as_str();
    let circuit = match command {
        "run" => {
            let path = iter
                .next()
                .ok_or_else(|| "missing OpenQASM file path".to_string())?;
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            qasm::parse_source(&source).map_err(|e| e.to_string())?
        }
        "generate" => {
            let kind = iter
                .next()
                .ok_or_else(|| "missing generator name".to_string())?;
            let qubits: usize = iter
                .next()
                .ok_or_else(|| "missing qubit count".to_string())?
                .parse()
                .map_err(|_| "qubit count must be an integer".to_string())?;
            build_generator(kind, qubits)?
        }
        other => return Err(format!("unknown command `{other}`")),
    };

    let mut options = Options {
        circuit,
        shots: 1000,
        threads: 0,
        intra_threads: 1,
        seed: 2021,
        backend: BackendKind::DecisionDiagram,
        noise: NoiseModel::paper_defaults(),
        top: 10,
        opt: OptLevel::O0,
        verify_opt: false,
        dedup: true,
        profile: false,
        format: RunFormat::Text,
        weighted: None,
        timeout_ms: None,
        trace_out: None,
    };
    let mut depolarizing = options.noise.depolarizing_prob();
    let mut damping = options.noise.amplitude_damping_prob();
    let mut phase_flip = options.noise.phase_flip_prob();
    let mut noiseless = false;
    let mut weighted = false;
    let mut weighted_options = WeightedOptions::default();
    let mut weighted_knob_seen: Option<&'static str> = None;

    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--shots" => options.shots = parse_number(&value("--shots")?)?,
            "--threads" => options.threads = parse_number(&value("--threads")?)?,
            "--intra-threads" => {
                options.intra_threads = parse_number(&value("--intra-threads")?)?;
                if options.intra_threads == 0 {
                    return Err("--intra-threads must be at least 1".to_string());
                }
            }
            "--seed" => options.seed = parse_number(&value("--seed")?)? as u64,
            "--top" => options.top = parse_number(&value("--top")?)?,
            "--backend" => {
                options.backend = match value("--backend")?.as_str() {
                    "dd" => BackendKind::DecisionDiagram,
                    "dense" => BackendKind::Statevector,
                    other => return Err(format!("unknown backend `{other}`")),
                }
            }
            "--opt" => {
                options.opt = value("--opt")?.parse::<OptLevel>()?;
            }
            "--verify-opt" => options.verify_opt = true,
            "--no-dedup" => options.dedup = false,
            "--profile" => options.profile = true,
            "--format" => {
                options.format = match value("--format")?.as_str() {
                    "text" => RunFormat::Text,
                    "json" => RunFormat::Json,
                    other => return Err(format!("unknown format `{other}` (expected text|json)")),
                }
            }
            "--noiseless" => noiseless = true,
            "--depolarizing" => depolarizing = parse_probability(&value("--depolarizing")?)?,
            "--damping" => damping = parse_probability(&value("--damping")?)?,
            "--phaseflip" => phase_flip = parse_probability(&value("--phaseflip")?)?,
            "--weighted" => weighted = true,
            "--mass-cutoff" => {
                let cutoff = parse_probability(&value("--mass-cutoff")?)?;
                if cutoff == 0.0 {
                    return Err("--mass-cutoff must be in (0, 1]".to_string());
                }
                weighted_options.mass_cutoff = cutoff;
                weighted_knob_seen = Some("--mass-cutoff");
            }
            "--max-patterns" => {
                weighted_options.max_patterns = parse_number(&value("--max-patterns")?)? as u64;
                weighted_knob_seen = Some("--max-patterns");
            }
            "--exact-histogram" => {
                weighted_options.exact_histogram = true;
                weighted_knob_seen = Some("--exact-histogram");
            }
            "--timeout" => {
                let ms = parse_number(&value("--timeout")?)? as u64;
                if ms == 0 {
                    return Err("--timeout must be at least 1 millisecond".to_string());
                }
                options.timeout_ms = Some(ms);
            }
            "--trace-out" => options.trace_out = Some(value("--trace-out")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    options.noise = if noiseless {
        NoiseModel::noiseless()
    } else {
        NoiseModel::new(depolarizing, damping, phase_flip)
    };
    if weighted {
        options.weighted = Some(weighted_options);
    } else if let Some(knob) = weighted_knob_seen {
        // A tuning knob without the mode is almost certainly a mistake —
        // silently sampling every shot would hide it.
        return Err(format!("{knob} requires --weighted"));
    }
    Ok(options)
}

fn build_generator(kind: &str, qubits: usize) -> Result<Circuit, String> {
    generators::by_name(kind, qubits).ok_or_else(|| match generators::min_qubits(kind) {
        Some(min) => format!("generator `{kind}` needs at least {min} qubit(s), got {qubits}"),
        None => format!("unknown generator `{kind}`"),
    })
}

fn parse_number(text: &str) -> Result<usize, String> {
    text.parse()
        .map_err(|_| format!("`{text}` is not a valid number"))
}

fn parse_probability(text: &str) -> Result<f64, String> {
    let p: f64 = text
        .parse()
        .map_err(|_| format!("`{text}` is not a valid probability"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability {p} is outside [0, 1]"));
    }
    Ok(p)
}

fn run(options: Options) -> ExitCode {
    if options.profile {
        // Profiling opts into process-wide telemetry (stage histograms,
        // DD table counters); the per-job table works either way.
        qsdd::telemetry::set_enabled(true);
    }
    // Everything up to the result is diagnostics and goes to stderr, so
    // `qsdd_cli run c.qasm --format json > out.json` captures only the
    // result document.
    let stats = options.circuit.stats();
    eprintln!(
        "circuit `{}`: {} qubits, {} gates, depth {}",
        options.circuit.name(),
        options.circuit.num_qubits(),
        stats.gate_count,
        stats.depth
    );
    eprintln!(
        "noise: depolarizing {:.4}, damping {:.4}, phase flip {:.4}",
        options.noise.depolarizing_prob(),
        options.noise.amplitude_damping_prob(),
        options.noise.phase_flip_prob()
    );

    // Transpile once: the same result feeds the report, the optional
    // verification and the simulation itself.
    let transpiled = (options.opt != OptLevel::O0).then(|| {
        let transpiled = transpile(&options.circuit, options.opt);
        eprint!("{}", transpiled.report);
        transpiled
    });
    if let (Some(transpiled), true) = (&transpiled, options.verify_opt) {
        if options.circuit.num_qubits() <= 22 {
            match verify::verify(&options.circuit, transpiled, DEFAULT_FIDELITY_TOLERANCE) {
                Ok(fidelity) => eprintln!("verified: fidelity {fidelity:.12}"),
                Err(error) => {
                    eprintln!("error: {error}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            eprintln!(
                "warning: --verify-opt skipped (needs a dense statevector, circuit too wide)"
            );
        }
    }

    let mut simulator = StochasticSimulator::new()
        .with_backend(options.backend)
        .with_shots(options.shots)
        .with_threads(options.threads)
        .with_intra_threads(options.intra_threads)
        .with_seed(options.seed)
        .with_noise(options.noise)
        .with_dedup(options.dedup);
    if let Some(weighted) = options.weighted.clone() {
        simulator = simulator.with_weighted(weighted);
    }
    // The run's deadline (when --timeout set one). Cancellation is
    // cooperative — checked between shots — so a timed-out run exits
    // promptly without leaving partial results on stdout.
    let deadline = match options.timeout_ms {
        Some(ms) => qsdd::core::Deadline::from_millis(ms),
        None => qsdd::core::Deadline::unbounded(),
    };
    // --trace-out opts this run into span tracing: install the tracer on
    // this thread so the engine drivers' spans (presample, shots, worker
    // lanes) land in it. The trace never changes the result — it is
    // written to its own file after the run.
    let tracer = options.trace_out.as_ref().map(|_| {
        qsdd::telemetry::trace::configure_trace_from_env(true);
        qsdd::telemetry::trace::Tracer::forced(options.circuit.name(), options.circuit.name())
    });
    let traced = tracer.as_ref().map(|tracer| tracer.install(0));
    let result = match &transpiled {
        Some(transpiled) => simulator.run_transpiled_deadline(transpiled, &[], &deadline),
        None => simulator.run_with_observables_deadline(&options.circuit, &[], &deadline),
    };
    drop(traced);
    let result = match result {
        Ok(result) => result,
        Err(qsdd::core::TimedOut) => {
            eprintln!(
                "error: timed_out: the run exceeded its {} ms deadline",
                options.timeout_ms.unwrap_or(0)
            );
            return ExitCode::FAILURE;
        }
    };
    if let (Some(tracer), Some(path)) = (tracer, &options.trace_out) {
        if let Err(message) = write_trace(path, tracer.finish("job")) {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    }

    eprintln!(
        "{} shots on {} threads in {:.3} s ({:.3} error events per run)",
        result.shots,
        result.threads,
        result.wall_time.as_secs_f64(),
        result.error_rate()
    );
    if options.backend == BackendKind::DecisionDiagram {
        eprintln!(
            "dd nodes: {:.1} avg final, {} peak (high-water during shots)",
            result.dd_nodes_avg, result.dd_nodes_peak
        );
    }
    if let Some(stats) = &result.dedup {
        eprintln!(
            "trajectories: {} unique / {} shots ({:.1} % dedup hit rate, {} live)",
            stats.unique_trajectories,
            result.shots,
            100.0 * result.dedup_hit_rate(),
            stats.live_shots
        );
    }
    if let Some(stats) = &result.weighted {
        eprintln!(
            "weighted: {} trajectories enumerated, covering {:.4} % of the \
             probability mass ({} tail shots for the residual)",
            stats.enumerated_trajectories,
            100.0 * stats.covered_mass,
            stats.tail_shots
        );
    }
    if options.profile {
        print_profile(&result.stage_timings);
    }

    match options.format {
        RunFormat::Json => println!("{}", run_result_json(&options, &result)),
        RunFormat::Text => {
            let mut outcomes: Vec<_> = result.counts.iter().collect();
            outcomes.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
            println!("top {} outcomes:", options.top.min(outcomes.len()));
            for (outcome, count) in outcomes.into_iter().take(options.top) {
                println!(
                    "  |{outcome:0width$b}>  {count:6}  ({:.2} %)",
                    100.0 * *count as f64 / result.shots as f64,
                    width = options.circuit.num_qubits()
                );
            }
        }
    }
    ExitCode::SUCCESS
}

/// The `--format json` result document: the full outcome (histogram,
/// error/node statistics, dedup stats, wall time, stage breakdown) as one
/// JSON object with deterministically ordered keys and counts.
fn run_result_json(options: &Options, result: &qsdd::core::StochasticOutcome) -> String {
    let mut pairs = vec![
        ("format".to_string(), Value::from("qsdd-run-result/1")),
        ("circuit".to_string(), Value::from(options.circuit.name())),
        (
            "qubits".to_string(),
            Value::from(options.circuit.num_qubits()),
        ),
        (
            "backend".to_string(),
            Value::from(match options.backend {
                BackendKind::DecisionDiagram => "dd",
                BackendKind::Statevector => "dense",
            }),
        ),
        ("seed".to_string(), Value::from(options.seed)),
        ("shots".to_string(), Value::from(result.shots)),
        ("threads".to_string(), Value::from(result.threads)),
        ("error_events".to_string(), Value::from(result.error_events)),
        ("error_rate".to_string(), Value::from(result.error_rate())),
        ("dd_nodes_avg".to_string(), Value::from(result.dd_nodes_avg)),
        (
            "dd_nodes_peak".to_string(),
            Value::from(result.dd_nodes_peak),
        ),
        (
            "wall_time_secs".to_string(),
            Value::from(result.wall_time.as_secs_f64()),
        ),
    ];
    if let Some(stats) = &result.dedup {
        pairs.push((
            "dedup".to_string(),
            Value::object(vec![
                (
                    "unique_trajectories".to_string(),
                    Value::from(stats.unique_trajectories),
                ),
                ("live_shots".to_string(), Value::from(stats.live_shots)),
            ]),
        ));
    }
    if let Some(stats) = &result.weighted {
        pairs.push((
            "weighted".to_string(),
            Value::object(vec![
                (
                    "enumerated_trajectories".to_string(),
                    Value::from(stats.enumerated_trajectories),
                ),
                ("covered_mass".to_string(), Value::from(stats.covered_mass)),
                ("tail_shots".to_string(), Value::from(stats.tail_shots)),
            ]),
        ));
    }
    pairs.push((
        "stage_seconds".to_string(),
        Value::object(
            Stage::ALL
                .iter()
                .map(|&stage| {
                    (
                        stage.name().to_string(),
                        Value::from(result.stage_timings.get(stage).as_secs_f64()),
                    )
                })
                .collect(),
        ),
    ));
    let counts: std::collections::BTreeMap<u64, u64> =
        result.counts.iter().map(|(&k, &v)| (k, v)).collect();
    pairs.push((
        "counts".to_string(),
        Value::Array(
            counts
                .into_iter()
                .map(|(outcome, count)| {
                    Value::object(vec![
                        ("outcome".to_string(), Value::from(outcome)),
                        ("count".to_string(), Value::from(count)),
                    ])
                })
                .collect(),
        ),
    ));
    Value::object(pairs).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_generate_command_with_flags() {
        let options = parse_args(&args(&[
            "generate",
            "ghz",
            "12",
            "--shots",
            "50",
            "--backend",
            "dense",
            "--noiseless",
            "--top",
            "3",
        ]))
        .unwrap();
        assert_eq!(options.circuit.num_qubits(), 12);
        assert_eq!(options.shots, 50);
        assert_eq!(options.backend, BackendKind::Statevector);
        assert!(options.noise.is_noiseless());
        assert_eq!(options.top, 3);
    }

    #[test]
    fn parses_noise_overrides() {
        let options = parse_args(&args(&[
            "generate",
            "qft",
            "5",
            "--depolarizing",
            "0.01",
            "--damping",
            "0.02",
            "--phaseflip",
            "0.03",
        ]))
        .unwrap();
        assert!((options.noise.depolarizing_prob() - 0.01).abs() < 1e-12);
        assert!((options.noise.amplitude_damping_prob() - 0.02).abs() < 1e-12);
        assert!((options.noise.phase_flip_prob() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn rejects_unknown_flags_and_commands() {
        assert!(parse_args(&args(&["explode"])).is_err());
        assert!(parse_args(&args(&["generate", "ghz", "4", "--wat"])).is_err());
        assert!(parse_args(&args(&["generate", "nope", "4"])).is_err());
        assert!(parse_args(&args(&["generate", "ghz", "four"])).is_err());
        assert!(parse_args(&args(&["run"])).is_err());
    }

    #[test]
    fn rejects_invalid_probability() {
        let result = parse_args(&args(&["generate", "ghz", "4", "--damping", "1.5"]));
        assert!(result.is_err());
    }

    #[test]
    fn parses_opt_level_and_verify_flag() {
        let options = parse_args(&args(&[
            "generate",
            "qft",
            "6",
            "--opt",
            "2",
            "--verify-opt",
        ]))
        .unwrap();
        assert_eq!(options.opt, OptLevel::O2);
        assert!(options.verify_opt);
        let defaults = parse_args(&args(&["generate", "qft", "6"])).unwrap();
        assert_eq!(defaults.opt, OptLevel::O0);
        assert!(!defaults.verify_opt);
    }

    #[test]
    fn parses_the_no_dedup_escape_hatch() {
        let defaults = parse_args(&args(&["generate", "ghz", "4"])).unwrap();
        assert!(defaults.dedup, "dedup must default on");
        let off = parse_args(&args(&["generate", "ghz", "4", "--no-dedup"])).unwrap();
        assert!(!off.dedup);
        let batch_defaults = parse_batch_args(&args(&["jobs.txt"])).unwrap();
        assert!(batch_defaults.dedup);
        let batch_off = parse_batch_args(&args(&["jobs.txt", "--no-dedup"])).unwrap();
        assert!(!batch_off.dedup);
    }

    #[test]
    fn parses_profile_and_run_format_flags() {
        let defaults = parse_args(&args(&["generate", "ghz", "4"])).unwrap();
        assert!(!defaults.profile);
        assert_eq!(defaults.format, RunFormat::Text);
        let options = parse_args(&args(&[
            "generate",
            "ghz",
            "4",
            "--profile",
            "--format",
            "json",
        ]))
        .unwrap();
        assert!(options.profile);
        assert_eq!(options.format, RunFormat::Json);
        assert!(parse_args(&args(&["generate", "ghz", "4", "--format", "xml"])).is_err());
        assert!(parse_args(&args(&["generate", "ghz", "4", "--format"])).is_err());

        let batch_defaults = parse_batch_args(&args(&["jobs.txt"])).unwrap();
        assert!(!batch_defaults.profile);
        let batch_on = parse_batch_args(&args(&["jobs.txt", "--profile"])).unwrap();
        assert!(batch_on.profile);
    }

    #[test]
    fn parses_weighted_flags() {
        let defaults = parse_args(&args(&["generate", "ghz", "4"])).unwrap();
        assert!(defaults.weighted.is_none());
        let on = parse_args(&args(&["generate", "ghz", "4", "--weighted"])).unwrap();
        assert_eq!(on.weighted, Some(WeightedOptions::default()));
        let tuned = parse_args(&args(&[
            "generate",
            "ghz",
            "4",
            "--weighted",
            "--mass-cutoff",
            "0.75",
            "--max-patterns",
            "64",
            "--exact-histogram",
        ]))
        .unwrap();
        let options = tuned.weighted.unwrap();
        assert_eq!(options.mass_cutoff, 0.75);
        assert_eq!(options.max_patterns, 64);
        assert!(options.exact_histogram);
        // Tuning knobs without the mode are an error, not a silent no-op.
        let err = parse_args(&args(&["generate", "ghz", "4", "--mass-cutoff", "0.5"])).unwrap_err();
        assert!(err.contains("requires --weighted"), "{err}");
        let err = parse_args(&args(&["generate", "ghz", "4", "--exact-histogram"])).unwrap_err();
        assert!(err.contains("requires --weighted"), "{err}");
        assert!(parse_args(&args(&[
            "generate",
            "ghz",
            "4",
            "--weighted",
            "--mass-cutoff",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "generate",
            "ghz",
            "4",
            "--weighted",
            "--mass-cutoff",
            "1.5"
        ]))
        .is_err());
    }

    #[test]
    fn parses_intra_threads_on_run_and_batch() {
        let defaults = parse_args(&args(&["generate", "ghz", "4"])).unwrap();
        assert_eq!(defaults.intra_threads, 1);
        let wide = parse_args(&args(&["generate", "ghz", "4", "--intra-threads", "4"])).unwrap();
        assert_eq!(wide.intra_threads, 4);
        // Run mode has no borrow-idle-workers auto mode: 0 is an error, not
        // a silent serial run.
        let err = parse_args(&args(&["generate", "ghz", "4", "--intra-threads", "0"])).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        assert!(parse_args(&args(&["generate", "ghz", "4", "--intra-threads"])).is_err());

        let batch_defaults = parse_batch_args(&args(&["jobs.txt"])).unwrap();
        assert_eq!(batch_defaults.intra_threads, 1);
        // Batch mode does: 0 lends idle shot-workers to big jobs.
        let auto = parse_batch_args(&args(&["jobs.txt", "--intra-threads", "0"])).unwrap();
        assert_eq!(auto.intra_threads, 0);
        let wide = parse_batch_args(&args(&["jobs.txt", "--intra-threads", "2"])).unwrap();
        assert_eq!(wide.intra_threads, 2);
    }

    #[test]
    fn rejects_unknown_opt_level() {
        assert!(parse_args(&args(&["generate", "ghz", "4", "--opt", "9"])).is_err());
        assert!(parse_args(&args(&["generate", "ghz", "4", "--opt"])).is_err());
    }

    #[test]
    fn parses_batch_flags() {
        let options = parse_batch_args(&args(&[
            "jobs.txt",
            "--out",
            "report.json",
            "--format",
            "json",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(options.jobfile, "jobs.txt");
        assert_eq!(options.out.as_deref(), Some("report.json"));
        assert_eq!(options.format, ReportFormat::Json);
        assert_eq!(options.threads, 4);
    }

    #[test]
    fn batch_format_is_inferred_from_the_out_extension() {
        let csv = parse_batch_args(&args(&["jobs.txt", "--out", "r.csv"])).unwrap();
        assert_eq!(csv.format, ReportFormat::Csv);
        let json = parse_batch_args(&args(&["jobs.txt", "--out", "r.json"])).unwrap();
        assert_eq!(json.format, ReportFormat::Json);
        let bare = parse_batch_args(&args(&["jobs.txt"])).unwrap();
        assert_eq!(bare.format, ReportFormat::Json);
        assert_eq!(bare.threads, 0);
    }

    #[test]
    fn unknown_subcommands_name_themselves_not_a_flag() {
        // Regression: `qsdd_cli serev` used to fall through to run-mode
        // parsing and die with a misleading flag error.
        let err = classify_command(Some("serev")).unwrap_err();
        assert!(err.contains("unknown subcommand `serev`"), "{err}");
        assert!(err.contains("run|generate|batch|serve|help"), "{err}");
        assert_eq!(classify_command(None).unwrap_err(), "missing subcommand");
        for (word, expected) in [
            ("run", Command::RunOrGenerate),
            ("generate", Command::RunOrGenerate),
            ("batch", Command::Batch),
            ("serve", Command::Serve),
            ("help", Command::Help),
            ("--help", Command::Help),
        ] {
            assert_eq!(classify_command(Some(word)).unwrap(), expected);
        }
    }

    #[test]
    fn parses_serve_flags_with_defaults() {
        let defaults = parse_serve_args(&args(&[])).unwrap();
        assert_eq!(defaults.addr, "127.0.0.1:8080");
        assert_eq!(defaults.threads, 0);
        assert_eq!(defaults.cache_entries, 1024);
        assert_eq!(defaults.queue_depth, 256);
        assert_eq!(defaults.store_dir, None);
        let custom = parse_serve_args(&args(&[
            "--addr",
            "0.0.0.0:9000",
            "--threads",
            "4",
            "--cache-entries",
            "64",
            "--queue-depth",
            "16",
            "--store-dir",
            "/tmp/results",
        ]))
        .unwrap();
        assert_eq!(custom.addr, "0.0.0.0:9000");
        assert_eq!(custom.threads, 4);
        assert_eq!(custom.cache_entries, 64);
        assert_eq!(custom.queue_depth, 16);
        assert_eq!(custom.store_dir.as_deref(), Some("/tmp/results"));
    }

    #[test]
    fn serve_rejects_bad_invocations() {
        assert!(parse_serve_args(&args(&["--wat"])).is_err());
        assert!(parse_serve_args(&args(&["--addr"])).is_err());
        assert!(parse_serve_args(&args(&["--cache-entries", "0"])).is_err());
        assert!(parse_serve_args(&args(&["--queue-depth", "0"])).is_err());
        assert!(parse_serve_args(&args(&["--threads", "x"])).is_err());
        assert!(parse_serve_args(&args(&["--store-dir"])).is_err());
    }

    #[test]
    fn parses_the_run_timeout_flag() {
        let defaults = parse_args(&args(&["generate", "ghz", "4"])).unwrap();
        assert_eq!(defaults.timeout_ms, None);
        let bounded = parse_args(&args(&["generate", "ghz", "4", "--timeout", "2500"])).unwrap();
        assert_eq!(bounded.timeout_ms, Some(2500));
        assert!(parse_args(&args(&["generate", "ghz", "4", "--timeout", "0"])).is_err());
        assert!(parse_args(&args(&["generate", "ghz", "4", "--timeout"])).is_err());
    }

    #[test]
    fn parses_the_trace_out_flag_on_run_and_batch() {
        let defaults = parse_args(&args(&["generate", "ghz", "4"])).unwrap();
        assert_eq!(defaults.trace_out, None);
        let traced = parse_args(&args(&["generate", "ghz", "4", "--trace-out", "t.json"])).unwrap();
        assert_eq!(traced.trace_out.as_deref(), Some("t.json"));
        assert!(parse_args(&args(&["generate", "ghz", "4", "--trace-out"])).is_err());

        let batch_defaults = parse_batch_args(&args(&["jobs.txt"])).unwrap();
        assert_eq!(batch_defaults.trace_out, None);
        let batch_traced =
            parse_batch_args(&args(&["jobs.txt", "--trace-out", "batch.json"])).unwrap();
        assert_eq!(batch_traced.trace_out.as_deref(), Some("batch.json"));
        assert!(parse_batch_args(&args(&["jobs.txt", "--trace-out"])).is_err());
    }

    #[test]
    fn batch_rejects_bad_invocations() {
        assert!(parse_batch_args(&args(&[])).is_err());
        assert!(parse_batch_args(&args(&["jobs.txt", "--format", "xml"])).is_err());
        assert!(parse_batch_args(&args(&["jobs.txt", "--wat"])).is_err());
        assert!(parse_batch_args(&args(&["jobs.txt", "--out"])).is_err());
    }
}
