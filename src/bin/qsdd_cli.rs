//! `qsdd-cli` — command-line front-end for the stochastic decision-diagram
//! simulator.
//!
//! ```text
//! qsdd_cli run circuit.qasm --shots 2000 --seed 7
//! qsdd_cli generate ghz 32 --shots 1000 --backend dd
//! qsdd_cli generate qft 20 --noiseless --top 10
//! ```
//!
//! The tool loads a circuit (from an OpenQASM 2.0 file or a built-in
//! generator), runs the stochastic simulation under the configured noise
//! model and prints the outcome histogram.

use std::process::ExitCode;

use qsdd::circuit::{generators, qasm, Circuit};
use qsdd::core::{BackendKind, OptLevel, StochasticSimulator};
use qsdd::noise::NoiseModel;
use qsdd::transpile::{transpile, verify, DEFAULT_FIDELITY_TOLERANCE};

/// Parsed command-line options.
#[derive(Debug, Clone)]
struct Options {
    circuit: Circuit,
    shots: usize,
    threads: usize,
    seed: u64,
    backend: BackendKind,
    noise: NoiseModel,
    top: usize,
    opt: OptLevel,
    verify_opt: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    run(options)
}

const USAGE: &str = "\
usage:
  qsdd_cli run <circuit.qasm> [options]
  qsdd_cli generate <ghz|qft|grover|bv|wstate|qaoa> <qubits> [options]

options:
  --shots <N>          number of stochastic runs (default 1000)
  --threads <N>        worker threads, 0 = all cores (default 0)
  --seed <N>           master seed (default 2021)
  --backend <dd|dense> simulation engine (default dd)
  --opt <0|1|2>        circuit optimization level (default 0); the gate-count
                       report of the transpiler is printed for levels > 0
  --verify-opt         cross-check the optimized circuit against the original
                       via statevector fidelity before running (<= 22 qubits)
  --noiseless          disable all errors
  --depolarizing <p>   gate error probability (default 0.001)
  --damping <p>        amplitude damping / T1 probability (default 0.002)
  --phaseflip <p>      phase flip / T2 probability (default 0.001)
  --top <K>            number of outcomes to print (default 10)";

fn parse_args(args: &[String]) -> Result<Options, String> {
    if args.is_empty() {
        return Err("missing command".to_string());
    }
    let mut iter = args.iter().peekable();
    let command = iter.next().expect("nonempty").as_str();
    let circuit = match command {
        "run" => {
            let path = iter
                .next()
                .ok_or_else(|| "missing OpenQASM file path".to_string())?;
            let source =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            qasm::parse_source(&source).map_err(|e| e.to_string())?
        }
        "generate" => {
            let kind = iter
                .next()
                .ok_or_else(|| "missing generator name".to_string())?;
            let qubits: usize = iter
                .next()
                .ok_or_else(|| "missing qubit count".to_string())?
                .parse()
                .map_err(|_| "qubit count must be an integer".to_string())?;
            build_generator(kind, qubits)?
        }
        other => return Err(format!("unknown command `{other}`")),
    };

    let mut options = Options {
        circuit,
        shots: 1000,
        threads: 0,
        seed: 2021,
        backend: BackendKind::DecisionDiagram,
        noise: NoiseModel::paper_defaults(),
        top: 10,
        opt: OptLevel::O0,
        verify_opt: false,
    };
    let mut depolarizing = options.noise.depolarizing_prob();
    let mut damping = options.noise.amplitude_damping_prob();
    let mut phase_flip = options.noise.phase_flip_prob();
    let mut noiseless = false;

    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--shots" => options.shots = parse_number(&value("--shots")?)?,
            "--threads" => options.threads = parse_number(&value("--threads")?)?,
            "--seed" => options.seed = parse_number(&value("--seed")?)? as u64,
            "--top" => options.top = parse_number(&value("--top")?)?,
            "--backend" => {
                options.backend = match value("--backend")?.as_str() {
                    "dd" => BackendKind::DecisionDiagram,
                    "dense" => BackendKind::Statevector,
                    other => return Err(format!("unknown backend `{other}`")),
                }
            }
            "--opt" => {
                options.opt = value("--opt")?.parse::<OptLevel>()?;
            }
            "--verify-opt" => options.verify_opt = true,
            "--noiseless" => noiseless = true,
            "--depolarizing" => depolarizing = parse_probability(&value("--depolarizing")?)?,
            "--damping" => damping = parse_probability(&value("--damping")?)?,
            "--phaseflip" => phase_flip = parse_probability(&value("--phaseflip")?)?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    options.noise = if noiseless {
        NoiseModel::noiseless()
    } else {
        NoiseModel::new(depolarizing, damping, phase_flip)
    };
    Ok(options)
}

fn build_generator(kind: &str, qubits: usize) -> Result<Circuit, String> {
    let circuit = match kind {
        "ghz" | "entanglement" => generators::ghz(qubits),
        "qft" => generators::qft(qubits),
        "grover" => generators::grover(qubits, 1, None),
        "bv" => generators::bernstein_vazirani(qubits, 0x5555_5555_5555_5555),
        "wstate" => generators::w_state(qubits),
        "qaoa" => generators::qaoa_maxcut_ring(qubits, &[(0.4, 0.9), (0.7, 0.3)]),
        other => return Err(format!("unknown generator `{other}`")),
    };
    Ok(circuit)
}

fn parse_number(text: &str) -> Result<usize, String> {
    text.parse()
        .map_err(|_| format!("`{text}` is not a valid number"))
}

fn parse_probability(text: &str) -> Result<f64, String> {
    let p: f64 = text
        .parse()
        .map_err(|_| format!("`{text}` is not a valid probability"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability {p} is outside [0, 1]"));
    }
    Ok(p)
}

fn run(options: Options) -> ExitCode {
    let stats = options.circuit.stats();
    println!(
        "circuit `{}`: {} qubits, {} gates, depth {}",
        options.circuit.name(),
        options.circuit.num_qubits(),
        stats.gate_count,
        stats.depth
    );
    println!(
        "noise: depolarizing {:.4}, damping {:.4}, phase flip {:.4}",
        options.noise.depolarizing_prob(),
        options.noise.amplitude_damping_prob(),
        options.noise.phase_flip_prob()
    );

    // Transpile once: the same result feeds the report, the optional
    // verification and the simulation itself.
    let transpiled = (options.opt != OptLevel::O0).then(|| {
        let transpiled = transpile(&options.circuit, options.opt);
        print!("{}", transpiled.report);
        transpiled
    });
    if let (Some(transpiled), true) = (&transpiled, options.verify_opt) {
        if options.circuit.num_qubits() <= 22 {
            match verify::verify(&options.circuit, transpiled, DEFAULT_FIDELITY_TOLERANCE) {
                Ok(fidelity) => println!("verified: fidelity {fidelity:.12}"),
                Err(error) => {
                    eprintln!("error: {error}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            eprintln!(
                "warning: --verify-opt skipped (needs a dense statevector, circuit too wide)"
            );
        }
    }

    let simulator = StochasticSimulator::new()
        .with_backend(options.backend)
        .with_shots(options.shots)
        .with_threads(options.threads)
        .with_seed(options.seed)
        .with_noise(options.noise);
    let result = match &transpiled {
        Some(transpiled) => simulator.run_transpiled(transpiled, &[]),
        None => simulator.run(&options.circuit),
    };

    println!(
        "{} shots on {} threads in {:.3} s ({:.3} error events per run)",
        result.shots,
        result.threads,
        result.wall_time.as_secs_f64(),
        result.error_rate()
    );
    let mut outcomes: Vec<_> = result.counts.iter().collect();
    outcomes.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    println!("top {} outcomes:", options.top.min(outcomes.len()));
    for (outcome, count) in outcomes.into_iter().take(options.top) {
        println!(
            "  |{outcome:0width$b}>  {count:6}  ({:.2} %)",
            100.0 * *count as f64 / result.shots as f64,
            width = options.circuit.num_qubits()
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_generate_command_with_flags() {
        let options = parse_args(&args(&[
            "generate",
            "ghz",
            "12",
            "--shots",
            "50",
            "--backend",
            "dense",
            "--noiseless",
            "--top",
            "3",
        ]))
        .unwrap();
        assert_eq!(options.circuit.num_qubits(), 12);
        assert_eq!(options.shots, 50);
        assert_eq!(options.backend, BackendKind::Statevector);
        assert!(options.noise.is_noiseless());
        assert_eq!(options.top, 3);
    }

    #[test]
    fn parses_noise_overrides() {
        let options = parse_args(&args(&[
            "generate",
            "qft",
            "5",
            "--depolarizing",
            "0.01",
            "--damping",
            "0.02",
            "--phaseflip",
            "0.03",
        ]))
        .unwrap();
        assert!((options.noise.depolarizing_prob() - 0.01).abs() < 1e-12);
        assert!((options.noise.amplitude_damping_prob() - 0.02).abs() < 1e-12);
        assert!((options.noise.phase_flip_prob() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn rejects_unknown_flags_and_commands() {
        assert!(parse_args(&args(&["explode"])).is_err());
        assert!(parse_args(&args(&["generate", "ghz", "4", "--wat"])).is_err());
        assert!(parse_args(&args(&["generate", "nope", "4"])).is_err());
        assert!(parse_args(&args(&["generate", "ghz", "four"])).is_err());
        assert!(parse_args(&args(&["run"])).is_err());
    }

    #[test]
    fn rejects_invalid_probability() {
        let result = parse_args(&args(&["generate", "ghz", "4", "--damping", "1.5"]));
        assert!(result.is_err());
    }

    #[test]
    fn parses_opt_level_and_verify_flag() {
        let options = parse_args(&args(&[
            "generate",
            "qft",
            "6",
            "--opt",
            "2",
            "--verify-opt",
        ]))
        .unwrap();
        assert_eq!(options.opt, OptLevel::O2);
        assert!(options.verify_opt);
        let defaults = parse_args(&args(&["generate", "qft", "6"])).unwrap();
        assert_eq!(defaults.opt, OptLevel::O0);
        assert!(!defaults.verify_opt);
    }

    #[test]
    fn rejects_unknown_opt_level() {
        assert!(parse_args(&args(&["generate", "ghz", "4", "--opt", "9"])).is_err());
        assert!(parse_args(&args(&["generate", "ghz", "4", "--opt"])).is_err());
    }
}
