//! Facade crate re-exporting the QSDD workspace.
//!
//! See `ARCHITECTURE.md` at the repository root for the crate map and data
//! flow, and the individual crates for details:
//! - [`qsdd_dd`] — decision-diagram package
//! - [`qsdd_circuit`] — circuit IR, OpenQASM front-end, generators
//! - [`qsdd_noise`] — error channels and noise models
//! - [`qsdd_statevector`] — dense statevector baseline simulator
//! - [`qsdd_density`] — exact density-matrix reference simulator
//! - [`qsdd_transpile`] — circuit-optimization pass pipeline
//! - [`qsdd_core`] — the stochastic decision-diagram simulator
//! - [`qsdd_batch`] — multi-job batch execution and reporting
//! - [`qsdd_json`] — the shared hand-rolled JSON writer/parser
//! - [`qsdd_server`] — the HTTP simulation service with its
//!   content-addressed result cache
//! - [`qsdd_telemetry`] — metrics, stage timings and structured logging

pub use qsdd_batch as batch;
pub use qsdd_circuit as circuit;
pub use qsdd_core as core;
pub use qsdd_dd as dd;
pub use qsdd_density as density;
pub use qsdd_json as json;
pub use qsdd_noise as noise;
pub use qsdd_server as server;
pub use qsdd_statevector as statevector;
pub use qsdd_telemetry as telemetry;
pub use qsdd_transpile as transpile;
