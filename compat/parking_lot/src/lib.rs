//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, backed by `std::sync`.
//!
//! Provides the `parking_lot` ergonomics the workspace relies on — an
//! infallible [`Mutex::lock`] with no poisoning — over the standard-library
//! mutex. Swap for the registry crate when network access is available.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// A mutual-exclusion primitive with `parking_lot`'s infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, a panic in another thread while holding the lock does
    /// not poison it (matching `parking_lot` semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking; `None` when another
    /// thread currently holds it.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value without locking
    /// (statically race-free through the exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), 8000);
    }
}
