//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! Implements the API subset the QSDD test suite uses: the [`Strategy`]
//! trait with `prop_map`, range and tuple strategies, [`collection::vec`],
//! the [`proptest!`] macro with `#![proptest_config(..)]`, and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Unlike real proptest there is **no shrinking** and the case seeds are
//! fixed (deterministic across runs — a failing case reproduces by rerunning
//! the test). Swap for the registry crate when network access is available.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of values produced.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter created by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn from
    /// a range. Created by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy: lengths drawn uniformly from `size`, elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range for vec strategy");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration and per-case RNG derivation.
pub mod test_runner {
    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = rand::rngs::StdRng;

    /// Configuration of a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Derives the deterministic RNG for one case index.
    pub fn case_rng(case: u32) -> TestRng {
        TestRng::seed_from_u64(0x7E57_5EED ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Map, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (plain `assert!` here: failures
/// abort the test without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }` runs
/// the body for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::case_rng(case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0..10u8, f in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_the_size_range(v in collection::vec(0..5usize, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn prop_map_applies_the_function(doubled in (1..50u32,).prop_map(|(x,)| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }
    }

    #[test]
    fn default_config_runs() {
        let config = ProptestConfig::default();
        assert!(config.cases > 0);
    }
}
