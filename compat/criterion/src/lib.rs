//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API subset the QSDD benches use — `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size` / `warm_up_time` /
//! `measurement_time`, `bench_with_input` and `Bencher::iter` — as a simple
//! wall-clock harness printing mean iteration times. No statistics, plots or
//! comparison against saved baselines; swap for the registry crate when
//! network access is available.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
#[inline]
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("## {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut group = self.benchmark_group(name);
        let mut bencher = Bencher::new(group.sample_size, group.measurement_time);
        f(&mut bencher);
        group.report(name, &bencher);
        group.finish();
    }
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter (qubit count, thread count, circuit name, ...).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of measured samples.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the warm-up duration before measurement starts.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up_time = time;
        self
    }

    /// Sets the target measurement duration.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        bencher.warm_up = self.warm_up_time;
        f(&mut bencher, input);
        let id = id.id.clone();
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        bencher.warm_up = self.warm_up_time;
        f(&mut bencher);
        self.report(&id.to_string(), &bencher);
        self
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        if let Some(mean) = bencher.mean() {
            println!("{}/{id}  time: {}", self.name, format_duration(mean));
        } else {
            println!("{}/{id}  (no measurement)", self.name);
        }
    }

    /// Ends the group (prints a trailing newline for readability).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Measures one closure, handed to the benchmark body.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up: Duration,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Bencher {
            sample_size,
            measurement_time,
            warm_up: Duration::from_millis(100),
            total: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Times repeated executions of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: at least one call, until the warm-up budget is spent.
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measurement: `sample_size` calls, early-stopping on the time budget
        // (but always at least one measured call).
        let started = Instant::now();
        let mut iterations = 0u64;
        for _ in 0..self.sample_size.max(1) {
            black_box(routine());
            iterations += 1;
            if started.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.total = started.elapsed();
        self.iterations = iterations;
    }

    fn mean(&self) -> Option<Duration> {
        if self.iterations == 0 {
            None
        } else {
            Some(self.total / self.iterations as u32)
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_at_least_one_iteration() {
        let mut b = Bencher::new(5, Duration::from_millis(10));
        b.warm_up = Duration::ZERO;
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert!(b.iterations >= 1);
        assert!(calls >= b.iterations as u32);
        assert!(b.mean().is_some());
    }

    #[test]
    fn group_builders_chain() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .warm_up_time(Duration::ZERO)
            .measurement_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::new("id", 1), &2u64, |b, &x| {
            b.iter(|| x * x);
        });
        group.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(format_duration(Duration::from_nanos(10)), "10 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
