//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The QSDD build environment has no network access, so this crate vendors
//! exactly the `rand` 0.8 API subset the workspace uses:
//!
//! * [`Rng`] with `gen::<f64>()`, `gen_range(..)` and `gen_bool(..)`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`], implemented as xoshiro256++ seeded via SplitMix64.
//!
//! The generator is deterministic per seed (reproducibility is load-bearing
//! for the Monte-Carlo runner: every shot derives its own seed) and of
//! sufficient statistical quality for the stochastic simulation workload.
//! Swap this crate for the registry `rand` when network access is available;
//! no call sites need to change.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64` values.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, uniform integers, fair `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    /// Draws one value from the standard distribution of the type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a raw `u64` into `[0, span)` without modulo bias (widening multiply;
/// the bias of this method is below 2^-64 per draw, far under the tolerance
/// of any statistical test in the workspace).
#[inline]
fn bounded(raw: u64, span: u64) -> u64 {
    ((raw as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let f = f64::sample(rng);
        self.start + f * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        // Include the upper endpoint by stretching just past it and clamping.
        let f = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        (start + f * (end - start)).min(end)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not the same stream as the registry `rand::rngs::StdRng` (which is
    /// ChaCha12), but the workspace only relies on determinism per seed, not
    /// on a specific stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<f64>() == b.gen::<f64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover_it() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn int_ranges_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0..4) as usize] += 1;
        }
        for c in counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.1, "count {c}");
        }
    }

    #[test]
    fn inclusive_ranges_reach_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            match rng.gen_range(0..=3usize) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5..1.5);
            assert!((-2.5..1.5).contains(&v));
            let w = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(19);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }
}
