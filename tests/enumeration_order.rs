//! Order and exactness guarantees of the weighted pattern enumerator.
//!
//! [`PatternEnumerator`] promises: yielded probabilities are non-increasing,
//! no pattern repeats, the covered mass never exceeds 1, and the residual is
//! exactly `1 - covered_mass` at every step. These properties are what the
//! weighted driver's unbiasedness proof leans on, so they get direct
//! property-based coverage over random site plans plus targeted edge cases
//! (zero-probability channels, saturated channels, wide 64-site plans).

use std::collections::HashSet;

use proptest::prelude::*;
use qsdd::noise::{
    ErrorChannel, ErrorKind, ErrorPattern, PatternEnumerator, PresamplePlan, SiteChannel,
};

fn passive(kind: ErrorKind, p: f64) -> SiteChannel {
    SiteChannel::Passive(ErrorChannel::new(kind, p))
}

/// Strategy: one random exposure site — depolarizing, phase flip or
/// amplitude damping with a random strength.
fn arb_site() -> impl Strategy<Value = SiteChannel> {
    (0..3u8, 0.0f64..0.3).prop_map(|(kind, p)| match kind {
        0 => passive(ErrorKind::Depolarizing, p),
        1 => passive(ErrorKind::PhaseFlip, p),
        _ => SiteChannel::Damping { p_decay: p },
    })
}

/// Drains an enumerator, asserting the order/exactness invariants along the
/// way; returns (yielded patterns, covered mass at exhaustion).
fn check_invariants(mut enumerator: PatternEnumerator) -> (Vec<ErrorPattern>, f64) {
    let mut seen: HashSet<ErrorPattern> = HashSet::new();
    let mut previous = f64::INFINITY;
    let mut running = 0.0f64;
    while let Some(weighted) = enumerator.next() {
        assert!(
            weighted.probability > 0.0,
            "zero-probability patterns are never yielded"
        );
        assert!(
            weighted.probability <= previous,
            "order violated: {} after {}",
            weighted.probability,
            previous
        );
        previous = weighted.probability;
        assert!(
            seen.insert(weighted.pattern.clone()),
            "pattern yielded twice: {:?}",
            weighted.pattern
        );
        // Covered mass accumulates the yielded weights in yield order, so
        // recomputing the same sum reproduces it bit for bit — and the
        // residual is exactly its complement.
        running += weighted.probability;
        assert_eq!(running.to_bits(), enumerator.covered_mass().to_bits());
        assert_eq!(
            enumerator.residual_mass().to_bits(),
            (1.0 - running).max(0.0).to_bits(),
            "residual must be exactly 1 - covered"
        );
    }
    let covered = enumerator.covered_mass();
    assert!(covered <= 1.0 + 1e-9, "covered mass overshot: {covered}");
    assert!(covered <= enumerator.enumerable_mass() + 1e-9);
    assert_eq!(enumerator.emitted(), seen.len() as u64);
    (seen.into_iter().collect(), covered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random plans (mixing passive channels and damping sites), bounded
    /// enumeration: non-increasing order, no repeats, covered + residual
    /// exactly 1.
    #[test]
    fn random_plans_enumerate_in_order_without_repeats(
        sites in proptest::collection::vec(arb_site(), 1..10),
    ) {
        let plan = PresamplePlan::new(sites);
        let enumerator = PatternEnumerator::new(&plan).with_max_patterns(512);
        check_invariants(enumerator);
    }

    /// A mass cutoff stops the walk as soon as the target is covered, and
    /// everything yielded up to that point still satisfies the invariants.
    #[test]
    fn mass_cutoffs_respect_the_invariants(
        sites in proptest::collection::vec(arb_site(), 1..8),
        cutoff in 0.1f64..1.0,
    ) {
        let plan = PresamplePlan::new(sites);
        let enumerator = PatternEnumerator::new(&plan).with_mass_cutoff(cutoff);
        let (_patterns, covered) = check_invariants(enumerator);
        // The walk either reached the cutoff or exhausted the enumerable
        // space below it.
        prop_assert!(covered + 1e-12 >= cutoff || covered <= cutoff);
    }
}

#[test]
fn full_enumeration_of_a_passive_plan_covers_everything() {
    let plan = PresamplePlan::new(vec![
        passive(ErrorKind::Depolarizing, 0.1),
        passive(ErrorKind::PhaseFlip, 0.25),
        passive(ErrorKind::Depolarizing, 0.05),
    ]);
    let enumerator = PatternEnumerator::new(&plan);
    assert_eq!(enumerator.enumerable_mass(), 1.0);
    let (patterns, covered) = check_invariants(enumerator);
    assert_eq!(patterns.len(), 32, "4 * 2 * 4 option assignments");
    assert!((covered - 1.0).abs() < 1e-12, "full mass, got {covered}");
}

#[test]
fn zero_probability_channels_collapse_to_the_empty_pattern() {
    // All-zero channels: the only samplable trajectory is "no error", with
    // probability exactly 1 — zero-probability branches never appear.
    let plan = PresamplePlan::new(vec![
        passive(ErrorKind::PhaseFlip, 0.0),
        passive(ErrorKind::Depolarizing, 0.0),
        passive(ErrorKind::PhaseFlip, 0.0),
    ]);
    let mut enumerator = PatternEnumerator::new(&plan);
    let first = enumerator.next().expect("the no-error pattern");
    assert!(first.pattern.is_empty());
    assert_eq!(first.probability, 1.0);
    assert!(enumerator.next().is_none());
    assert_eq!(enumerator.covered_mass(), 1.0);
    assert_eq!(enumerator.residual_mass(), 0.0);
}

#[test]
fn saturated_phase_flip_yields_only_the_certain_error() {
    // p = 1: "no event" has probability zero and must be dropped — the
    // single enumerable trajectory is the certain flip.
    let plan = PresamplePlan::new(vec![passive(ErrorKind::PhaseFlip, 1.0)]);
    let mut enumerator = PatternEnumerator::new(&plan);
    let only = enumerator.next().expect("the certain-flip pattern");
    assert!(!only.pattern.is_empty(), "the flip always fires");
    assert_eq!(only.probability, 1.0);
    assert!(enumerator.next().is_none());
    assert_eq!(enumerator.covered_mass(), 1.0);
}

#[test]
fn saturated_depolarizing_breaks_ties_deterministically() {
    // p = 1 depolarizing: no-event keeps 0.25 and each Pauli gets 0.25 — a
    // four-way tie resolved lexicographically: no-event first, then
    // ascending error index.
    let plan = PresamplePlan::new(vec![passive(ErrorKind::Depolarizing, 1.0)]);
    let patterns: Vec<_> = PatternEnumerator::new(&plan).collect();
    assert_eq!(patterns.len(), 4);
    assert!(patterns[0].pattern.is_empty(), "no-event wins the tie");
    for weighted in &patterns {
        assert_eq!(weighted.probability, 0.25);
    }
    let total: f64 = patterns.iter().map(|p| p.probability).sum();
    assert!((total - 1.0).abs() < 1e-12);
}

#[test]
fn sixty_four_sites_enumerate_within_budget_in_order() {
    // A wide plan (64 depolarizing exposure sites — the flattened site
    // count of a mid-sized circuit): the best-first walk must stay ordered
    // and repeat-free under a pattern budget far smaller than the 4^64
    // space, starting from the no-error pattern.
    let plan = PresamplePlan::new(vec![passive(ErrorKind::Depolarizing, 0.01); 64]);
    let first = PatternEnumerator::new(&plan)
        .next()
        .expect("no-error pattern first");
    assert!(first.pattern.is_empty());
    let expected = (1.0f64 - 0.0075).powi(64);
    assert!((first.probability - expected).abs() < 1e-12);
    let enumerator = PatternEnumerator::new(&plan).with_max_patterns(1000);
    let (patterns, covered) = check_invariants(enumerator);
    assert_eq!(patterns.len(), 1000, "budget exhausted exactly");
    assert!(covered < 1.0);
    // 64 sites * 3 Pauli errors: every single-error pattern outranks any
    // double-error pattern at this strength, so the no-error pattern plus
    // all 192 single-error patterns land within the 1000-pattern budget.
    assert_eq!(
        patterns
            .iter()
            .filter(|pattern| pattern.events().len() <= 1)
            .count(),
        193,
        "single-error patterns must all appear within the budget"
    );
}

#[test]
fn damping_prefix_limits_the_enumerable_mass_exactly() {
    let plan = PresamplePlan::new(vec![
        passive(ErrorKind::Depolarizing, 0.2),
        SiteChannel::Damping { p_decay: 0.5 },
        passive(ErrorKind::PhaseFlip, 0.25),
    ]);
    let enumerator = PatternEnumerator::new(&plan);
    // Prefix: depolarizing no-event (1 - 0.15) times damping keep (0.5).
    let expected = (1.0 - 0.15) * 0.5;
    assert!((enumerator.enumerable_mass() - expected).abs() < 1e-12);
    let (patterns, covered) = check_invariants(enumerator);
    // Only the trailing phase flip is free.
    assert_eq!(patterns.len(), 2);
    assert!((covered - expected).abs() < 1e-12);
}
