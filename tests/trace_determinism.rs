//! Tracing must be a pure observer: result payloads are byte-identical
//! whether span recording is off, on, or sampled out — across shot-thread
//! counts, intra-shot widths, both backends and every driver (per-shot,
//! trajectory-dedup, weighted enumeration).
//!
//! Each case runs the same job three times — tracing off (the baseline),
//! tracing on with a live tracer installed, and tracing on but sampled
//! out — and compares the histogram, the observable-estimate *bits* and
//! the decision-diagram peak across all three.

use std::collections::BTreeMap;
use std::sync::Mutex;

use proptest::prelude::*;
use qsdd::circuit::generators;
use qsdd::core::{BackendKind, Observable, StochasticSimulator, WeightedOptions};
use qsdd::noise::NoiseModel;
use qsdd::telemetry::trace;

/// The comparable fingerprint of one run: exact counts, exact observable
/// bits, exact DD peak. Wall time and stage timings are excluded — they
/// are the only fields allowed to differ.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    counts: BTreeMap<u64, u64>,
    observable_bits: Vec<u64>,
    dd_nodes_peak: u64,
    error_events: u64,
}

/// Which engine driver the case exercises.
#[derive(Debug, Clone, Copy)]
enum Driver {
    PerShot,
    Dedup,
    Weighted,
}

fn run_once(
    qubits: usize,
    shots: usize,
    seed: u64,
    threads: usize,
    intra: usize,
    backend: BackendKind,
    driver: Driver,
) -> Fingerprint {
    let circuit = generators::ghz(qubits);
    let mut simulator = StochasticSimulator::new()
        .with_backend(backend)
        .with_shots(shots)
        .with_threads(threads)
        .with_intra_threads(intra)
        .with_seed(seed)
        .with_noise(NoiseModel::paper_defaults())
        .with_dedup(matches!(driver, Driver::Dedup));
    if matches!(driver, Driver::Weighted) {
        simulator = simulator.with_weighted(WeightedOptions::default());
    }
    let observables = [
        Observable::BasisProbability(0),
        Observable::QubitExcitation(0),
    ];
    let outcome = simulator.run_with_observables(&circuit, &observables);
    Fingerprint {
        counts: outcome.counts.iter().map(|(&k, &v)| (k, v)).collect(),
        observable_bits: outcome
            .observable_estimates
            .iter()
            .map(|estimate| estimate.to_bits())
            .collect(),
        dd_nodes_peak: outcome.dd_nodes_peak,
        error_events: outcome.error_events,
    }
}

/// Serializes cases: the tracing gate and sampling rate are process
/// globals, so concurrent flipping would blur which mode a run saw.
static GATE: Mutex<()> = Mutex::new(());

#[allow(clippy::too_many_arguments)]
fn assert_tracing_invisible(
    qubits: usize,
    shots: usize,
    seed: u64,
    threads: usize,
    intra: usize,
    backend: BackendKind,
    driver: Driver,
) {
    let _gate = GATE.lock().unwrap();

    trace::set_trace_enabled(false);
    let off = run_once(qubits, shots, seed, threads, intra, backend, driver);

    // Tracing on, tracer installed: every span the drivers emit records.
    trace::set_trace_enabled(true);
    trace::set_trace_sample_rate(1);
    let tracer = trace::Tracer::forced("determinism", "determinism");
    let on = {
        let _install = tracer.install(0);
        run_once(qubits, shots, seed, threads, intra, backend, driver)
    };
    let traced = tracer.finish("job");
    assert!(
        traced.spans.len() > 1,
        "the traced run must actually record spans"
    );

    // Tracing on but the job sampled out: the gate is hot, yet no tracer
    // is installed anywhere, so `span` calls hit only the TLS check.
    trace::set_trace_sample_rate(u64::MAX);
    let sampled = run_once(qubits, shots, seed, threads, intra, backend, driver);
    trace::set_trace_sample_rate(1);
    trace::set_trace_enabled(false);

    assert_eq!(off, on, "tracing on changed the result");
    assert_eq!(off, sampled, "sampling state changed the result");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Histograms, observable bits and DD peaks are byte-identical with
    /// tracing off / on / sampled, for every driver x backend x
    /// parallelism combination the seed picks.
    #[test]
    fn results_are_identical_with_tracing_off_on_and_sampled(
        seed in 1u64..10_000,
        threads_pick in 0usize..3,
        intra in 1usize..3,
        backend_pick in 0usize..2,
        driver_pick in 0usize..3,
    ) {
        let threads = [1, 2, 8][threads_pick];
        let backend = if backend_pick == 1 {
            BackendKind::Statevector
        } else {
            BackendKind::DecisionDiagram
        };
        let driver = [Driver::PerShot, Driver::Dedup, Driver::Weighted][driver_pick];
        assert_tracing_invisible(4, 96, seed, threads, intra, backend, driver);
    }
}

/// The full grid at one fixed seed: every driver on every backend at the
/// paper's parallelism corners, so a grid cell failing is attributable
/// without shrinking.
#[test]
fn fixed_grid_of_drivers_backends_and_widths() {
    for driver in [Driver::PerShot, Driver::Dedup, Driver::Weighted] {
        for backend in [BackendKind::DecisionDiagram, BackendKind::Statevector] {
            for &(threads, intra) in &[(1usize, 1usize), (2, 2), (8, 1)] {
                assert_tracing_invisible(4, 64, 2021, threads, intra, backend, driver);
            }
        }
    }
}
