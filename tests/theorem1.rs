//! Empirical validation of Theorem 1: the Monte-Carlo estimates of quadratic
//! observables converge to the exact values within the guaranteed accuracy.

use qsdd::circuit::generators::ghz;
use qsdd::core::{sampling, Observable, StochasticSimulator};
use qsdd::density;
use qsdd::noise::NoiseModel;

#[test]
fn estimates_stay_within_the_theorem_1_epsilon() {
    let qubits = 4;
    let circuit = ghz(qubits);
    let noise = NoiseModel::new(0.01, 0.02, 0.01);

    let exact = density::simulate(&circuit, &noise);
    let populations = exact.populations();

    let all_ones = (1u64 << qubits) - 1;
    let observables = vec![
        Observable::BasisProbability(0),
        Observable::BasisProbability(all_ones),
        Observable::QubitExcitation(0),
        Observable::QubitExcitation(qubits - 1),
    ];
    let exact_values = [
        populations[0],
        populations[all_ones as usize],
        exact.probability_one(0),
        exact.probability_one(qubits - 1),
    ];

    // Choose the shot count from the theorem for epsilon = 0.05, delta = 0.05.
    let delta = 0.05;
    let epsilon = 0.05;
    let shots = sampling::required_samples(observables.len(), epsilon, delta);
    assert!(shots < 3000, "bound unexpectedly large: {shots}");

    let result = StochasticSimulator::new()
        .with_shots(shots)
        .with_noise(noise)
        .with_seed(2024)
        .run_with_observables(&circuit, &observables);

    for ((observable, estimate), exact) in observables
        .iter()
        .zip(&result.observable_estimates)
        .zip(&exact_values)
    {
        let error = (estimate - exact).abs();
        assert!(
            error <= epsilon,
            "{}: error {error:.4} exceeds epsilon {epsilon}",
            observable.label()
        );
    }
}

#[test]
fn increasing_samples_reduces_the_error() {
    let circuit = ghz(3);
    let noise = NoiseModel::new(0.02, 0.04, 0.02);
    let exact = density::simulate(&circuit, &noise).populations()[0];
    let observable = vec![Observable::BasisProbability(0)];

    let mut errors = Vec::new();
    for shots in [50usize, 500, 5000] {
        // Average the absolute error over several seeds to smooth out luck.
        let mut total = 0.0;
        for seed in 0..4u64 {
            let result = StochasticSimulator::new()
                .with_shots(shots)
                .with_noise(noise)
                .with_seed(seed)
                .run_with_observables(&circuit, &observable);
            total += (result.observable_estimates[0] - exact).abs();
        }
        errors.push(total / 4.0);
    }
    assert!(
        errors[2] < errors[0],
        "error did not shrink with more samples: {errors:?}"
    );
}

#[test]
fn sample_bound_matches_paper_configuration() {
    // The paper reports M = 30 000 samples for 1000 properties, error < 0.01
    // (we read this as roughly 0.013 given the stated confidence of 95 %).
    let m = sampling::required_samples(1000, 0.0129, 0.05);
    assert!((29_000..=32_000).contains(&m), "M = {m}");
    // And the corresponding achievable epsilon for 30 000 samples is ~0.013.
    let epsilon = sampling::achievable_epsilon(30_000, 1000, 0.05);
    assert!(epsilon < 0.0135 && epsilon > 0.012, "epsilon = {epsilon}");
}
