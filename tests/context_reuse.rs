//! Reuse-equals-fresh coverage for the compile/execute architecture:
//! property-based evidence that a reused [`ExecContext`] is observationally
//! identical to fresh-package execution — byte-identical samples,
//! histograms and observable sums — on random circuits with mid-circuit
//! measurements and resets under the paper's noise model, across 1, 2 and
//! 8 worker threads.

use std::collections::HashMap;

use proptest::prelude::*;
use qsdd::circuit::Circuit;
use qsdd::core::{run_engine, BackendKind, Observable, OptLevel, ShotEngine};
use qsdd::noise::NoiseModel;

const SHOTS: usize = 48;

/// Strategy: a random circuit over `qubits` qubits mixing unitary gates
/// with mid-circuit measurements and resets (`clbits == qubits`).
fn arb_noisy_circuit(qubits: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let op = (0..10u8, 0..qubits, 0..qubits, -3.2f64..3.2f64);
    proptest::collection::vec(op, 1..max_len).prop_map(move |ops| {
        // `Circuit::new` allocates one classical bit per qubit, so
        // mid-circuit `measure(q, q)` is always in range.
        let mut c = Circuit::new(qubits);
        for (kind, a, b, angle) in ops {
            match kind {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.x(a);
                }
                2 => {
                    c.rz(angle, a);
                }
                3 => {
                    c.ry(angle, a);
                }
                4 => {
                    if a != b {
                        c.cx(a, b);
                    } else {
                        c.s(a);
                    }
                }
                5 => {
                    if a != b {
                        c.cz(a, b);
                    } else {
                        c.z(a);
                    }
                }
                6 => {
                    if a != b {
                        c.swap(a, b);
                    } else {
                        c.t(a);
                    }
                }
                7 => {
                    // Mid-circuit measurement into the matching clbit.
                    c.measure(a, a);
                }
                8 => {
                    // Mid-circuit reset.
                    c.reset(a);
                }
                _ => {
                    c.sx(a);
                }
            }
        }
        c
    })
}

/// Aggregates shots `0..shots` exactly like `run_engine`'s strided worker
/// loop, but with a **fresh throwaway context for every shot** — the
/// reference the reused-context paths must reproduce byte for byte.
fn fresh_reference(
    engine: &ShotEngine,
    shots: usize,
    threads: usize,
    observables: &[Observable],
) -> (HashMap<u64, u64>, Vec<f64>, u64) {
    let mapped = engine.map_observables(observables);
    let mut counts: HashMap<u64, u64> = HashMap::new();
    let mut errors = 0u64;
    // Per-worker partial sums merged in worker order, mirroring run_engine.
    let mut sums = vec![0.0f64; observables.len()];
    let mut samples = 0u64;
    for worker in 0..threads {
        let mut local = vec![0.0f64; observables.len()];
        let mut shot = worker;
        while shot < shots {
            let (sample, values) = engine.run_shot_with_observables(shot as u64, &mapped);
            *counts.entry(sample.outcome).or_insert(0) += 1;
            errors += sample.error_events;
            for (sum, v) in local.iter_mut().zip(&values) {
                *sum += v;
            }
            samples += 1;
            shot += threads;
        }
        for (sum, v) in sums.iter_mut().zip(&local) {
            *sum += v;
        }
    }
    let means = if samples == 0 {
        vec![0.0; observables.len()]
    } else {
        // samples counts worker passes; each shot is visited exactly once.
        sums.iter().map(|s| s / shots as f64).collect()
    };
    (counts, means, errors)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A reused context replays every shot byte-identically to a fresh
    /// throwaway context — samples and observable values alike.
    #[test]
    fn reused_context_shots_are_byte_identical_to_fresh(
        circuit in arb_noisy_circuit(4, 20),
        seed in 0u64..1000,
    ) {
        let engine = ShotEngine::new(
            &circuit,
            BackendKind::DecisionDiagram,
            NoiseModel::paper_defaults(),
            seed,
            OptLevel::O0,
        );
        let observables = [
            Observable::BasisProbability(0),
            Observable::QubitExcitation(1),
        ];
        let mapped = engine.map_observables(&observables);
        let mut reused = engine.new_context();
        for shot in 0..SHOTS as u64 {
            let (fresh_sample, fresh_values) =
                engine.run_shot_with_observables(shot, &mapped);
            let (reused_sample, reused_values) =
                engine.run_shot_with_observables_in(&mut reused, shot, &mapped);
            prop_assert_eq!(reused_sample, fresh_sample);
            for (a, b) in reused_values.iter().zip(&fresh_values) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "observable value diverged");
            }
        }
    }

    /// The full Monte-Carlo runner (reused per-worker contexts) reproduces
    /// the fresh-per-shot reference byte for byte — histograms, error
    /// counts and observable sums — for 1, 2 and 8 threads.
    #[test]
    fn run_engine_matches_fresh_reference_across_thread_counts(
        circuit in arb_noisy_circuit(4, 16),
        seed in 0u64..1000,
    ) {
        let engine = ShotEngine::new(
            &circuit,
            BackendKind::DecisionDiagram,
            NoiseModel::paper_defaults(),
            seed,
            OptLevel::O0,
        );
        let observables = [
            Observable::BasisProbability(0),
            Observable::QubitExcitation(2),
        ];
        let mut histograms = Vec::new();
        for threads in [1usize, 2, 8] {
            let outcome = run_engine(&engine, SHOTS, threads, &observables);
            let (fresh_counts, fresh_means, fresh_errors) =
                fresh_reference(&engine, SHOTS, threads, &observables);
            prop_assert_eq!(&outcome.counts, &fresh_counts, "histogram diverged");
            prop_assert_eq!(outcome.error_events, fresh_errors);
            for (a, b) in outcome.observable_estimates.iter().zip(&fresh_means) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "observable sum diverged");
            }
            histograms.push(outcome.counts);
        }
        // Histograms (integer merges) are additionally identical across
        // thread counts.
        prop_assert_eq!(&histograms[0], &histograms[1]);
        prop_assert_eq!(&histograms[0], &histograms[2]);
    }

    /// The dense back-end's reusable amplitude buffers are equally
    /// unobservable.
    #[test]
    fn dense_reused_context_is_byte_identical_to_fresh(
        circuit in arb_noisy_circuit(3, 14),
        seed in 0u64..1000,
    ) {
        let engine = ShotEngine::new(
            &circuit,
            BackendKind::Statevector,
            NoiseModel::paper_defaults(),
            seed,
            OptLevel::O0,
        );
        let observables = [Observable::QubitExcitation(0)];
        let mapped = engine.map_observables(&observables);
        let mut reused = engine.new_context();
        for shot in 0..SHOTS as u64 {
            let (fresh_sample, fresh_values) =
                engine.run_shot_with_observables(shot, &mapped);
            let (reused_sample, reused_values) =
                engine.run_shot_with_observables_in(&mut reused, shot, &mapped);
            prop_assert_eq!(reused_sample, fresh_sample);
            for (a, b) in reused_values.iter().zip(&fresh_values) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
