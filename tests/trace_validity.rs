//! Validity of the exported trace artifacts: the Chrome trace-event file
//! `qsdd_cli run --trace-out` writes, and the span tree the server serves
//! from `GET /v1/jobs/<id>/trace`.
//!
//! The exported file must be loadable by Perfetto / `chrome://tracing`:
//! complete (`ph:"X"`) events with microsecond timestamps, monotone `ts`
//! per lane (`tid`), every `parent_id` resolving to a real span, and
//! every stage span nested inside the root job span. The server's trace
//! endpoint must replay an *identical span structure* after a restart
//! with no `--store-dir` — the ring buffer itself is volatile (the trace
//! 404s until the job re-executes), but re-execution reproduces the
//! structure exactly.

use std::net::SocketAddr;
use std::process::Command;
use std::time::{Duration, Instant};

use qsdd::json::{self, Value};
use qsdd::server::{client, Server, ServerConfig};

/// Runs `qsdd_cli` with `args` in `dir`, asserting success.
fn run_cli(dir: &std::path::Path, args: &[&str]) {
    let output = Command::new(env!("CARGO_BIN_EXE_qsdd_cli"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn qsdd_cli");
    assert!(
        output.status.success(),
        "qsdd_cli {:?} failed:\n{}",
        args,
        String::from_utf8_lossy(&output.stderr)
    );
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qsdd-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn cli_trace_export_is_valid_chrome_trace_event_json() {
    let dir = temp_dir("cli");
    let trace_path = dir.join("trace.json");
    run_cli(
        &dir,
        &[
            "generate",
            "ghz",
            "6",
            "--shots",
            "300",
            "--threads",
            "2",
            "--seed",
            "7",
            "--trace-out",
            trace_path.to_str().unwrap(),
        ],
    );
    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let doc = json::parse(&text).expect("trace file is valid JSON");

    assert_eq!(
        doc.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let other = doc.get("otherData").expect("otherData object");
    assert!(other.get("trace_id").and_then(Value::as_str).is_some());
    assert!(other.get("job_id").and_then(Value::as_str).is_some());

    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(events.len() >= 4, "a traced run has several spans");

    // Collect every span id first so parent links can be resolved.
    let ids: std::collections::BTreeSet<u64> = events
        .iter()
        .map(|event| {
            event
                .get("args")
                .and_then(|args| args.get("span_id"))
                .and_then(Value::as_u64)
                .expect("every event carries its span_id")
        })
        .collect();
    assert_eq!(ids.len(), events.len(), "span ids are unique");

    // The root job span: parent 0, starts at ts 0, covers everything.
    let root = events
        .iter()
        .find(|event| {
            event
                .get("args")
                .and_then(|args| args.get("parent_id"))
                .and_then(Value::as_u64)
                == Some(0)
        })
        .expect("exactly one root span");
    assert_eq!(root.get("name").and_then(Value::as_str), Some("job"));
    let root_ts = root.get("ts").and_then(Value::as_f64).unwrap();
    let root_end = root_ts + root.get("dur").and_then(Value::as_f64).unwrap();
    assert_eq!(root_ts, 0.0, "the job span starts at the trace epoch");

    let mut last_ts_per_lane: std::collections::BTreeMap<u64, f64> = Default::default();
    for event in events {
        // Complete-event schema, as Perfetto expects it.
        assert_eq!(event.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(event.get("pid").and_then(Value::as_u64), Some(1));
        assert_eq!(event.get("cat").and_then(Value::as_str), Some("qsdd"));
        let ts = event.get("ts").and_then(Value::as_f64).expect("ts");
        let dur = event.get("dur").and_then(Value::as_f64).expect("dur");
        let tid = event.get("tid").and_then(Value::as_u64).expect("tid");
        assert!(ts >= 0.0 && dur >= 0.0);

        // Every parent id resolves (0 marks the root only).
        let parent = event
            .get("args")
            .and_then(|args| args.get("parent_id"))
            .and_then(Value::as_u64)
            .unwrap();
        assert!(
            parent == 0 || ids.contains(&parent),
            "parent {parent} of `{:?}` must exist",
            event.get("name")
        );

        // Stage spans nest inside the job span (dur tolerance: values
        // are rounded to microseconds independently).
        assert!(
            ts + dur <= root_end + 1.0,
            "span must end within the job span: {} + {} vs {}",
            ts,
            dur,
            root_end
        );

        // Monotone ts per lane: span ids are allocated in start order
        // per lane, and the export preserves id order.
        if let Some(previous) = last_ts_per_lane.insert(tid, ts) {
            assert!(
                ts >= previous,
                "lane {tid} timestamps must be monotone ({previous} then {ts})"
            );
        }
    }
}

/// Boots a memory-only server with a deterministic single worker.
fn boot() -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

fn submit(addr: SocketAddr, body: &str) -> String {
    let (status, response) = client::request(addr, "POST", "/v1/jobs", Some(body)).expect("submit");
    assert!(status == 200 || status == 202, "submit failed: {response}");
    json::parse(&response)
        .expect("submission json")
        .get("id")
        .and_then(Value::as_str)
        .expect("submission id")
        .to_string()
}

fn wait_done(addr: SocketAddr, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, body) =
            client::request(addr, "GET", &format!("/v1/jobs/{id}"), None).expect("poll");
        assert_eq!(status, 200, "{body}");
        match json::parse(&body)
            .expect("envelope")
            .get("status")
            .and_then(Value::as_str)
        {
            Some("completed") => return,
            Some("failed") => panic!("job failed: {body}"),
            _ => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Fetches the job's trace and reduces it to its structural signature
/// (`id>parent:name@lane` per span) — timestamps excluded.
fn trace_structure(addr: SocketAddr, id: &str) -> String {
    let (status, body) =
        client::request(addr, "GET", &format!("/v1/jobs/{id}/trace"), None).expect("trace");
    assert_eq!(status, 200, "trace fetch failed: {body}");
    let doc = json::parse(&body).expect("trace json");
    assert_eq!(doc.get("job_id").and_then(Value::as_str), Some(id));
    let spans = doc
        .get("spans")
        .and_then(Value::as_array)
        .expect("spans array");
    spans
        .iter()
        .map(|span| {
            format!(
                "{:x}>{:x}:{}@{}",
                span.get("id").and_then(Value::as_u64).unwrap(),
                span.get("parent").and_then(Value::as_u64).unwrap(),
                span.get("name").and_then(Value::as_str).unwrap(),
                span.get("lane").and_then(Value::as_u64).unwrap(),
            )
        })
        .collect::<Vec<_>>()
        .join(";")
}

const JOB: &str = r#"{"circuit":{"generator":"ghz","qubits":5},"shots":400,"seed":11}"#;

#[test]
fn server_trace_replays_identically_across_restart() {
    // First life: execute the job and capture its span structure.
    let server = boot();
    let addr = server.addr();
    let id = submit(addr, JOB);
    wait_done(addr, &id);
    let first = trace_structure(addr, &id);
    assert!(first.contains(":job@"), "has a root span: {first}");
    for stage in ["parse", "cache_lookup", "queue_wait", "execute", "compile"] {
        assert!(
            first.contains(&format!(":{stage}@")),
            "missing {stage} span: {first}"
        );
    }

    // The index lists it.
    let (status, body) = client::request(addr, "GET", "/v1/traces", None).expect("index");
    assert_eq!(status, 200);
    let index = json::parse(&body).expect("index json");
    let listed = index.get("traces").and_then(Value::as_array).expect("list");
    assert!(
        listed
            .iter()
            .any(|entry| entry.get("job_id").and_then(Value::as_str) == Some(id.as_str())),
        "{body}"
    );
    server.shutdown_and_join();

    // Second life, no --store-dir: the ring buffer is volatile, so the
    // trace is gone until the job re-executes...
    let server = boot();
    let addr = server.addr();
    let (status, body) =
        client::request(addr, "GET", &format!("/v1/jobs/{id}/trace"), None).expect("trace");
    assert_eq!(status, 404, "volatile ring buffer must not survive: {body}");

    // ...and re-execution replays the identical span structure.
    let again = submit(addr, JOB);
    assert_eq!(again, id, "content addressing is stable across restarts");
    wait_done(addr, &id);
    let second = trace_structure(addr, &id);
    assert_eq!(first, second, "span structure must replay identically");
    server.shutdown_and_join();
}

#[test]
fn trace_endpoints_reject_unknown_jobs_and_wrong_methods() {
    let server = boot();
    let addr = server.addr();
    let (status, _) =
        client::request(addr, "GET", "/v1/jobs/jdeadbeef/trace", None).expect("request");
    assert_eq!(status, 404);
    let (status, _) = client::request(addr, "POST", "/v1/traces", None).expect("request");
    assert_eq!(status, 405);
    server.shutdown_and_join();
}
