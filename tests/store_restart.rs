//! Subprocess crash-recovery tests: `kill -9` a serving `qsdd_cli serve`
//! process mid-flight, restart it on the same `--store-dir`, and assert
//! that every completed job's GET response is byte-identical — the
//! durability acceptance contract for the result store.
//!
//! The fault-injection seam (`QSDD_FAULTS`) is exercised here too, since
//! it only activates at process start and therefore needs a subprocess.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStderr, Command, Stdio};
use std::time::{Duration, Instant};

use qsdd::json::{self, Value};
use qsdd::server::client;

/// Kills the child on drop so a failing assertion never leaks a server.
struct ServerProcess {
    child: Child,
    addr: SocketAddr,
    stderr: BufReader<ChildStderr>,
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl ServerProcess {
    /// Spawns `qsdd_cli serve --addr 127.0.0.1:0 --store-dir <dir>` (plus
    /// `envs`) and blocks until the banner announces the bound address.
    fn spawn(store_dir: Option<&Path>, envs: &[(&str, &str)]) -> ServerProcess {
        let mut command = Command::new(env!("CARGO_BIN_EXE_qsdd_cli"));
        command.args(["serve", "--addr", "127.0.0.1:0", "--threads", "1"]);
        if let Some(dir) = store_dir {
            command.arg("--store-dir").arg(dir);
        }
        for (name, value) in envs {
            command.env(name, value);
        }
        let mut child = command
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn qsdd_cli serve");
        let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
        let mut line = String::new();
        let addr = loop {
            line.clear();
            assert!(
                stderr.read_line(&mut line).expect("read banner") > 0,
                "server exited before announcing its address"
            );
            if let Some(index) = line.find("http://") {
                break line[index + "http://".len()..]
                    .trim()
                    .parse::<SocketAddr>()
                    .expect("parseable bound address");
            }
        };
        ServerProcess {
            child,
            addr,
            stderr,
        }
    }

    /// Reads banner lines until one contains `needle` (the store banner is
    /// printed right after the endpoints line).
    fn await_banner_line(&mut self, needle: &str) -> String {
        let mut line = String::new();
        loop {
            line.clear();
            assert!(
                self.stderr.read_line(&mut line).expect("read banner") > 0,
                "server exited before printing a line containing `{needle}`"
            );
            if line.contains(needle) {
                return line.trim().to_string();
            }
        }
    }

    /// SIGKILL — no destructors, no flushes, the crash we recover from.
    fn kill_dash_nine(mut self) {
        self.child.kill().expect("kill -9");
        self.child.wait().expect("reap");
        // Skip the Drop re-kill path (already dead and reaped).
        std::mem::forget(self);
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qsdd-restart-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn submit(addr: SocketAddr, body: &str) -> String {
    // Retry the connect+POST: right after boot the listener can still be
    // settling, and this is exactly what `with_retry` is for.
    let (status, _, response) = client::with_retry(5, Duration::from_millis(20), 1, || {
        client::Client::connect(addr)?.request_with_headers("POST", "/v1/jobs", Some(body))
    })
    .expect("submit");
    assert!(status == 200 || status == 202, "submit failed: {response}");
    json::parse(&response)
        .unwrap()
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string()
}

fn poll_terminal(addr: SocketAddr, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut session = client::Client::connect(addr).expect("connect");
    loop {
        let (status, body) = session
            .request("GET", &format!("/v1/jobs/{id}"), None)
            .expect("poll");
        assert_eq!(status, 200, "poll failed: {body}");
        let envelope = json::parse(&body).expect("envelope json");
        match envelope.get("status").and_then(Value::as_str) {
            Some("completed") | Some("failed") => return body,
            _ => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Polls `/v1/stats` until `predicate` holds (or ~10 s pass) and returns
/// the last snapshot — store appends land just *after* a job completes,
/// so tests that kill or inspect right afterwards must wait for them.
fn await_stats(addr: SocketAddr, predicate: impl Fn(&Value) -> bool) -> Value {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, body) = client::request(addr, "GET", "/v1/stats", None).unwrap();
        let stats = json::parse(&body).unwrap();
        if predicate(&stats) || Instant::now() > deadline {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn store_u64(stats: &Value, field: &str) -> Option<u64> {
    stats
        .get("store")
        .and_then(|store| store.get(field))
        .and_then(Value::as_u64)
}

#[test]
fn kill_nine_then_restart_serves_byte_identical_results() {
    let dir = scratch_dir("kill-nine");
    let jobs: Vec<String> = (0..4)
        .map(|seed| {
            format!(r#"{{"circuit":{{"generator":"ghz","qubits":6}},"shots":300,"seed":{seed}}}"#)
        })
        .collect();

    // Life one: complete the jobs, capture the served bytes, then die
    // without warning.
    let server = ServerProcess::spawn(Some(&dir), &[]);
    let addr = server.addr;
    let ids: Vec<String> = jobs.iter().map(|body| submit(addr, body)).collect();
    let before: Vec<String> = ids.iter().map(|id| poll_terminal(addr, id)).collect();
    for body in &before {
        assert!(body.contains(r#""status":"completed""#), "{body}");
    }
    let stats = await_stats(addr, |stats| store_u64(stats, "writes") == Some(4));
    assert_eq!(store_u64(&stats, "writes"), Some(4));
    server.kill_dash_nine();

    // Life two: same directory. Every id must answer byte-identically,
    // with zero simulations run.
    let mut server = ServerProcess::spawn(Some(&dir), &[]);
    let addr = server.addr;
    let banner = server.await_banner_line("store:");
    assert!(
        banner.contains("4 records restored"),
        "banner drifted: {banner}"
    );
    for (id, before) in ids.iter().zip(&before) {
        let after = poll_terminal(addr, id);
        assert_eq!(
            &after, before,
            "kill -9 + restart changed the bytes of {id}"
        );
    }
    let (status, stats) = client::request(addr, "GET", "/v1/stats", None).unwrap();
    assert_eq!(status, 200);
    let stats = json::parse(&stats).unwrap();
    assert_eq!(stats.get("simulations").and_then(Value::as_u64), Some(0));
    let store = stats.get("store").expect("store stats present");
    assert_eq!(
        store.get("restored_at_boot").and_then(Value::as_u64),
        Some(4)
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_torn_tail_is_truncated_and_older_records_survive() {
    let dir = scratch_dir("torn-tail");
    let server = ServerProcess::spawn(Some(&dir), &[]);
    let addr = server.addr;
    let id = submit(
        addr,
        r#"{"circuit":{"generator":"ghz","qubits":5},"shots":150,"seed":7}"#,
    );
    let before = poll_terminal(addr, &id);
    await_stats(addr, |stats| store_u64(stats, "writes") == Some(1));
    server.kill_dash_nine();

    // Simulate a write torn mid-record by the crash: append garbage that
    // looks like a record header with a length pointing past EOF.
    let log = dir.join("results.log");
    let mut bytes = std::fs::read(&log).expect("log exists");
    let intact = bytes.len();
    bytes.extend_from_slice(&1024u32.to_le_bytes());
    bytes.extend_from_slice(&[0xAB; 20]);
    std::fs::write(&log, &bytes).unwrap();

    let mut server = ServerProcess::spawn(Some(&dir), &[]);
    let addr = server.addr;
    let banner = server.await_banner_line("store:");
    assert!(
        banner.contains("1 records restored"),
        "banner drifted: {banner}"
    );
    assert_eq!(poll_terminal(addr, &id), before, "recovery changed bytes");
    let (_, stats) = client::request(addr, "GET", "/v1/stats", None).unwrap();
    let stats = json::parse(&stats).unwrap();
    let store = stats.get("store").unwrap();
    assert_eq!(
        store.get("truncated_bytes_at_boot").and_then(Value::as_u64),
        Some((bytes.len() - intact) as u64),
        "the torn tail's bytes must be reported"
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_worker_panics_fail_the_job_but_not_the_server() {
    // QSDD_FAULTS is read once at process start, so the seam needs a
    // subprocess. One armed panic: the first executed job dies, the
    // worker's catch_unwind contains it, and the next job runs clean.
    let server = ServerProcess::spawn(None, &[("QSDD_FAULTS", "worker_panic=1")]);
    let addr = server.addr;
    let doomed = submit(
        addr,
        r#"{"circuit":{"generator":"ghz","qubits":4},"shots":100,"seed":1}"#,
    );
    let envelope = json::parse(&poll_terminal(addr, &doomed)).unwrap();
    assert_eq!(
        envelope.get("status").and_then(Value::as_str),
        Some("failed")
    );
    let error = envelope
        .get("error")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string();
    assert!(error.contains("simulation failed"), "{error}");

    // The process survived; a fresh job completes.
    let healthy = submit(
        addr,
        r#"{"circuit":{"generator":"ghz","qubits":4},"shots":100,"seed":2}"#,
    );
    let envelope = json::parse(&poll_terminal(addr, &healthy)).unwrap();
    assert_eq!(
        envelope.get("status").and_then(Value::as_str),
        Some("completed")
    );
}

#[test]
fn injected_store_write_errors_degrade_but_jobs_still_complete() {
    let dir = scratch_dir("write-faults");
    // Three consecutive write failures is the degradation threshold: the
    // server must drop to memory-only, keep completing jobs, and say so.
    let server = ServerProcess::spawn(Some(&dir), &[("QSDD_FAULTS", "store_write_err=3")]);
    let addr = server.addr;
    let mut ids = Vec::new();
    for seed in 0..4 {
        let id = submit(
            addr,
            &format!(r#"{{"circuit":{{"generator":"ghz","qubits":4}},"shots":100,"seed":{seed}}}"#),
        );
        let body = poll_terminal(addr, &id);
        assert!(body.contains(r#""status":"completed""#), "{body}");
        ids.push(id);
    }
    let stats = await_stats(addr, |stats| store_u64(stats, "write_failures") == Some(3));
    let store = stats.get("store").unwrap();
    assert_eq!(store.get("degraded").and_then(Value::as_bool), Some(true));
    assert_eq!(store.get("write_failures").and_then(Value::as_u64), Some(3));
    let (_, metrics) = client::request(addr, "GET", "/v1/metrics", None).unwrap();
    assert!(metrics.contains("qsdd_store_degraded 1"), "{metrics}");
    assert!(
        metrics.contains("qsdd_store_write_failures_total 3"),
        "{metrics}"
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}
