//! In-process robustness tests for the `qsdd-server` service: job
//! deadlines, the durable result store behind the cache, and graceful
//! degradation when the store directory is unusable.
//!
//! The subprocess `kill -9` suite lives in `tests/store_restart.rs`; this
//! file covers the same durability contract ("a restart never changes the
//! bytes a job id answers with") through clean in-process restarts, where
//! assertions can reach the typed `Server` API (`store_banner`, stats).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use qsdd::json::{self, Value};
use qsdd::server::{client, Server, ServerConfig};

/// A unique per-test scratch directory under the system temp dir,
/// recreated empty on every run.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qsdd-robustness-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot_with_store(store_dir: &std::path::Path) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        store_dir: Some(store_dir.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

/// Submits `body` and returns the job id.
fn submit(addr: std::net::SocketAddr, body: &str) -> String {
    let (status, response) = client::request(addr, "POST", "/v1/jobs", Some(body)).unwrap();
    assert!(status == 200 || status == 202, "submit failed: {response}");
    json::parse(&response)
        .unwrap()
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string()
}

/// Polls until the job is terminal; returns the raw envelope body (the
/// byte-comparable unit for the restart contract).
fn poll_terminal(addr: std::net::SocketAddr, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut session = client::Client::connect(addr).expect("connect");
    loop {
        let (status, body) = session
            .request("GET", &format!("/v1/jobs/{id}"), None)
            .expect("poll");
        assert_eq!(status, 200, "poll failed: {body}");
        let envelope = json::parse(&body).expect("envelope json");
        match envelope.get("status").and_then(Value::as_str) {
            Some("completed") | Some("failed") => return body,
            _ => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn stats(addr: std::net::SocketAddr) -> Value {
    let (status, body) = client::request(addr, "GET", "/v1/stats", None).unwrap();
    assert_eq!(status, 200);
    json::parse(&body).unwrap()
}

#[test]
fn deadlined_jobs_fail_fast_with_a_timed_out_reason() {
    // A job that would take far longer than its deadline: dense-backend
    // QFT shots are expensive, and 100k of them run for minutes in a debug
    // build. The 100 ms deadline must cut the run off cooperatively.
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    let body = r#"{"circuit":{"generator":"qft","qubits":10},"backend":"dense",
                   "dedup":false,"shots":100000,"seed":1,"timeout_ms":100}"#;
    let started = Instant::now();
    let id = submit(addr, body);
    let envelope = json::parse(&poll_terminal(addr, &id)).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(
        envelope.get("status").and_then(Value::as_str),
        Some("failed")
    );
    let error = envelope
        .get("error")
        .and_then(Value::as_str)
        .expect("failed envelope carries an error");
    assert!(error.contains("timed_out"), "{error}");
    assert!(error.contains("100 ms"), "{error}");
    // Cooperative cancellation is prompt: submit-to-terminal stays within a
    // small multiple of the deadline (the uncancelled run takes minutes).
    assert!(
        elapsed < Duration::from_secs(5),
        "cancellation took {elapsed:?}"
    );

    // The deadline is part of the canonical key: the same job under a
    // different budget is a different content address.
    let other = submit(
        addr,
        &body.replace("\"timeout_ms\":100", "\"timeout_ms\":101"),
    );
    assert_ne!(id, other, "timeout_ms must feed the content address");
    poll_terminal(addr, &other);

    // The failure is observable: the dedicated stat and metric both moved.
    let stats = stats(addr);
    assert_eq!(stats.get("jobs_failed").and_then(Value::as_u64), Some(2));
    let (status, metrics) = client::request(addr, "GET", "/v1/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics.contains("qsdd_jobs_timed_out_total 2"),
        "metrics missing the timeout counter: {metrics}"
    );

    // A timed-out worker context is reused, not torn down: the next job on
    // the same (single) worker completes normally.
    let ok = submit(
        addr,
        r#"{"circuit":{"generator":"ghz","qubits":4},"shots":50,"seed":2}"#,
    );
    let envelope = json::parse(&poll_terminal(addr, &ok)).unwrap();
    assert_eq!(
        envelope.get("status").and_then(Value::as_str),
        Some("completed")
    );
    server.shutdown_and_join();
}

#[test]
fn results_survive_a_clean_restart_byte_for_byte() {
    let dir = scratch_dir("clean-restart");
    let jobs: Vec<String> = (0..3)
        .map(|seed| {
            format!(r#"{{"circuit":{{"generator":"ghz","qubits":5}},"shots":200,"seed":{seed}}}"#)
        })
        .collect();

    // First life: run the jobs to completion and capture the exact bytes
    // each GET answers with.
    let server = boot_with_store(&dir);
    let addr = server.addr();
    let ids: Vec<String> = jobs.iter().map(|body| submit(addr, body)).collect();
    let before: Vec<String> = ids.iter().map(|id| poll_terminal(addr, id)).collect();
    // The append happens just after the cell completes, so give the last
    // write a moment to land before pinning the counter.
    let wait_deadline = Instant::now() + Duration::from_secs(10);
    let stats_before = loop {
        let stats = stats(addr);
        let writes = stats
            .get("store")
            .and_then(|store| store.get("writes"))
            .and_then(Value::as_u64);
        if writes == Some(3) || Instant::now() > wait_deadline {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let store = stats_before.get("store").expect("stats report the store");
    assert_eq!(store.get("writes").and_then(Value::as_u64), Some(3));
    assert_eq!(store.get("degraded").and_then(Value::as_bool), Some(false));
    assert_eq!(
        store.get("restored_at_boot").and_then(Value::as_u64),
        Some(0)
    );
    server.shutdown_and_join();

    // Second life: same directory, no resubmission. Every GET must answer
    // with byte-identical envelopes, served from the store-warmed cache
    // without running a single simulation.
    let server = boot_with_store(&dir);
    let addr = server.addr();
    let banner = server
        .store_banner()
        .expect("a store-backed server banners");
    assert!(
        banner.contains("3 records restored"),
        "banner drifted: {banner}"
    );
    for (id, before) in ids.iter().zip(&before) {
        let after = poll_terminal(addr, id);
        assert_eq!(&after, before, "restart changed the bytes of {id}");
    }
    let stats_after = stats(addr);
    assert_eq!(
        stats_after.get("simulations").and_then(Value::as_u64),
        Some(0)
    );
    let store = stats_after.get("store").unwrap();
    assert_eq!(
        store.get("restored_at_boot").and_then(Value::as_u64),
        Some(3)
    );
    assert_eq!(
        store.get("truncated_bytes_at_boot").and_then(Value::as_u64),
        Some(0)
    );
    // Resubmitting one of the jobs is a pure cache hit.
    let resubmitted = submit(addr, &jobs[1]);
    assert_eq!(resubmitted, ids[1]);
    assert_eq!(
        stats(addr).get("simulations").and_then(Value::as_u64),
        Some(0)
    );
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_unusable_store_degrades_to_memory_only_without_failing_jobs() {
    // Point --store-dir at a *file*: the directory cannot be created, so
    // the server must boot degraded (memory-only) and still serve jobs.
    let dir = scratch_dir("degraded");
    std::fs::create_dir_all(&dir).unwrap();
    let blocker = dir.join("not-a-directory");
    std::fs::write(&blocker, b"occupied").unwrap();

    let server = boot_with_store(&blocker);
    let addr = server.addr();
    let banner = server.store_banner().unwrap();
    assert!(banner.contains("DEGRADED"), "banner drifted: {banner}");

    let id = submit(
        addr,
        r#"{"circuit":{"generator":"ghz","qubits":4},"shots":100,"seed":9}"#,
    );
    let envelope = json::parse(&poll_terminal(addr, &id)).unwrap();
    assert_eq!(
        envelope.get("status").and_then(Value::as_str),
        Some("completed")
    );
    let store = stats(addr).get("store").unwrap().clone();
    assert_eq!(store.get("degraded").and_then(Value::as_bool), Some(true));
    assert_eq!(store.get("writes").and_then(Value::as_u64), Some(0));
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn servers_without_a_store_report_a_null_store_object() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    assert!(server.store_banner().is_none());
    let body = stats(server.addr());
    assert!(
        matches!(body.get("store"), Some(Value::Null)),
        "store stats must be null without --store-dir: {body:?}"
    );
    server.shutdown_and_join();
}
