//! Property-based tests (proptest) over the core invariants of the stack:
//! decision diagrams agree with dense linear algebra, unitaries preserve
//! norms, the complex table deduplicates, and measurement histograms are
//! consistent.

use proptest::prelude::*;
use qsdd::circuit::{Circuit, Gate};
use qsdd::core::DdSimulator;
use qsdd::dd::{Complex, ComplexTable, DdPackage, Matrix2};
use qsdd::statevector::run_noiseless;

/// Strategy: a random (small) circuit description as a list of abstract ops.
fn arb_circuit(qubits: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let op = (0..8u8, 0..qubits, 0..qubits, -3.2f64..3.2f64);
    proptest::collection::vec(op, 1..max_len).prop_map(move |ops| {
        let mut c = Circuit::new(qubits);
        for (kind, a, b, angle) in ops {
            match kind {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.x(a);
                }
                2 => {
                    c.t(a);
                }
                3 => {
                    c.rz(angle, a);
                }
                4 => {
                    c.ry(angle, a);
                }
                5 => {
                    if a != b {
                        c.cx(a, b);
                    } else {
                        c.s(a);
                    }
                }
                6 => {
                    if a != b {
                        c.cz(a, b);
                    } else {
                        c.z(a);
                    }
                }
                _ => {
                    if a != b {
                        c.swap(a, b);
                    } else {
                        c.sx(a);
                    }
                }
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The decision diagram simulator and the dense statevector simulator
    /// compute identical final states for arbitrary unitary circuits.
    #[test]
    fn dd_matches_dense_on_random_circuits(circuit in arb_circuit(4, 24)) {
        let run = DdSimulator::new().simulate_noiseless(&circuit);
        let dd_amps = run.package.to_statevector(run.state, 4);
        let dense = run_noiseless(&circuit);
        for (a, b) in dd_amps.iter().zip(dense.amplitudes()) {
            prop_assert!(a.approx_eq(*b, 1e-8), "dd {a} vs dense {b}");
        }
    }

    /// Unitary circuits preserve the norm of the decision diagram state.
    #[test]
    fn unitary_circuits_preserve_norm(circuit in arb_circuit(5, 30)) {
        let run = DdSimulator::new().simulate_noiseless(&circuit);
        let mut package = run.package;
        let norm = package.norm_sqr(run.state);
        prop_assert!((norm - 1.0).abs() < 1e-8, "norm {norm}");
    }

    /// Building the same state twice inside one package yields the identical
    /// edge (hash-consing canonicity).
    #[test]
    fn identical_circuits_share_the_same_diagram(circuit in arb_circuit(4, 16)) {
        let mut dd = DdPackage::new();
        let ops: Vec<_> = circuit.operations().to_vec();
        let build = |dd: &mut DdPackage| {
            let mut state = dd.zero_state(4);
            for op in &ops {
                match op {
                    qsdd::circuit::Operation::Gate { gate, target, controls } => {
                        let m = gate.matrix().unwrap();
                        let op_dd = dd.controlled_op(4, *target, controls, m);
                        state = dd.mat_vec_mul(op_dd, state);
                    }
                    qsdd::circuit::Operation::Swap { a, b } => {
                        let op_dd = dd.swap_op(4, *a, *b);
                        state = dd.mat_vec_mul(op_dd, state);
                    }
                    _ => {}
                }
            }
            state
        };
        let first = build(&mut dd);
        let second = build(&mut dd);
        prop_assert_eq!(first, second);
    }

    /// The complex table never stores near-duplicate values.
    #[test]
    fn complex_table_deduplicates(values in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1..200)) {
        let table = ComplexTable::new();
        let mut ids = Vec::new();
        for (re, im) in &values {
            ids.push(table.lookup(Complex::new(*re, *im)));
        }
        // Looking everything up again gives exactly the same ids.
        for ((re, im), id) in values.iter().zip(&ids) {
            prop_assert_eq!(table.lookup(Complex::new(*re, *im)), *id);
        }
        // And values behind distinct ids differ by more than the tolerance.
        for (i, a) in ids.iter().enumerate() {
            for b in ids.iter().skip(i + 1) {
                if a != b {
                    let va = table.value(*a);
                    let vb = table.value(*b);
                    prop_assert!(!va.approx_eq(vb, table.tolerance() / 2.0));
                }
            }
        }
    }

    /// Single-qubit gate matrices applied through the DD package match the
    /// direct 2x2 linear algebra on one qubit.
    #[test]
    fn single_qubit_dd_application_matches_matrix2(theta in -3.2f64..3.2, phi in -3.2f64..3.2, lam in -3.2f64..3.2) {
        let gate = Gate::U3(theta, phi, lam);
        let m = gate.matrix().unwrap();
        let mut dd = DdPackage::new();
        let state = dd.zero_state(1);
        let op = dd.single_qubit_op(1, 0, m);
        let result = dd.mat_vec_mul(op, state);
        let amps = dd.to_statevector(result, 1);
        let direct = m.apply([Complex::ONE, Complex::ZERO]);
        prop_assert!(amps[0].approx_eq(direct[0], 1e-10));
        prop_assert!(amps[1].approx_eq(direct[1], 1e-10));
    }

    /// Sampling histograms always sum to the number of shots and only contain
    /// basis states with non-zero probability.
    #[test]
    fn measurement_sampling_is_consistent(circuit in arb_circuit(4, 12), shots in 1usize..200) {
        use rand::SeedableRng;
        let run = DdSimulator::new().simulate_noiseless(&circuit);
        let mut package = run.package;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let amps = package.to_statevector(run.state, 4);
        for _ in 0..shots {
            let outcome = package.sample_measurement(run.state, 4, &mut rng);
            prop_assert!(outcome < 16);
            prop_assert!(amps[outcome as usize].norm_sqr() > 1e-12,
                "sampled an outcome with zero probability");
        }
    }

    /// Kraus completeness of every noise channel for arbitrary probabilities.
    #[test]
    fn noise_channels_are_trace_preserving(p in 0.0f64..=1.0) {
        use qsdd::noise::{ErrorChannel, ErrorKind};
        for kind in [ErrorKind::Depolarizing, ErrorKind::AmplitudeDamping, ErrorKind::PhaseFlip] {
            let channel = ErrorChannel::new(kind, p);
            let mut sum = Matrix2::zero();
            for k in channel.kraus_operators() {
                sum = sum.add(&k.adjoint().matmul(&k));
            }
            prop_assert!(sum.approx_eq(&Matrix2::identity(), 1e-10));
        }
    }
}
