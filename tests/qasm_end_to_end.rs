//! End-to-end test of the OpenQASM front-end: parse a source, simulate it on
//! both stochastic back-ends and compare against the dense reference.

use qsdd::circuit::qasm::parse_source;
use qsdd::core::{BackendKind, DdSimulator, StochasticSimulator};
use qsdd::noise::NoiseModel;
use qsdd::statevector::run_noiseless;

const ADDER_LIKE: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
gate majority a, b, c { cx c, b; cx c, a; ccx a, b, c; }
h q[0];
h q[1];
majority q[0], q[1], q[2];
rz(pi/8) q[2];
cx q[2], q[3];
u3(pi/2, 0, pi) q[3];
measure q -> c;
"#;

#[test]
fn parsed_circuit_matches_dense_reference() {
    let parsed = parse_source(ADDER_LIKE).expect("sample parses");
    assert_eq!(parsed.num_qubits(), 4);

    // Compare the unitary part only (the trailing measurement collapses the
    // DD state but is ignored by the dense noiseless executor).
    let mut circuit = qsdd::circuit::Circuit::new(4);
    for op in &parsed {
        if op.is_unitary() {
            circuit.push(op.clone());
        }
    }

    // Noiseless DD amplitudes equal the dense amplitudes.
    let run = DdSimulator::new().simulate_noiseless(&circuit);
    let dd_amps = run.package.to_statevector(run.state, 4);
    let dense = run_noiseless(&circuit);
    for (a, b) in dd_amps.iter().zip(dense.amplitudes()) {
        assert!(a.approx_eq(*b, 1e-10));
    }
}

#[test]
fn parsed_circuit_runs_on_both_stochastic_backends() {
    let circuit = parse_source(ADDER_LIKE).expect("sample parses");
    let noise = NoiseModel::paper_defaults();
    for backend in [BackendKind::DecisionDiagram, BackendKind::Statevector] {
        let result = StochasticSimulator::new()
            .with_backend(backend)
            .with_shots(300)
            .with_noise(noise)
            .with_seed(3)
            .run(&circuit);
        let total: u64 = result.counts.values().sum();
        assert_eq!(total, 300);
    }
}

#[test]
fn ghz_qasm_matches_generator() {
    let source = r#"
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[6];
        h q[0];
        cx q[0], q[1];
        cx q[0], q[2];
        cx q[0], q[3];
        cx q[0], q[4];
        cx q[0], q[5];
    "#;
    let parsed = parse_source(source).expect("ghz parses");
    let generated = qsdd::circuit::generators::ghz(6);

    let run_a = DdSimulator::new().simulate_noiseless(&parsed);
    let run_b = DdSimulator::new().simulate_noiseless(&generated);
    let a = run_a.package.to_statevector(run_a.state, 6);
    let b = run_b.package.to_statevector(run_b.state, 6);
    for (x, y) in a.iter().zip(&b) {
        assert!(x.approx_eq(*y, 1e-12));
    }
}
