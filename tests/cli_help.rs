//! Drift regression for the CLI's `--help` text and `docs/cli.md`.
//!
//! Flags have historically been added to the parser without updating the
//! help screen or the reference doc (the `--weighted` family, `--profile`
//! and `--format` all landed across several PRs). This test pins the
//! complete flag vocabulary in one place and asserts that **both** the
//! `--help` output and `docs/cli.md` mention every flag — so adding a flag
//! without documenting it fails CI, and removing one without pruning the
//! docs does too (via the parser rejecting it, checked for a sample).
//!
//! The pipeline-stage vocabulary is pinned the same way: every stage name
//! in `Stage::ALL` must appear in the docs that enumerate the stages
//! (`docs/cli.md` and `docs/metrics.md`).

use std::path::Path;
use std::process::{Command, Output};

use qsdd::core::Stage;

/// Every flag the CLI accepts, by subcommand. This list is the test's
/// source of truth: extend it when the parser learns a flag.
const RUN_FLAGS: &[&str] = &[
    "--shots",
    "--threads",
    "--intra-threads",
    "--seed",
    "--backend",
    "--opt",
    "--verify-opt",
    "--no-dedup",
    "--weighted",
    "--mass-cutoff",
    "--max-patterns",
    "--exact-histogram",
    "--noiseless",
    "--depolarizing",
    "--damping",
    "--phaseflip",
    "--top",
    "--format",
    "--profile",
    "--timeout",
    "--trace-out",
];
const BATCH_FLAGS: &[&str] = &[
    "--out",
    "--format",
    "--threads",
    "--intra-threads",
    "--no-dedup",
    "--profile",
    "--trace-out",
];
const SERVE_FLAGS: &[&str] = &[
    "--addr",
    "--threads",
    "--cache-entries",
    "--queue-depth",
    "--store-dir",
];

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qsdd_cli"))
        .args(args)
        .output()
        .expect("spawn qsdd_cli")
}

fn help_text() -> String {
    let output = cli(&["--help"]);
    assert!(output.status.success(), "--help must exit 0");
    String::from_utf8(output.stdout).expect("help is UTF-8")
}

fn cli_doc() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/cli.md");
    std::fs::read_to_string(&path).expect("docs/cli.md exists")
}

#[test]
fn every_flag_appears_in_help_and_docs() {
    let help = help_text();
    let doc = cli_doc();
    for flags in [RUN_FLAGS, BATCH_FLAGS, SERVE_FLAGS] {
        for flag in flags {
            assert!(help.contains(flag), "--help drifted: missing `{flag}`");
            assert!(doc.contains(flag), "docs/cli.md drifted: missing `{flag}`");
        }
    }
}

#[test]
fn listed_flags_are_actually_accepted() {
    // The inverse direction for a run-mode sample: every flag in the pinned
    // list parses (an error would print `unknown flag` and exit 1). Value
    // flags get a benign value; --mass-cutoff and friends need --weighted.
    let trace_out =
        std::env::temp_dir().join(format!("qsdd-help-{}.trace.json", std::process::id()));
    let trace_out = trace_out.to_str().expect("temp path is UTF-8");
    let output = cli(&[
        "generate",
        "ghz",
        "4",
        "--shots",
        "10",
        "--threads",
        "1",
        "--intra-threads",
        "2",
        "--seed",
        "1",
        "--backend",
        "dd",
        "--opt",
        "1",
        "--no-dedup",
        "--weighted",
        "--mass-cutoff",
        "0.9",
        "--max-patterns",
        "16",
        "--exact-histogram",
        "--noiseless",
        "--top",
        "3",
        "--format",
        "json",
        "--profile",
        "--timeout",
        "60000",
        "--trace-out",
        trace_out,
    ]);
    let _ = std::fs::remove_file(trace_out);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "pinned flag set was rejected: {stderr}"
    );
    assert!(!stderr.contains("unknown flag"), "{stderr}");
}

#[test]
fn stage_vocabulary_matches_the_docs() {
    let cli_doc = cli_doc();
    let metrics_doc = {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/metrics.md");
        std::fs::read_to_string(&path).expect("docs/metrics.md exists")
    };
    for stage in Stage::ALL {
        let name = stage.name();
        assert!(
            cli_doc.contains(name),
            "docs/cli.md drifted: missing stage `{name}`"
        );
        assert!(
            metrics_doc.contains(name),
            "docs/metrics.md drifted: missing stage `{name}`"
        );
    }
    // The stage-count prose must match Stage::ALL's length ("ten-stage"
    // today): a new stage must update the docs, not silently outgrow them.
    assert_eq!(Stage::ALL.len(), 10);
    assert!(
        cli_doc.contains("ten-stage") || cli_doc.contains("10-stage"),
        "docs/cli.md stage-count prose drifted"
    );
    assert!(
        metrics_doc.contains("ten-stage") || metrics_doc.contains("10-stage"),
        "docs/metrics.md stage-count prose drifted"
    );
}
