//! Dedup-equals-per-shot coverage for trajectory deduplication:
//! property-based evidence that the deduplicating runner is observationally
//! identical to the per-shot path — byte-identical samples, histograms,
//! error counts, node statistics and observable-sum bit patterns — on
//! random circuits with mid-circuit measurements and resets, under noise
//! models with and without amplitude damping, across 1, 2 and 8 worker
//! threads.
//!
//! The generated circuits exercise every execution mode of the dedup
//! planner: full-program pattern groups (unitary circuits under passive
//! noise), prefix groups with checkpointed live resume (mid-circuit
//! measurements), live fallback (damping decays, deviations ahead of
//! damping sites), and the declined-support path (non-unitary tails).

use proptest::prelude::*;
use qsdd::circuit::Circuit;
use qsdd::core::{
    run_engine, run_engine_dedup, BackendKind, Observable, OptLevel, ShotEngine, StochasticOutcome,
};
use qsdd::noise::NoiseModel;

const SHOTS: usize = 48;

/// Strategy: a random circuit over `qubits` qubits mixing unitary gates
/// with mid-circuit measurements and resets (`clbits == qubits`).
fn arb_circuit(qubits: usize, max_len: usize, measured: bool) -> impl Strategy<Value = Circuit> {
    let op = (0..10u8, 0..qubits, 0..qubits, -3.2f64..3.2f64);
    proptest::collection::vec(op, 1..max_len).prop_map(move |ops| {
        let mut c = Circuit::new(qubits);
        for (kind, a, b, angle) in ops {
            match kind {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.x(a);
                }
                2 => {
                    c.rz(angle, a);
                }
                3 => {
                    c.ry(angle, a);
                }
                4 => {
                    if a != b {
                        c.cx(a, b);
                    } else {
                        c.s(a);
                    }
                }
                5 => {
                    if a != b {
                        c.cz(a, b);
                    } else {
                        c.z(a);
                    }
                }
                6 => {
                    if a != b {
                        c.swap(a, b);
                    } else {
                        c.t(a);
                    }
                }
                7 if measured => {
                    c.measure(a, a);
                }
                8 if measured => {
                    c.reset(a);
                }
                _ => {
                    c.sx(a);
                }
            }
        }
        c
    })
}

/// Asserts that a deduplicated outcome equals the per-shot reference byte
/// for byte in every deterministic field.
fn assert_identical(dedup: &StochasticOutcome, reference: &StochasticOutcome) {
    assert_eq!(dedup.counts, reference.counts, "histogram diverged");
    assert_eq!(dedup.shots, reference.shots);
    assert_eq!(dedup.error_events, reference.error_events);
    assert_eq!(dedup.dd_nodes_peak, reference.dd_nodes_peak);
    assert_eq!(
        dedup.dd_nodes_avg.to_bits(),
        reference.dd_nodes_avg.to_bits(),
        "node average diverged"
    );
    assert_eq!(
        dedup.observable_estimates.len(),
        reference.observable_estimates.len()
    );
    for (a, b) in dedup
        .observable_estimates
        .iter()
        .zip(&reference.observable_estimates)
    {
        assert_eq!(a.to_bits(), b.to_bits(), "observable sum diverged");
    }
}

fn compare_engine(engine: &ShotEngine, observables: &[Observable]) {
    for threads in [1usize, 2, 8] {
        let reference = run_engine(engine, SHOTS, threads, observables);
        let dedup = run_engine_dedup(engine, SHOTS, threads, observables);
        assert_identical(&dedup, &reference);
        if let Some(stats) = &dedup.dedup {
            assert!(stats.unique_trajectories <= SHOTS as u64);
            assert!(stats.live_shots <= SHOTS as u64);
            assert!(
                stats.unique_trajectories >= stats.live_shots,
                "every live shot is its own trajectory"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Full paper noise (including state-dependent amplitude damping) on
    /// circuits with mid-circuit measurements and resets: prefix groups,
    /// live fallback and declined support must all reproduce the per-shot
    /// path byte for byte.
    #[test]
    fn dedup_matches_per_shot_under_damping_noise(
        circuit in arb_circuit(4, 20, true),
        seed in 0u64..1000,
    ) {
        let engine = ShotEngine::new(
            &circuit,
            BackendKind::DecisionDiagram,
            NoiseModel::paper_defaults(),
            seed,
            OptLevel::O0,
        );
        let observables = [
            Observable::BasisProbability(0),
            Observable::QubitExcitation(1),
        ];
        compare_engine(&engine, &observables);
    }

    /// Strong passive-only noise on unitary circuits: rich multi-error
    /// patterns through the full-program dedup path.
    #[test]
    fn dedup_matches_per_shot_under_strong_passive_noise(
        circuit in arb_circuit(4, 16, false),
        seed in 0u64..1000,
    ) {
        let engine = ShotEngine::new(
            &circuit,
            BackendKind::DecisionDiagram,
            NoiseModel::new(0.05, 0.0, 0.05),
            seed,
            OptLevel::O0,
        );
        let observables = [Observable::QubitExcitation(2)];
        compare_engine(&engine, &observables);
        // Unitary circuits under passive noise always support dedup.
        prop_assert!(engine.supports_dedup());
    }

    /// Mid-circuit measurements under passive noise: the checkpoint-resume
    /// prefix path (and its declined-support sibling for short prefixes).
    #[test]
    fn dedup_matches_per_shot_with_measurements(
        circuit in arb_circuit(3, 18, true),
        seed in 0u64..1000,
    ) {
        let engine = ShotEngine::new(
            &circuit,
            BackendKind::DecisionDiagram,
            NoiseModel::new(0.02, 0.0, 0.02),
            seed,
            OptLevel::O0,
        );
        compare_engine(&engine, &[Observable::BasisProbability(1)]);
    }

    /// The dense statevector back-end deduplicates full unitary programs
    /// and declines everything else; both paths must match per-shot
    /// execution byte for byte.
    #[test]
    fn dense_dedup_matches_per_shot(
        circuit in arb_circuit(3, 14, false),
        seed in 0u64..1000,
    ) {
        let engine = ShotEngine::new(
            &circuit,
            BackendKind::Statevector,
            NoiseModel::new(0.03, 0.0, 0.03),
            seed,
            OptLevel::O0,
        );
        compare_engine(&engine, &[Observable::QubitExcitation(0)]);
    }
}

#[test]
fn dedup_groups_dominate_at_realistic_noise() {
    use qsdd::circuit::generators::ghz;
    let engine = ShotEngine::new(
        &ghz(16),
        BackendKind::DecisionDiagram,
        NoiseModel::noiseless().with_depolarizing(0.001),
        2021,
        OptLevel::O0,
    );
    let outcome = run_engine_dedup(&engine, 10_000, 0, &[]);
    let stats = outcome.dedup.expect("dedup must engage on this workload");
    assert_eq!(stats.live_shots, 0, "passive noise never goes live");
    assert!(
        stats.unique_trajectories < 1000,
        "expected heavy sharing, got {} unique trajectories",
        stats.unique_trajectories
    );
    assert!(outcome.dedup_hit_rate() > 0.9);
    // And the shared trajectories reproduce the per-shot histogram exactly.
    let reference = run_engine(&engine, 10_000, 0, &[]);
    assert_eq!(outcome.counts, reference.counts);
    assert_eq!(outcome.error_events, reference.error_events);
}

#[test]
fn transpiled_engines_dedup_through_the_output_layout() {
    use qsdd::circuit::generators::qft;
    // qft ends in trailing SWAPs which O2 elides into an output relabeling;
    // deduplicated outcomes must be restored through it exactly like
    // per-shot outcomes.
    let circuit = qft(4);
    let engine = ShotEngine::new(
        &circuit,
        BackendKind::DecisionDiagram,
        NoiseModel::new(0.01, 0.0, 0.01),
        11,
        OptLevel::O2,
    );
    for threads in [1usize, 3] {
        let reference = run_engine(&engine, 400, threads, &[]);
        let dedup = run_engine_dedup(&engine, 400, threads, &[]);
        assert_eq!(dedup.counts, reference.counts);
        assert_eq!(dedup.error_events, reference.error_events);
    }
}

#[test]
fn simulator_facade_exposes_the_dedup_switch() {
    use qsdd::circuit::generators::ghz;
    use qsdd::core::StochasticSimulator;
    let base = StochasticSimulator::new()
        .with_shots(500)
        .with_seed(5)
        .with_threads(2)
        .with_noise(NoiseModel::noiseless().with_depolarizing(0.002));
    let on = base.clone().run(&ghz(8));
    let off = base.with_dedup(false).run(&ghz(8));
    assert!(on.dedup.is_some(), "dedup engages by default");
    assert!(off.dedup.is_none(), "--no-dedup falls back to per-shot");
    assert_eq!(on.counts, off.counts);
    assert_eq!(on.error_events, off.error_events);
    assert_eq!(on.dd_nodes_peak, off.dd_nodes_peak);
}
