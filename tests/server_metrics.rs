//! Exact-value tests of the observability surface: `GET /v1/metrics`
//! (Prometheus text exposition) and the extended `GET /v1/stats`, under a
//! scripted mix of cache hits, misses, coalesces and 429 sheds, across
//! 1/2/8 server threads.
//!
//! Every server instance owns a private metrics registry, so the counters
//! asserted here are exact — no tolerance windows, no cross-test bleed.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use qsdd::json::{self, Value};
use qsdd::server::{client, Server, ServerConfig};

/// Boots a server on an ephemeral loopback port.
fn boot(threads: usize, queue_depth: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        queue_depth,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

/// Polls `GET /v1/jobs/<id>` until the job completes.
fn wait_completed(addr: std::net::SocketAddr, id: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut session = client::Client::connect(addr).expect("connect");
    loop {
        let (status, body) = session
            .request("GET", &format!("/v1/jobs/{id}"), None)
            .expect("poll");
        assert_eq!(status, 200, "poll failed: {body}");
        match json::parse(&body)
            .expect("envelope json")
            .get("status")
            .and_then(Value::as_str)
        {
            Some("completed") => return,
            Some("failed") => panic!("job {id} failed: {body}"),
            _ => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Submits a job and returns `(status, id)`.
fn submit(addr: std::net::SocketAddr, body: &str) -> (u16, Option<String>) {
    let (status, response) = client::request(addr, "POST", "/v1/jobs", Some(body)).unwrap();
    let id = json::parse(&response)
        .ok()
        .and_then(|value| value.get("id").and_then(Value::as_str).map(str::to_string));
    (status, id)
}

/// Scrapes `/v1/metrics` into a `series -> value` map (`series` is the
/// full sample key including labels, e.g.
/// `qsdd_http_requests_total{endpoint="/v1/jobs",status="202"}`).
fn scrape(addr: std::net::SocketAddr) -> (Vec<(String, String)>, HashMap<String, f64>, String) {
    let mut session = client::Client::connect(addr).expect("connect");
    let (status, headers, body) = session
        .request_with_headers("GET", "/v1/metrics", None)
        .expect("scrape");
    assert_eq!(status, 200, "{body}");
    let mut samples = HashMap::new();
    for line in body.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        // Exposition format: `<series> <value>` — anything else is invalid.
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("malformed exposition line `{line}`");
        });
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric sample in `{line}`"));
        samples.insert(series.to_string(), value);
    }
    (headers, samples, body)
}

/// Asserts one exact sample value.
fn assert_sample(samples: &HashMap<String, f64>, series: &str, expected: f64, context: &str) {
    let actual = samples
        .get(series)
        .unwrap_or_else(|| panic!("{context}: series `{series}` not exposed"));
    assert_eq!(*actual, expected, "{context}: `{series}`");
}

#[test]
fn exact_hit_and_miss_counters_across_thread_counts() {
    for threads in [1usize, 2, 8] {
        let context = format!("{threads} threads");
        let server = boot(threads, 256);
        let addr = server.addr();
        let bodies: Vec<String> = (0..3)
            .map(|i| {
                format!(
                    r#"{{"circuit":{{"generator":"ghz","qubits":6}},"shots":300,"seed":{}}}"#,
                    100 + i
                )
            })
            .collect();

        // 3 distinct submissions: all misses, each executed to completion.
        for body in &bodies {
            let (status, id) = submit(addr, body);
            assert_eq!(status, 202, "{context}");
            wait_completed(addr, &id.unwrap());
        }
        // The same 3 again: all served from the completed cache cells.
        for body in &bodies {
            let (status, id) = submit(addr, body);
            assert_eq!(status, 200, "{context}: expected a cache hit");
            assert!(id.is_some());
        }

        let (headers, samples, page) = scrape(addr);
        let content_type = headers
            .iter()
            .find(|(name, _)| name == "content-type")
            .map(|(_, value)| value.as_str());
        assert_eq!(
            content_type,
            Some("text/plain; version=0.0.4; charset=utf-8"),
            "{context}"
        );
        // Counters match the scripted workload exactly.
        assert_sample(&samples, "qsdd_cache_misses_total", 3.0, &context);
        assert_sample(&samples, "qsdd_cache_hits_total", 3.0, &context);
        assert_sample(&samples, "qsdd_cache_coalesced_total", 0.0, &context);
        assert_sample(&samples, "qsdd_cache_evictions_total", 0.0, &context);
        assert_sample(&samples, "qsdd_jobs_rejected_total", 0.0, &context);
        assert_sample(&samples, "qsdd_jobs_completed_total", 3.0, &context);
        assert_sample(&samples, "qsdd_jobs_failed_total", 0.0, &context);
        assert_sample(&samples, "qsdd_queue_depth", 0.0, &context);
        // Histograms saw one sample per executed job.
        assert_sample(&samples, "qsdd_queue_wait_seconds_count", 3.0, &context);
        assert_sample(&samples, "qsdd_job_duration_seconds_count", 3.0, &context);
        // Per-endpoint request counters (the poll endpoint's count depends
        // on scheduling, so only the deterministic series are asserted).
        assert_sample(
            &samples,
            "qsdd_http_requests_total{endpoint=\"/v1/jobs\",status=\"202\"}",
            3.0,
            &context,
        );
        assert_sample(
            &samples,
            "qsdd_http_requests_total{endpoint=\"/v1/jobs\",status=\"200\"}",
            3.0,
            &context,
        );
        // HELP/TYPE metadata renders for the asserted series.
        assert!(
            page.contains("# TYPE qsdd_cache_hits_total counter"),
            "{context}"
        );
        assert!(
            page.contains("# TYPE qsdd_queue_wait_seconds histogram"),
            "{context}"
        );
        assert!(page.contains("# TYPE qsdd_queue_depth gauge"), "{context}");
        // The cumulative bucket invariant holds: +Inf bucket == _count.
        assert_sample(
            &samples,
            "qsdd_queue_wait_seconds_bucket{le=\"+Inf\"}",
            3.0,
            &context,
        );
        // The process-global section (stage histograms, DD table traffic)
        // is appended to the page. Values are process-wide, so only
        // presence is asserted here.
        assert!(page.contains("qsdd_stage_seconds"), "{context}");

        // A second scrape sees the first one's request counted (a request
        // is observed after its response body is rendered, so a scrape
        // never counts itself).
        let (_, samples, _) = scrape(addr);
        assert_sample(
            &samples,
            "qsdd_http_requests_total{endpoint=\"/v1/metrics\",status=\"200\"}",
            1.0,
            &context,
        );

        // `/v1/stats` agrees with the registry.
        let (status, stats) = client::request(addr, "GET", "/v1/stats", None).unwrap();
        assert_eq!(status, 200);
        let stats = json::parse(&stats).unwrap();
        for (field, expected) in [
            ("jobs_accepted", 6),
            ("simulations", 3),
            ("cache_hits", 3),
            ("coalesced", 0),
            ("rejected", 0),
            ("rejected_jobs", 0),
        ] {
            assert_eq!(
                stats.get(field).and_then(Value::as_u64),
                Some(expected),
                "{context}: stats `{field}`"
            );
        }
        server.shutdown_and_join();
    }
}

#[test]
fn deterministic_backpressure_counts_under_concurrent_load() {
    // Scripted 429s: fill every worker with a slow job, put one more in the
    // 1-deep queue, then probe. The blockers run ~seconds (debug-profile
    // dense simulation) while the probe phase takes milliseconds, so the
    // counts below are deterministic, not timing-lucky.
    let blocker = |seed: usize| {
        format!(
            r#"{{"circuit":{{"generator":"qft","qubits":9}},"backend":"dense","dedup":false,"shots":300,"seed":{seed}}}"#
        )
    };
    for threads in [1usize, 2, 8] {
        let context = format!("{threads} threads");
        let server = boot(threads, 1);
        let addr = server.addr();

        // One blocker per worker, each submitted only once the queue is
        // empty again (so none bounces off the 1-deep queue).
        for seed in 0..threads {
            let deadline = Instant::now() + Duration::from_secs(30);
            loop {
                let (_, samples, _) = scrape(addr);
                if samples["qsdd_queue_depth"] == 0.0 {
                    break;
                }
                assert!(Instant::now() < deadline, "{context}: queue never drained");
                std::thread::sleep(Duration::from_millis(2));
            }
            let (status, _) = submit(addr, &blocker(seed));
            assert_eq!(status, 202, "{context}: blocker {seed}");
        }
        // Wait until every blocker was picked up by a worker...
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let (_, samples, _) = scrape(addr);
            if samples["qsdd_queue_wait_seconds_count"] == threads as f64 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "{context}: workers never started"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        // ... then fill the queue with one more,
        let (status, _) = submit(addr, &blocker(threads));
        assert_eq!(status, 202, "{context}: queued blocker");
        // shed exactly 3 distinct probes,
        for probe in 0..3 {
            let (status, _) = submit(
                addr,
                &format!(
                    r#"{{"circuit":{{"generator":"ghz","qubits":4}},"shots":50,"seed":{probe}}}"#
                ),
            );
            assert_eq!(status, 429, "{context}: probe {probe}");
        }
        // and coalesce one duplicate onto the in-flight first blocker.
        let (status, _) = submit(addr, &blocker(0));
        assert_eq!(status, 202, "{context}: duplicate should coalesce");

        let (_, samples, _) = scrape(addr);
        let n = threads as f64;
        assert_sample(&samples, "qsdd_cache_misses_total", n + 1.0, &context);
        assert_sample(&samples, "qsdd_cache_coalesced_total", 1.0, &context);
        assert_sample(&samples, "qsdd_cache_hits_total", 0.0, &context);
        assert_sample(&samples, "qsdd_jobs_rejected_total", 3.0, &context);
        assert_sample(&samples, "qsdd_jobs_completed_total", 0.0, &context);
        assert_sample(&samples, "qsdd_queue_wait_seconds_count", n, &context);
        assert_sample(&samples, "qsdd_job_duration_seconds_count", 0.0, &context);
        assert_sample(&samples, "qsdd_queue_depth", 1.0, &context);
        assert_sample(
            &samples,
            "qsdd_http_requests_total{endpoint=\"/v1/jobs\",status=\"202\"}",
            n + 2.0,
            &context,
        );
        assert_sample(
            &samples,
            "qsdd_http_requests_total{endpoint=\"/v1/jobs\",status=\"429\"}",
            3.0,
            &context,
        );

        // `/v1/stats` reports the sheds under both spellings.
        let (_, stats) = client::request(addr, "GET", "/v1/stats", None).unwrap();
        let stats = json::parse(&stats).unwrap();
        assert_eq!(stats.get("rejected").and_then(Value::as_u64), Some(3));
        assert_eq!(stats.get("rejected_jobs").and_then(Value::as_u64), Some(3));

        // Shutdown drains the accepted blockers.
        server.shutdown_and_join();
    }
}
