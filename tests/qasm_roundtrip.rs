//! Property-based round-trip tests for the OpenQASM 2.0 writer.
//!
//! `write_source` is the inverse of `parse_source` on the expressible
//! subset: parse → emit → parse is the identity on operations (and the
//! emitted source is a fixed point, which is what lets the server echo a
//! canonical normalized form).

use proptest::prelude::*;
use qsdd::circuit::{qasm, Circuit, Gate};

/// Strategy: a random circuit using only operations the OpenQASM writer
/// can express (every uncontrolled gate, the named controlled forms, ccx,
/// swap, measure, reset, barrier).
fn arb_expressible_circuit(qubits: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let op = (0..20u8, 0..qubits, 0..qubits, 0..qubits, -6.3f64..6.3f64);
    proptest::collection::vec(op, 1..max_len).prop_map(move |ops| {
        let mut c = Circuit::new(qubits);
        for (kind, a, b, d, angle) in ops {
            let distinct_ab = a != b;
            let distinct_abd = distinct_ab && d != a && d != b;
            match kind {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.x(a);
                }
                2 => {
                    c.y(a);
                }
                3 => {
                    c.z(a);
                }
                4 => {
                    c.s(a);
                }
                5 => {
                    c.sdg(a);
                }
                6 => {
                    c.t(a);
                }
                7 => {
                    c.sx(a);
                }
                8 => {
                    c.rx(angle, a);
                }
                9 => {
                    c.ry(angle, a);
                }
                10 => {
                    c.rz(angle, a);
                }
                11 => {
                    c.p(angle, a);
                }
                12 => {
                    c.gate(Gate::U2(angle, -angle / 2.0), a);
                }
                13 => {
                    c.u3(angle, angle / 3.0, -angle, a);
                }
                14 if distinct_ab => {
                    c.cx(a, b);
                }
                15 if distinct_ab => {
                    c.cz(a, b);
                }
                16 if distinct_ab => {
                    c.controlled_gate(Gate::Ry(angle), &[a], b);
                }
                17 if distinct_abd => {
                    c.ccx(a, b, d);
                }
                18 if distinct_ab => {
                    c.swap(a, b);
                }
                19 => {
                    c.measure(a, b);
                    c.reset(a);
                    c.barrier();
                }
                _ => {
                    c.tdg(a);
                }
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parse_emit_parse_is_the_identity(circuit in arb_expressible_circuit(4, 40)) {
        let source = qasm::write_source(&circuit).expect("expressible circuit");
        let parsed = qasm::parse_source(&source).expect("own output parses");
        prop_assert_eq!(parsed.num_qubits(), circuit.num_qubits());
        prop_assert_eq!(parsed.operations(), circuit.operations());
        // Emission is a fixed point: the normalized form re-emits
        // byte-identically (the server's canonical circuit echo).
        let again = qasm::write_source(&parsed).expect("reparsed circuit re-emits");
        prop_assert_eq!(again, source);
    }

    #[test]
    fn angles_survive_bit_exactly(angle in -1.0e12f64..1.0e12) {
        let mut circuit = Circuit::new(2);
        circuit.rz(angle, 0).controlled_gate(Gate::Rx(angle / 2.0), &[1], 0);
        let parsed = qasm::parse_source(&qasm::write_source(&circuit).unwrap()).unwrap();
        prop_assert_eq!(parsed.operations(), circuit.operations());
    }
}
