//! Property-based equivalence tests for the `qsdd-transpile` pass pipeline:
//! every pass — individually and composed at `O1`/`O2` — must preserve
//! circuit semantics (statevector fidelity ≥ 1 − 1e−9 with the original,
//! output layout applied) and must never increase the gate count. QASM
//! sources round-trip through `O2` unchanged in semantics.

use proptest::prelude::*;
use qsdd::circuit::qasm::parse_source;
use qsdd::circuit::{generators, Circuit};
use qsdd::transpile::{passes, transpile, transpile_verified, verify, OptLevel, Pass, PassManager};

const TOLERANCE: f64 = 1e-9;

/// Strategy: a random circuit mixing single-qubit gates, rotations,
/// entanglers, swaps and barriers — deliberately heavy on patterns the
/// passes rewrite (adjacent duplicates, same-axis rotations, gate runs).
fn arb_circuit(qubits: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let op = (0..14u8, 0..qubits, 0..qubits, -3.2f64..3.2);
    proptest::collection::vec(op, 1..max_len).prop_map(move |ops| {
        let mut c = Circuit::new(qubits);
        for (kind, a, b, angle) in ops {
            match kind {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.x(a);
                }
                2 => {
                    c.y(a);
                }
                3 => {
                    c.z(a);
                }
                4 => {
                    c.s(a);
                }
                5 => {
                    c.sdg(a);
                }
                6 => {
                    c.t(a);
                }
                7 => {
                    c.tdg(a);
                }
                8 => {
                    c.rx(angle, a);
                }
                9 => {
                    c.rz(angle, a);
                }
                10 => {
                    c.p(angle, a);
                }
                11 => {
                    if a != b {
                        c.cx(a, b);
                    } else {
                        c.ry(angle, a);
                    }
                }
                12 => {
                    if a != b {
                        c.swap(a, b);
                    } else {
                        c.barrier();
                    }
                }
                _ => {
                    if a != b {
                        c.cp(angle, a, b);
                    } else {
                        c.u3(angle, -0.4 * angle, 0.9 * angle, a);
                    }
                }
            }
        }
        c
    })
}

fn single_pass_manager(pass: Box<dyn Pass>) -> PassManager {
    let mut manager = PassManager::new();
    manager.add_pass(pass);
    manager
}

fn assert_pass_preserves_semantics(pass: Box<dyn Pass>, circuit: &Circuit) {
    let name = pass.name();
    let manager = single_pass_manager(pass);
    let result = manager.run(circuit);
    assert!(
        result.circuit.stats().gate_count <= circuit.stats().gate_count,
        "{name} increased the gate count"
    );
    let fidelity = verify::fidelity(circuit, &result);
    assert!(
        fidelity >= 1.0 - TOLERANCE,
        "{name} broke equivalence: fidelity {fidelity}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Inverse-pair cancellation preserves semantics on random circuits.
    #[test]
    fn cancel_inverse_pairs_is_sound(circuit in arb_circuit(4, 24)) {
        assert_pass_preserves_semantics(Box::new(passes::CancelInversePairs), &circuit);
    }

    /// Rotation merging preserves semantics on random circuits.
    #[test]
    fn merge_rotations_is_sound(circuit in arb_circuit(4, 24)) {
        assert_pass_preserves_semantics(Box::new(passes::MergeRotations::default()), &circuit);
    }

    /// Single-qubit fusion preserves semantics on random circuits.
    #[test]
    fn fuse_single_qubit_is_sound(circuit in arb_circuit(4, 24)) {
        assert_pass_preserves_semantics(Box::new(passes::FuseSingleQubitGates::default()), &circuit);
    }

    /// Identity elimination preserves semantics on random circuits.
    #[test]
    fn remove_identities_is_sound(circuit in arb_circuit(4, 24)) {
        assert_pass_preserves_semantics(Box::new(passes::RemoveIdentities::default()), &circuit);
    }

    /// Trailing-swap elision preserves semantics (the recorded layout makes
    /// the permuted statevector match exactly).
    #[test]
    fn elide_final_swaps_is_sound(circuit in arb_circuit(4, 24)) {
        assert_pass_preserves_semantics(Box::new(passes::ElideFinalSwaps), &circuit);
    }

    /// The full O1 and O2 pipelines preserve semantics and never grow the
    /// circuit.
    #[test]
    fn full_pipelines_are_sound(circuit in arb_circuit(5, 32)) {
        for level in [OptLevel::O1, OptLevel::O2] {
            let result = transpile(&circuit, level);
            prop_assert!(result.circuit.stats().gate_count <= circuit.stats().gate_count);
            let fidelity = verify::fidelity(&circuit, &result);
            prop_assert!(
                fidelity >= 1.0 - TOLERANCE,
                "{} broke equivalence: fidelity {}", level, fidelity
            );
        }
    }

    /// Transpiling twice changes nothing more: O2 reaches a fixed point.
    #[test]
    fn o2_is_idempotent(circuit in arb_circuit(4, 24)) {
        let once = transpile(&circuit, OptLevel::O2);
        let twice = transpile(&once.circuit, OptLevel::O2);
        prop_assert_eq!(
            once.circuit.stats().gate_count,
            twice.circuit.stats().gate_count
        );
    }
}

/// Regression test: `Gate::inverse` is only an inverse up to global phase
/// for some gates (`Sx`). Cancelling such a pair is fine uncontrolled but
/// must NOT fire for controlled pairs, where the phase becomes relative.
#[test]
fn controlled_phase_inexact_inverse_pairs_are_preserved() {
    use qsdd::circuit::Gate;
    let mut circuit = Circuit::new(2);
    circuit
        .h(0)
        .controlled_gate(Gate::Sx, &[0], 1)
        .controlled_gate(Gate::Sx.inverse(), &[0], 1)
        .h(0);
    for level in [OptLevel::O1, OptLevel::O2] {
        let result = transpile(&circuit, level);
        let fidelity = verify::fidelity(&circuit, &result);
        assert!(
            fidelity >= 1.0 - TOLERANCE,
            "controlled Sx pair broke at {level}: fidelity {fidelity}"
        );
    }
    // The uncontrolled version is a pure global phase and may cancel fully.
    let mut uncontrolled = Circuit::new(1);
    uncontrolled.sx(0).gate(Gate::Sx.inverse(), 0);
    let result = transpile(&uncontrolled, OptLevel::O2);
    assert_eq!(result.circuit.stats().gate_count, 0);
    assert!(verify::fidelity(&uncontrolled, &result) >= 1.0 - TOLERANCE);
}

#[test]
fn every_generator_verifies_at_every_level() {
    let suite: Vec<Circuit> = vec![
        generators::ghz(7),
        generators::qft(8),
        generators::grover(4, 9, None),
        generators::bernstein_vazirani(6, 0b101101),
        generators::w_state(5),
        generators::qaoa_maxcut_ring(6, &[(0.4, 0.9), (0.7, 0.3)]),
        generators::quantum_phase_estimation(4, 0.3125),
        generators::random_circuit(5, 40, 11),
    ];
    for circuit in suite {
        for level in OptLevel::ALL {
            let result = transpile(&circuit, level);
            assert!(
                result.circuit.stats().gate_count <= circuit.stats().gate_count,
                "{} grew at {level}",
                circuit.name()
            );
            let fidelity = verify::fidelity(&circuit, &result);
            assert!(
                fidelity >= 1.0 - TOLERANCE,
                "{} at {level}: fidelity {fidelity}",
                circuit.name()
            );
        }
    }
}

#[test]
fn acceptance_qft10_and_grover_reduce_measurably_at_o2() {
    let qft10 = generators::qft(10);
    let result = transpile_verified(&qft10, OptLevel::O2).expect("qft verifies");
    assert!(
        result.report.total_removed() >= 5,
        "qft(10) only removed {}",
        result.report.total_removed()
    );

    let grover = generators::grover(6, 5, None);
    let result = transpile_verified(&grover, OptLevel::O2).expect("grover verifies");
    assert!(
        result.report.reduction() > 0.3,
        "grover only removed {:.1} %",
        100.0 * result.report.reduction()
    );
}

#[test]
fn qasm_sources_round_trip_through_o2() {
    let sources = [
        // Redundancy-heavy source: everything should cancel or fuse.
        r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[3];
            h q[0]; h q[0];
            x q[1]; x q[1];
            t q[2]; tdg q[2];
            cx q[0], q[1]; cx q[0], q[1];
            rz(0.25) q[2]; rz(-0.25) q[2];
        "#,
        // A realistic mixed circuit with controls and rotations.
        r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[4];
            h q[0];
            cx q[0], q[1];
            rz(pi/8) q[1];
            u3(pi/2, 0, pi) q[2];
            ccx q[0], q[1], q[3];
            swap q[2], q[3];
        "#,
        // Ends in a swap network that O2 turns into a layout.
        r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[3];
            h q[0]; cx q[0], q[1]; t q[2];
            swap q[0], q[2];
            swap q[1], q[2];
        "#,
    ];
    for (i, source) in sources.iter().enumerate() {
        let circuit = parse_source(source).expect("source parses");
        let result = transpile(&circuit, OptLevel::O2);
        let fidelity = verify::fidelity(&circuit, &result);
        assert!(
            fidelity >= 1.0 - TOLERANCE,
            "qasm source {i} changed semantics: fidelity {fidelity}"
        );
        assert!(result.circuit.stats().gate_count <= circuit.stats().gate_count);
    }
    // The redundancy-heavy source optimizes away completely.
    let circuit = parse_source(sources[0]).expect("source parses");
    let result = transpile(&circuit, OptLevel::O2);
    assert_eq!(result.circuit.stats().gate_count, 0);
}

#[test]
fn pass_trait_objects_expose_names() {
    let passes: Vec<Box<dyn Pass>> = vec![
        Box::new(passes::CancelInversePairs),
        Box::new(passes::MergeRotations::default()),
        Box::new(passes::FuseSingleQubitGates::default()),
        Box::new(passes::RemoveIdentities::default()),
        Box::new(passes::ElideFinalSwaps),
    ];
    let names: Vec<_> = passes.iter().map(|p| p.name()).collect();
    assert_eq!(
        names,
        vec![
            "cancel-inverse-pairs",
            "merge-rotations",
            "fuse-single-qubit",
            "remove-identities",
            "elide-final-swaps",
        ]
    );
    // And the standard O2 pipeline is exactly these passes.
    assert_eq!(PassManager::for_level(OptLevel::O2).pass_names(), names);
}
