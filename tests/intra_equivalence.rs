//! Intra-shot parallelism is unobservable in the results: property-based
//! evidence that an intra-shot fork-join width of 1, 2 or 8 produces
//! byte-identical histograms, observable-sum bit patterns and
//! decision-diagram node statistics on random circuits with mid-circuit
//! measurements and resets, on both back-ends, through the per-shot, the
//! deduplicating and the weighted-enumeration drivers.
//!
//! The mechanism under test is the speculation contract of `qsdd_dd`
//! (`crates/dd/src/ops.rs`): parallel diagram operations run speculatively
//! and any attempt that *created* a table entry is rolled back and re-run
//! serially, so entry creation — the only order-sensitive event — always
//! happens in serial order. These tests deliberately assert nothing about
//! cache hit/miss or contention counters: those are relaxed diagnostics and
//! explicitly outside the determinism contract.

use proptest::prelude::*;
use qsdd::circuit::Circuit;
use qsdd::core::{
    run_engine, run_engine_dedup, run_engine_weighted, BackendKind, Observable, OptLevel,
    ShotEngine, StochasticOutcome, WeightedOptions,
};
use qsdd::noise::NoiseModel;

const SHOTS: usize = 40;

/// Strategy: a random circuit over `qubits` qubits mixing unitary gates
/// with mid-circuit measurements and resets.
fn arb_circuit(qubits: usize, max_len: usize, measured: bool) -> impl Strategy<Value = Circuit> {
    let op = (0..10u8, 0..qubits, 0..qubits, -3.2f64..3.2f64);
    proptest::collection::vec(op, 1..max_len).prop_map(move |ops| {
        let mut c = Circuit::new(qubits);
        for (kind, a, b, angle) in ops {
            match kind {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.x(a);
                }
                2 => {
                    c.rz(angle, a);
                }
                3 => {
                    c.ry(angle, a);
                }
                4 => {
                    if a != b {
                        c.cx(a, b);
                    } else {
                        c.s(a);
                    }
                }
                5 => {
                    if a != b {
                        c.cz(a, b);
                    } else {
                        c.z(a);
                    }
                }
                6 => {
                    if a != b {
                        c.swap(a, b);
                    } else {
                        c.t(a);
                    }
                }
                7 if measured => {
                    c.measure(a, a);
                }
                8 if measured => {
                    c.reset(a);
                }
                _ => {
                    c.sx(a);
                }
            }
        }
        c
    })
}

/// Asserts byte-identity of every deterministic outcome field.
fn assert_identical(outcome: &StochasticOutcome, reference: &StochasticOutcome, label: &str) {
    assert_eq!(outcome.counts, reference.counts, "{label}: histogram");
    assert_eq!(outcome.shots, reference.shots, "{label}: shots");
    assert_eq!(
        outcome.error_events, reference.error_events,
        "{label}: error events"
    );
    assert_eq!(
        outcome.dd_nodes_peak, reference.dd_nodes_peak,
        "{label}: dd peak"
    );
    assert_eq!(
        outcome.dd_nodes_avg.to_bits(),
        reference.dd_nodes_avg.to_bits(),
        "{label}: dd node average"
    );
    for (a, b) in outcome
        .observable_estimates
        .iter()
        .zip(&reference.observable_estimates)
    {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: observable sum");
    }
}

/// Runs the per-shot, dedup and weighted drivers at every intra width and
/// compares each against its own width-1 reference.
///
/// The drivers run on **one** shot-worker: a single worker's intra request
/// is honoured as-is (several workers clamp against `cores / workers`,
/// which would quietly serialise the whole matrix on small CI machines).
fn compare_widths(circuit: &Circuit, backend: BackendKind, noise: NoiseModel, seed: u64) {
    let observables = [
        Observable::BasisProbability(0),
        Observable::QubitExcitation(1),
    ];
    let weighted_options = WeightedOptions::default();
    let mut engine = ShotEngine::new(circuit, backend, noise, seed, OptLevel::O0);

    let per_shot_ref = run_engine(&engine, SHOTS, 1, &observables);
    let dedup_ref = run_engine_dedup(&engine, SHOTS, 1, &observables);
    let weighted_ref = run_engine_weighted(&engine, SHOTS, 1, &observables, &weighted_options);

    for intra in [2usize, 8] {
        engine.set_intra_threads(intra);
        let per_shot = run_engine(&engine, SHOTS, 1, &observables);
        assert_identical(&per_shot, &per_shot_ref, &format!("per-shot@{intra}"));
        let dedup = run_engine_dedup(&engine, SHOTS, 1, &observables);
        assert_identical(&dedup, &dedup_ref, &format!("dedup@{intra}"));
        let weighted = run_engine_weighted(&engine, SHOTS, 1, &observables, &weighted_options);
        assert_identical(&weighted, &weighted_ref, &format!("weighted@{intra}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Decision-diagram back-end, full paper noise (including
    /// state-dependent amplitude damping), mid-circuit measurements and
    /// resets: the richest execution paths — prefix groups, live fallback,
    /// declined dedup — must be width-independent bit for bit.
    #[test]
    fn dd_results_are_identical_across_intra_widths(
        circuit in arb_circuit(4, 20, true),
        seed in 0u64..1000,
    ) {
        compare_widths(
            &circuit,
            BackendKind::DecisionDiagram,
            NoiseModel::paper_defaults(),
            seed,
        );
    }

    /// Strong passive noise on unitary circuits: rich multi-error patterns
    /// through full-program dedup and real weighted enumeration.
    #[test]
    fn dd_passive_noise_is_identical_across_intra_widths(
        circuit in arb_circuit(4, 16, false),
        seed in 0u64..1000,
    ) {
        compare_widths(
            &circuit,
            BackendKind::DecisionDiagram,
            NoiseModel::new(0.05, 0.0, 0.05),
            seed,
        );
    }

    /// Dense statevector back-end: the chunk-partitioned kernels must
    /// produce the same bits at every width too.
    #[test]
    fn dense_results_are_identical_across_intra_widths(
        circuit in arb_circuit(3, 14, true),
        seed in 0u64..1000,
    ) {
        compare_widths(
            &circuit,
            BackendKind::Statevector,
            NoiseModel::new(0.03, 0.0, 0.03),
            seed,
        );
    }
}

/// A deep entangling workload (QFT) where fork-join really engages above
/// the cutoff: node statistics and histogram must not move by one bit.
#[test]
fn qft_is_identical_across_intra_widths() {
    use qsdd::circuit::generators::qft;
    let circuit = qft(10);
    for backend in [BackendKind::DecisionDiagram, BackendKind::Statevector] {
        compare_widths(&circuit, backend, NoiseModel::paper_defaults(), 2021);
    }
}
