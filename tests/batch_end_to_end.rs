//! End-to-end coverage of the batch subsystem: a mixed three-job file
//! (QASM + generator specs, both back-ends) runs to completion, the JSON and
//! CSV reports parse back, early stopping executes fewer shots than the cap,
//! and per-job results are bit-identical across thread counts.

use std::path::PathBuf;

use qsdd::batch::{jobfile, json, run_batch, BatchOptions, BatchReport, JobStatus};

/// The mixed job file exercised throughout this suite. The GHZ job is
/// noiseless so its dominant outcome frequency (~0.5) converges fast and the
/// Wilson rule stops it well before the 50 000-shot cap.
const JOBFILE: &str = "
# integration batch
[job ghz-early]
circuit = generate ghz 6
backend = dd
shots = 50000
seed = 11
noiseless = true
epsilon = 0.05
check = 128

[job qft-dense]
circuit = generate qft 4
backend = dense
shots = 400
seed = 7
opt = 2

[job bell-file]
circuit = qasm bell.qasm
backend = dd
shots = 300
seed = 23
";

const BELL_QASM: &str = "\
OPENQASM 2.0;
include \"qelib1.inc\";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
";

/// Writes the Bell circuit next to a unique per-test directory and parses
/// the job file against it, so the `qasm` stanza resolves relatively.
fn parsed_jobs(tag: &str) -> (Vec<jobfile::JobSpec>, PathBuf) {
    let dir = std::env::temp_dir().join(format!("qsdd-batch-test-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    std::fs::write(dir.join("bell.qasm"), BELL_QASM).expect("write bell.qasm");
    let jobs = jobfile::parse_str(JOBFILE, Some(&dir)).expect("job file parses");
    (jobs, dir)
}

fn run(tag: &str, threads: usize) -> BatchReport {
    let (jobs, _dir) = parsed_jobs(tag);
    run_batch(&jobs, &BatchOptions::with_threads(threads))
}

#[test]
fn mixed_batch_completes_and_reports_consistently() {
    let report = run("complete", 4);
    assert!(report.all_completed());
    assert_eq!(report.jobs.len(), 3);

    // Histograms account for every executed shot.
    for job in &report.jobs {
        assert!(job.status.is_completed());
        assert_eq!(job.counts.values().sum::<u64>(), job.shots_executed);
        assert!(job.wall_time <= report.total_wall_time);
    }

    // Noiseless GHZ splits between the two peaks.
    let ghz = &report.jobs[0];
    let all_ones = (1u64 << 6) - 1;
    let peak_mass = ghz.counts.get(&0).unwrap_or(&0) + ghz.counts.get(&all_ones).unwrap_or(&0);
    assert_eq!(peak_mass, ghz.shots_executed);
    assert_eq!(ghz.error_events, 0);
    assert!(ghz.dd_nodes_peak > 0, "DD back-end reports node statistics");

    // Dense back-end carries no decision diagrams.
    let qft = &report.jobs[1];
    assert_eq!(qft.qubits, 4);
    assert_eq!(qft.dd_nodes_peak, 0);
    assert_eq!(qft.shots_executed, 400);

    // The measured Bell circuit packs its classical register: only the two
    // correlated outcomes dominate.
    let bell = &report.jobs[2];
    assert_eq!(bell.qubits, 2);
    assert_eq!(bell.shots_executed, 300);
}

#[test]
fn early_stopping_executes_fewer_shots_than_the_cap() {
    let report = run("early", 2);
    let ghz = &report.jobs[0];
    assert!(ghz.early_stopped, "GHZ job should converge early");
    assert!(
        ghz.shots_executed < ghz.shots_requested,
        "executed {} of {} shots",
        ghz.shots_executed,
        ghz.shots_requested
    );
    // Stopping happens only at checkpoint boundaries.
    assert_eq!(ghz.shots_executed % 128, 0);
    // The other jobs run to their caps.
    assert!(!report.jobs[1].early_stopped);
    assert!(!report.jobs[2].early_stopped);
}

#[test]
fn results_byte_match_across_thread_counts() {
    let single = run("threads1", 1);
    let multi = run("threads4", 4);
    for (a, b) in single.jobs.iter().zip(multi.jobs.iter()) {
        assert_eq!(
            a.results_json(),
            b.results_json(),
            "job `{}` diverged between thread counts",
            a.name
        );
    }
}

#[test]
fn json_report_round_trips() {
    let report = run("json", 3);
    let text = report.to_json();
    let parsed = BatchReport::from_json(&text).expect("report JSON parses back");
    assert_eq!(parsed, report);

    // The document is also plain JSON for third-party consumers.
    let value = json::parse(&text).expect("valid JSON");
    assert_eq!(
        value.get("format").and_then(json::Value::as_str),
        Some("qsdd-batch-report/1")
    );
    assert_eq!(
        value
            .get("jobs")
            .and_then(json::Value::as_array)
            .map(<[_]>::len),
        Some(3)
    );
}

#[test]
fn csv_report_parses_back() {
    let report = run("csv", 2);
    let csv = report.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 1 + report.jobs.len());
    let header: Vec<&str> = lines[0].split(',').collect();
    for (line, job) in lines[1..].iter().zip(report.jobs.iter()) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), header.len());
        assert_eq!(fields[0], job.name);
        assert_eq!(fields[2], "completed");
        let executed: u64 = fields[5].parse().expect("numeric shots_executed");
        assert_eq!(executed, job.shots_executed);
    }
}

#[test]
fn failing_jobs_surface_in_the_report_without_blocking_others() {
    let text = "
[job missing]
circuit = qasm /nonexistent/nowhere.qasm
shots = 10

[job fine]
circuit = generate ghz 3
shots = 50
seed = 4
";
    let jobs = jobfile::parse_str(text, None).expect("parses");
    let report = run_batch(&jobs, &BatchOptions::with_threads(2));
    assert!(!report.all_completed());
    assert!(matches!(report.jobs[0].status, JobStatus::Failed(_)));
    assert!(report.jobs[1].status.is_completed());
    assert_eq!(report.jobs[1].shots_executed, 50);
    // Failure details survive the JSON round trip.
    let parsed = BatchReport::from_json(&report.to_json()).unwrap();
    match &parsed.jobs[0].status {
        JobStatus::Failed(message) => assert!(message.contains("cannot read")),
        other => panic!("expected failure, got {other:?}"),
    }
}
