//! Cross-crate integration tests: the decision-diagram simulator, the dense
//! statevector simulator and the exact density-matrix simulator must agree.

use qsdd::circuit::generators::{bernstein_vazirani, ghz, grover, qft, random_circuit, w_state};
use qsdd::circuit::Circuit;
use qsdd::core::{BackendKind, DdSimulator, StochasticSimulator};
use qsdd::dd::DdPackage;
use qsdd::density;
use qsdd::noise::NoiseModel;
use qsdd::statevector::run_noiseless;

/// Returns a copy of the circuit with measurements and resets removed, so
/// that final-state amplitudes can be compared without mid-run collapses.
fn unitary_part(circuit: &Circuit) -> Circuit {
    let mut stripped = Circuit::with_name(circuit.num_qubits(), circuit.name());
    for op in circuit {
        if op.is_unitary() {
            stripped.push(op.clone());
        }
    }
    stripped
}

/// Runs a circuit noiselessly on the DD back-end and returns the dense
/// amplitudes of the final state.
fn dd_amplitudes(circuit: &Circuit) -> Vec<qsdd::dd::Complex> {
    let run = DdSimulator::new().simulate_noiseless(circuit);
    run.package.to_statevector(run.state, run.num_qubits)
}

fn assert_states_match(circuit: &Circuit, tolerance: f64) {
    let circuit = unitary_part(circuit);
    let dd = dd_amplitudes(&circuit);
    let dense = run_noiseless(&circuit);
    for (i, (a, b)) in dd.iter().zip(dense.amplitudes()).enumerate() {
        assert!(
            a.approx_eq(*b, tolerance),
            "{}: amplitude {i} differs: dd {a} vs dense {b}",
            circuit.name()
        );
    }
}

#[test]
fn dd_and_dense_agree_on_standard_generators() {
    assert_states_match(&ghz(8), 1e-9);
    assert_states_match(&qft(7), 1e-9);
    assert_states_match(&w_state(6), 1e-9);
    assert_states_match(&grover(5, 19, Some(2)), 1e-9);
    assert_states_match(&bernstein_vazirani(7, 0b10101), 1e-9);
}

#[test]
fn dd_and_dense_agree_on_random_circuits() {
    for seed in 0..5u64 {
        let circuit = random_circuit(6, 6, seed);
        assert_states_match(&circuit, 1e-8);
    }
}

#[test]
fn dd_monte_carlo_tracks_exact_density_matrix() {
    // A strongly noisy 4-qubit GHZ circuit: the Monte-Carlo histogram of the
    // DD simulator must match the exact outcome distribution.
    let circuit = ghz(4);
    let noise = NoiseModel::new(0.02, 0.03, 0.02);
    let exact = density::outcome_distribution(&circuit, &noise);

    let result = StochasticSimulator::new()
        .with_shots(20_000)
        .with_noise(noise)
        .with_seed(123)
        .run(&circuit);

    for (index, &p_exact) in exact.iter().enumerate() {
        let p_mc = result.frequency(index as u64);
        assert!(
            (p_mc - p_exact).abs() < 0.02,
            "outcome {index}: exact {p_exact:.4} vs Monte-Carlo {p_mc:.4}"
        );
    }
}

#[test]
fn dense_monte_carlo_tracks_exact_density_matrix() {
    let circuit = ghz(3);
    let noise = NoiseModel::new(0.03, 0.05, 0.03);
    let exact = density::outcome_distribution(&circuit, &noise);

    let result = StochasticSimulator::new()
        .with_backend(BackendKind::Statevector)
        .with_shots(15_000)
        .with_noise(noise)
        .with_seed(77)
        .run(&circuit);

    for (index, &p_exact) in exact.iter().enumerate() {
        let p_mc = result.frequency(index as u64);
        assert!(
            (p_mc - p_exact).abs() < 0.025,
            "outcome {index}: exact {p_exact:.4} vs Monte-Carlo {p_mc:.4}"
        );
    }
}

#[test]
fn both_stochastic_backends_agree_under_noise() {
    let circuit = qft(5);
    let noise = NoiseModel::paper_defaults();
    let dd = StochasticSimulator::new()
        .with_shots(6000)
        .with_noise(noise)
        .with_seed(5)
        .run(&circuit);
    let dense = StochasticSimulator::new()
        .with_backend(BackendKind::Statevector)
        .with_shots(6000)
        .with_noise(noise)
        .with_seed(6)
        .run(&circuit);
    // The QFT of |0..0> is uniform; compare the total variation distance of
    // the two empirical distributions loosely.
    let mut tv = 0.0;
    for index in 0..(1u64 << 5) {
        tv += (dd.frequency(index) - dense.frequency(index)).abs();
    }
    tv /= 2.0;
    assert!(tv < 0.08, "total variation distance too large: {tv}");
}

#[test]
fn dd_simulator_scales_to_many_qubits_under_noise() {
    // The headline capability: noisy GHZ simulation far beyond dense limits.
    let circuit = ghz(64);
    let result = StochasticSimulator::new()
        .with_shots(50)
        .with_noise(NoiseModel::paper_defaults())
        .with_seed(4)
        .run(&circuit);
    let total: u64 = result.counts.values().sum();
    assert_eq!(total, 50);
    // The vast majority of runs still land on one of the two GHZ peaks.
    let peak = result.frequency(0) + result.frequency(u64::MAX);
    assert!(peak > 0.5, "peak mass {peak}");
}

#[test]
fn measured_circuits_report_classical_bits_consistently() {
    let mut circuit = Circuit::new(3);
    circuit.x(0).cx(0, 1).measure_all();
    let result = StochasticSimulator::new()
        .with_shots(200)
        .with_noise(NoiseModel::noiseless())
        .with_seed(9)
        .run(&circuit);
    assert_eq!(result.frequency(0b110), 1.0);
}

#[test]
fn dd_package_round_trips_dense_states_from_circuits() {
    let circuit = random_circuit(5, 4, 99);
    let dense = run_noiseless(&circuit);
    let mut dd = DdPackage::new();
    let edge = dd.from_statevector(dense.amplitudes());
    let back = dd.to_statevector(edge, 5);
    for (a, b) in dense.amplitudes().iter().zip(&back) {
        assert!(a.approx_eq(*b, 1e-10));
    }
}
