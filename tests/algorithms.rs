//! Algorithm-level correctness tests: the generated benchmark circuits do
//! what the algorithms they model promise, when simulated noiselessly.

use qsdd::circuit::generators::{
    bernstein_vazirani, deutsch_jozsa, draper_adder, ghz, grover, qaoa_maxcut_ring,
    ring_graph_state, w_state,
};
use qsdd::core::{DdSimulator, StochasticSimulator};
use qsdd::noise::NoiseModel;

fn noiseless(shots: usize) -> StochasticSimulator {
    StochasticSimulator::new()
        .with_shots(shots)
        .with_noise(NoiseModel::noiseless())
        .with_seed(17)
}

#[test]
fn deutsch_jozsa_distinguishes_constant_from_balanced() {
    // Constant oracle: all data qubits measure 0 in every run.
    let constant = noiseless(100).run(&deutsch_jozsa(6, false));
    assert_eq!(constant.frequency(0), 1.0);

    // Balanced oracle: the all-zero data outcome never occurs.
    let balanced = noiseless(100).run(&deutsch_jozsa(6, true));
    assert_eq!(balanced.frequency(0), 0.0);
}

#[test]
fn bernstein_vazirani_recovers_the_hidden_string() {
    let hidden = 0b01101u64;
    let n = 6; // 5 data qubits + ancilla
    let circuit = bernstein_vazirani(n, hidden);
    let result = noiseless(50).run(&circuit);
    // The classical register holds the hidden string: clbit q equals bit q of
    // `hidden`, and clbit 0 is the most significant bit of the outcome.
    let expected = (0..n - 1).fold(0u64, |acc, q| (acc << 1) | ((hidden >> q) & 1)) << 1; // the ancilla clbit (last, least significant) stays 0
    assert_eq!(
        result.frequency(expected),
        1.0,
        "expected outcome {expected:b}, histogram {:?}",
        result.counts
    );
}

#[test]
fn grover_amplifies_the_marked_state() {
    let marked = 0b1011u64;
    let circuit = grover(4, marked, None);
    let result = noiseless(300).run(&circuit);
    // With the optimal iteration count the marked state dominates strongly.
    assert!(
        result.frequency(marked) > 0.9,
        "marked-state frequency {}",
        result.frequency(marked)
    );
}

#[test]
fn draper_adder_adds_the_constant() {
    for (bits, addend) in [(3usize, 1u64), (3, 5), (4, 7), (4, 15)] {
        let circuit = draper_adder(bits, addend);
        let result = noiseless(50).run(&circuit);
        let expected = addend % (1u64 << bits);
        assert!(
            result.frequency(expected) > 0.99,
            "{bits}-bit adder of {addend}: histogram {:?}",
            result.counts
        );
    }
}

#[test]
fn w_state_has_exactly_one_excitation_per_outcome() {
    let n = 7;
    let circuit = w_state(n);
    let result = noiseless(500).run(&circuit);
    for &outcome in result.counts.keys() {
        assert_eq!(
            outcome.count_ones(),
            1,
            "W-state outcome {outcome:b} does not have exactly one excitation"
        );
    }
    // All n outcomes appear with roughly equal frequency 1/n.
    for q in 0..n {
        let outcome = 1u64 << q;
        let freq = result.frequency(outcome);
        assert!(
            (freq - 1.0 / n as f64).abs() < 0.08,
            "outcome {outcome:b} frequency {freq}"
        );
    }
}

#[test]
fn ghz_under_noise_keeps_most_mass_on_the_peaks() {
    let circuit = ghz(30);
    let result = StochasticSimulator::new()
        .with_shots(400)
        .with_noise(NoiseModel::paper_defaults())
        .with_seed(3)
        .run(&circuit);
    let peak = result.frequency(0) + result.frequency((1u64 << 30) - 1);
    // 30 gates at ~0.4 % total error per gate-qubit leave most runs error-free.
    assert!(peak > 0.7, "peak mass {peak}");
    assert!(peak < 1.0, "some noise should be visible at 400 shots");
}

#[test]
fn graph_state_diagrams_stay_small() {
    let circuit = ring_graph_state(20);
    let run = DdSimulator::new().simulate_noiseless(&circuit);
    // Ring graph states have bounded-width decision diagrams.
    assert!(
        run.node_count() <= 4 * 20,
        "graph state DD has {} nodes",
        run.node_count()
    );
}

#[test]
fn qaoa_histogram_is_valid_distribution() {
    let circuit = qaoa_maxcut_ring(8, &[(0.4, 0.9), (0.7, 0.3)]);
    let result = noiseless(300).run(&circuit);
    let total: u64 = result.counts.values().sum();
    assert_eq!(total, 300);
    // The uniform-superposition start plus mixing keeps many outcomes alive.
    assert!(result.counts.len() > 10);
}
