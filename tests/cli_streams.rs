//! Regression tests for the CLI's stdout/stderr split: stdout carries only
//! the result (histogram, JSON document, batch report), every diagnostic
//! and stats line goes to stderr, so `qsdd_cli run ... > out.json`
//! composes with pipes.

use std::process::{Command, Output};

use qsdd::json::{self, Value};

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qsdd_cli"))
        .args(args)
        .output()
        .expect("spawn qsdd_cli")
}

#[test]
fn json_run_keeps_stdout_machine_readable() {
    let output = cli(&[
        "generate",
        "ghz",
        "5",
        "--shots",
        "100",
        "--seed",
        "3",
        "--format",
        "json",
        "--profile",
    ]);
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let stderr = String::from_utf8(output.stderr).unwrap();

    // stdout is exactly one JSON document — redirecting it yields a valid
    // .json file.
    let document = json::parse(stdout.trim()).unwrap_or_else(|e| {
        panic!("stdout is not pure JSON ({e}):\n{stdout}");
    });
    assert_eq!(
        document.get("format").and_then(Value::as_str),
        Some("qsdd-run-result/1")
    );
    assert_eq!(document.get("shots").and_then(Value::as_u64), Some(100));
    assert!(document.get("counts").and_then(Value::as_array).is_some());
    assert!(document.get("stage_seconds").is_some());

    // The diagnostics and the --profile table landed on stderr.
    assert!(stderr.contains("circuit `"), "{stderr}");
    assert!(stderr.contains("noise:"), "{stderr}");
    assert!(stderr.contains("profile: stage breakdown"), "{stderr}");
    assert!(stderr.contains("execute"), "{stderr}");
}

#[test]
fn text_run_keeps_diagnostics_off_stdout() {
    let output = cli(&["generate", "ghz", "4", "--shots", "50", "--top", "2"]);
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let stderr = String::from_utf8(output.stderr).unwrap();

    // stdout is only the result histogram.
    assert!(stdout.starts_with("top 2 outcomes:"), "{stdout}");
    for diagnostic in [
        "circuit `",
        "noise:",
        "shots on",
        "dd nodes:",
        "trajectories:",
    ] {
        assert!(
            !stdout.contains(diagnostic),
            "diagnostic `{diagnostic}` leaked to stdout:\n{stdout}"
        );
        assert!(
            stderr.contains(diagnostic),
            "missing `{diagnostic}`:\n{stderr}"
        );
    }
}

#[test]
fn batch_report_on_stdout_parses_with_summary_on_stderr() {
    let jobfile =
        std::env::temp_dir().join(format!("qsdd_cli_streams_{}.jobs", std::process::id()));
    std::fs::write(
        &jobfile,
        "[job tiny]\ncircuit = generate ghz 3\nshots = 40\nseed = 9\n",
    )
    .unwrap();
    let output = cli(&["batch", jobfile.to_str().unwrap(), "--profile"]);
    std::fs::remove_file(&jobfile).ok();
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let stderr = String::from_utf8(output.stderr).unwrap();

    // stdout is exactly the machine-readable report document.
    let report = json::parse(stdout.trim()).unwrap_or_else(|e| {
        panic!("batch stdout is not pure JSON ({e}):\n{stdout}");
    });
    assert_eq!(
        report.get("format").and_then(Value::as_str),
        Some("qsdd-batch-report/1")
    );
    // Per-job summary, totals and the profile table are stderr-only.
    assert!(stderr.contains("batch: 1 job(s)"), "{stderr}");
    assert!(stderr.contains("shots total on"), "{stderr}");
    assert!(stderr.contains("profile: stage breakdown"), "{stderr}");
}
