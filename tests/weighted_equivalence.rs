//! Differential coverage for the weighted trajectory-enumeration driver.
//!
//! Two oracles bracket the weighted estimator:
//!
//! * **Full coverage** — when the enumerator visits the entire pattern
//!   space, the weighted distribution is an *exact* computation and must
//!   match the density-matrix reference (`qsdd-density`) to floating-point
//!   accuracy, on every backend, and reproduce bit-identically across
//!   repeats and requested thread counts (the driver is serial).
//! * **Partial coverage** — with a residual tail the result is a statistical
//!   estimate and must track the per-shot Monte-Carlo path within a total
//!   variation bound.
//!
//! Circuits the planner declines (mid-circuit measurement/reset) must fall
//! back to the deduplicating sampler byte for byte.

use proptest::prelude::*;
use qsdd::circuit::Circuit;
use qsdd::core::{
    run_engine, run_engine_dedup, run_engine_weighted, BackendKind, Observable, OptLevel,
    ShotEngine, StochasticOutcome, WeightedOptions,
};
use qsdd::density;
use qsdd::noise::NoiseModel;

/// Strategy: a random unitary circuit over `qubits` qubits (no mid-circuit
/// measurements — the density oracle compares final populations).
fn arb_unitary(qubits: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let op = (0..8u8, 0..qubits, 0..qubits, -3.2f64..3.2f64);
    proptest::collection::vec(op, 1..max_len).prop_map(move |ops| {
        let mut c = Circuit::new(qubits);
        for (kind, a, b, angle) in ops {
            match kind {
                0 => {
                    c.h(a);
                }
                1 => {
                    c.x(a);
                }
                2 => {
                    c.rz(angle, a);
                }
                3 => {
                    c.ry(angle, a);
                }
                4 => {
                    if a != b {
                        c.cx(a, b);
                    } else {
                        c.s(a);
                    }
                }
                5 => {
                    if a != b {
                        c.cz(a, b);
                    } else {
                        c.z(a);
                    }
                }
                6 => {
                    c.t(a);
                }
                _ => {
                    c.sx(a);
                }
            }
        }
        c
    })
}

/// Total variation distance between two integer histograms.
fn total_variation(a: &StochasticOutcome, b: &StochasticOutcome) -> f64 {
    let mut outcomes: Vec<u64> = a.counts.keys().chain(b.counts.keys()).copied().collect();
    outcomes.sort_unstable();
    outcomes.dedup();
    let (na, nb) = (a.shots as f64, b.shots as f64);
    0.5 * outcomes
        .iter()
        .map(|outcome| {
            let pa = *a.counts.get(outcome).unwrap_or(&0) as f64 / na;
            let pb = *b.counts.get(outcome).unwrap_or(&0) as f64 / nb;
            (pa - pb).abs()
        })
        .sum::<f64>()
}

/// Asserts two weighted outcomes are bit-identical in every field that the
/// determinism contract covers.
fn assert_bit_identical(a: &StochasticOutcome, b: &StochasticOutcome) {
    assert_eq!(a.counts, b.counts, "histogram diverged");
    assert_eq!(a.error_events, b.error_events);
    let (sa, sb) = (
        a.weighted.as_ref().expect("weighted stats"),
        b.weighted.as_ref().expect("weighted stats"),
    );
    assert_eq!(sa.covered_mass.to_bits(), sb.covered_mass.to_bits());
    assert_eq!(sa.enumerated_trajectories, sb.enumerated_trajectories);
    assert_eq!(sa.tail_shots, sb.tail_shots);
    assert_eq!(sa.distribution.len(), sb.distribution.len());
    for ((oa, pa), (ob, pb)) in sa.distribution.iter().zip(&sb.distribution) {
        assert_eq!(oa, ob);
        assert_eq!(pa.to_bits(), pb.to_bits(), "distribution drifted");
    }
    for (x, y) in a.observable_estimates.iter().zip(&b.observable_estimates) {
        assert_eq!(x.to_bits(), y.to_bits(), "observable sums drifted");
    }
}

/// Full-coverage weighted run against the exact density-matrix reference.
fn check_full_coverage(circuit: &Circuit, noise: NoiseModel, seed: u64, backend: BackendKind) {
    let engine = ShotEngine::new(circuit, backend, noise, seed, OptLevel::O0);
    assert!(
        engine.supports_weighted(),
        "passive unitary plans enumerate"
    );
    // No cutoff, generous budget: the enumerator must exhaust the space.
    let options = WeightedOptions::default()
        .with_mass_cutoff(1.0)
        .with_max_patterns(1 << 20);
    let outcome = run_engine_weighted(&engine, 512, 1, &[], &options);
    let stats = outcome.weighted.as_ref().expect("weighted stats");
    assert!(
        stats.covered_mass > 1.0 - 1e-9,
        "expected full coverage, got {}",
        stats.covered_mass
    );
    assert_eq!(stats.tail_shots, 0, "full coverage needs no tail");

    let exact = density::outcome_distribution(circuit, &noise);
    let mut weighted = vec![0.0f64; exact.len()];
    for &(outcome, p) in &stats.distribution {
        weighted[outcome as usize] = p;
    }
    for (index, (&w, &e)) in weighted.iter().zip(&exact).enumerate() {
        assert!(
            (w - e).abs() < 1e-9,
            "outcome {index}: weighted {w:.12} vs density {e:.12}"
        );
    }

    // Determinism: repeats and thread counts reproduce the result bit for
    // bit (the driver is serial; `threads` only affects the fallback).
    let observables = [Observable::BasisProbability(0)];
    let reference = run_engine_weighted(&engine, 512, 1, &observables, &options);
    for threads in [1usize, 2, 8] {
        let again = run_engine_weighted(&engine, 512, threads, &observables, &options);
        assert_bit_identical(&again, &reference);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Phase-flip-only noise keeps the pattern space small (two options per
    /// site), so random 3-qubit circuits can be enumerated *completely* and
    /// checked against the exact density-matrix evolution.
    #[test]
    fn full_coverage_matches_the_density_oracle(
        circuit in arb_unitary(3, 6),
        seed in 0u64..1000,
    ) {
        check_full_coverage(
            &circuit,
            NoiseModel::new(0.0, 0.0, 0.02),
            seed,
            BackendKind::DecisionDiagram,
        );
    }

    /// The same exactness contract holds on the dense statevector backend.
    #[test]
    fn dense_full_coverage_matches_the_density_oracle(
        circuit in arb_unitary(3, 5),
        seed in 0u64..1000,
    ) {
        check_full_coverage(
            &circuit,
            NoiseModel::new(0.0, 0.0, 0.03),
            seed,
            BackendKind::Statevector,
        );
    }

    /// Partial coverage under the paper's mixed noise (amplitude damping
    /// constrains the enumerable prefix, so a residual tail always runs):
    /// the weighted histogram must track the per-shot sampler within a
    /// total-variation bound, at every requested thread count.
    #[test]
    fn partial_coverage_with_tail_tracks_per_shot(
        circuit in arb_unitary(4, 10),
        seed in 0u64..1000,
    ) {
        let engine = ShotEngine::new(
            &circuit,
            BackendKind::DecisionDiagram,
            NoiseModel::paper_defaults(),
            seed,
            OptLevel::O0,
        );
        let shots = 1500;
        let reference = run_engine(&engine, shots, 0, &[]);
        let options = WeightedOptions::default();
        let baseline = run_engine_weighted(&engine, shots, 1, &[], &options);
        for threads in [2usize, 8] {
            let again = run_engine_weighted(&engine, shots, threads, &[], &options);
            assert_bit_identical(&again, &baseline);
        }
        let stats = baseline.weighted.as_ref().expect("weighted stats");
        prop_assert!(stats.covered_mass > 0.0 && stats.covered_mass <= 1.0 + 1e-12);
        let tv = total_variation(&baseline, &reference);
        prop_assert!(
            tv < 0.2,
            "weighted vs per-shot TV {tv:.4} (covered {:.4}, tail {})",
            stats.covered_mass,
            stats.tail_shots
        );
    }
}

#[test]
fn measured_circuits_fall_back_to_the_dedup_sampler() {
    // Mid-circuit measurement and reset are outside the enumerable space:
    // the weighted entry point must decline and produce the deduplicating
    // sampler's result byte for byte.
    let mut circuit = Circuit::new(3);
    circuit.h(0);
    circuit.cx(0, 1);
    circuit.measure(1, 1);
    circuit.reset(2);
    circuit.h(2);
    let engine = ShotEngine::new(
        &circuit,
        BackendKind::DecisionDiagram,
        NoiseModel::paper_defaults(),
        42,
        OptLevel::O0,
    );
    assert!(!engine.supports_weighted());
    let observables = [Observable::QubitExcitation(2)];
    for threads in [1usize, 2, 8] {
        let weighted = run_engine_weighted(
            &engine,
            300,
            threads,
            &observables,
            &WeightedOptions::default(),
        );
        let dedup = run_engine_dedup(&engine, 300, threads, &observables);
        assert!(weighted.weighted.is_none(), "fallback carries no stats");
        assert_eq!(weighted.counts, dedup.counts);
        assert_eq!(weighted.error_events, dedup.error_events);
        for (a, b) in weighted
            .observable_estimates
            .iter()
            .zip(&dedup.observable_estimates)
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn exact_histogram_mode_skips_the_tail_and_renormalises() {
    use qsdd::circuit::generators::ghz;
    // GHZ-16 under the paper's noise: the damping prefix caps the
    // enumerable mass well below 1, so ordinary weighted runs need a tail —
    // exact-histogram mode must skip it and renormalise over the covered
    // mass instead.
    let engine = ShotEngine::new(
        &ghz(16),
        BackendKind::DecisionDiagram,
        NoiseModel::paper_defaults(),
        7,
        OptLevel::O0,
    );
    let sampled = run_engine_weighted(&engine, 2000, 1, &[], &WeightedOptions::default());
    let exact = run_engine_weighted(
        &engine,
        2000,
        1,
        &[],
        &WeightedOptions::default().with_exact_histogram(true),
    );
    let sampled_stats = sampled.weighted.as_ref().unwrap();
    let exact_stats = exact.weighted.as_ref().unwrap();
    assert!(sampled_stats.tail_shots > 0, "partial coverage runs a tail");
    assert_eq!(exact_stats.tail_shots, 0, "exact mode never samples");
    assert_eq!(
        sampled_stats.covered_mass.to_bits(),
        exact_stats.covered_mass.to_bits(),
        "the enumerated prefix is identical either way"
    );
    assert!(sampled_stats.covered_mass < 0.999, "damping caps coverage");
    // Both distributions are normalised deliverables.
    for stats in [sampled_stats, exact_stats] {
        let total: f64 = stats.distribution.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9, "distribution sums to {total}");
    }
    // And the synthesised histogram accounts for every requested shot.
    assert_eq!(exact.counts.values().sum::<u64>(), 2000);
    assert_eq!(sampled.counts.values().sum::<u64>(), 2000);
}

#[test]
fn weighted_matches_density_on_the_ghz_workload_with_depolarizing_noise() {
    use qsdd::circuit::generators::ghz;
    // The benchmark's sibling workload (passive depolarizing noise, no
    // damping): full enumeration is feasible and must match the density
    // matrix — the strongest form of the "weighted replaces sampling"
    // claim on a workload the paper actually reports.
    let circuit = ghz(4);
    let noise = NoiseModel::noiseless().with_depolarizing(0.002);
    let engine = ShotEngine::new(
        &circuit,
        BackendKind::DecisionDiagram,
        noise,
        2021,
        OptLevel::O0,
    );
    let options = WeightedOptions::default()
        .with_mass_cutoff(1.0)
        .with_max_patterns(1 << 22);
    let outcome = run_engine_weighted(&engine, 1000, 1, &[], &options);
    let stats = outcome.weighted.as_ref().unwrap();
    assert!(stats.covered_mass > 1.0 - 1e-9);
    let exact = density::outcome_distribution(&circuit, &noise);
    for &(value, p) in &stats.distribution {
        assert!(
            (p - exact[value as usize]).abs() < 1e-9,
            "outcome {value}: weighted {p} vs density {}",
            exact[value as usize]
        );
    }
}
