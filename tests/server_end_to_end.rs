//! Loopback integration tests of the `qsdd-server` HTTP service.
//!
//! Everything here talks to a real listener over real TCP: submissions,
//! polling, request coalescing, cache behaviour, backpressure and
//! end-to-end equivalence with direct library execution (the path
//! `qsdd_cli run` drives).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use qsdd::batch::{JobReport, JobStatus};
use qsdd::circuit::generators::ghz;
use qsdd::core::{run_engine_dedup, BackendKind, OptLevel, ShotEngine, StochasticSimulator};
use qsdd::json::{self, Value};
use qsdd::noise::NoiseModel;
use qsdd::server::{client, Server, ServerConfig};

/// Boots a server with `threads` simulation workers on an ephemeral port.
fn boot(threads: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

/// Polls `GET /v1/jobs/<id>` until the job reaches a terminal state;
/// returns the full envelope JSON.
fn poll_job(addr: std::net::SocketAddr, id: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut session = client::Client::connect(addr).expect("connect");
    loop {
        let (status, body) = session
            .request("GET", &format!("/v1/jobs/{id}"), None)
            .expect("poll");
        assert_eq!(status, 200, "poll failed: {body}");
        let envelope = json::parse(&body).expect("envelope json");
        match envelope.get("status").and_then(Value::as_str) {
            Some("completed") | Some("failed") => return envelope,
            _ => {
                assert!(Instant::now() < deadline, "job {id} never finished");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

/// Extracts the raw `"result"` object of a completed envelope as compact
/// JSON text (the byte-comparable payload).
fn result_text(envelope: &Value) -> String {
    envelope
        .get("result")
        .expect("completed jobs carry a result")
        .to_string()
}

#[test]
fn healthz_stats_and_unknown_routes() {
    let server = boot(1);
    let addr = server.addr();
    let (status, body) = client::request(addr, "GET", "/v1/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"status":"ok"}"#);

    let (status, body) = client::request(addr, "GET", "/v1/stats", None).unwrap();
    assert_eq!(status, 200);
    let stats = json::parse(&body).unwrap();
    assert_eq!(stats.get("jobs_accepted").and_then(Value::as_u64), Some(0));
    assert!(stats.get("uptime_secs").and_then(Value::as_f64).is_some());

    let (status, _) = client::request(addr, "GET", "/v1/nope", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = client::request(addr, "DELETE", "/v1/jobs", None).unwrap();
    assert_eq!(status, 405);
    let (status, body) = client::request(addr, "POST", "/v1/jobs", Some("{not json")).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("error"));
    let (status, _) = client::request(addr, "GET", "/v1/jobs/jdeadbeef", None).unwrap();
    assert_eq!(status, 404);
    server.shutdown_and_join();
}

#[test]
fn http_report_is_byte_identical_to_direct_execution() {
    // The acceptance contract: for a fixed (circuit, noise, seed, shots,
    // backend), the report served over HTTP equals the library run that
    // `qsdd_cli run` performs — histogram, error counts, node statistics
    // and dedup stats, byte for byte through the same JSON writer.
    let server = boot(2);
    let addr = server.addr();
    let body = r#"{"circuit":{"generator":"ghz","qubits":6},"shots":400,"seed":11}"#;
    let (status, response) = client::request(addr, "POST", "/v1/jobs", Some(body)).unwrap();
    assert_eq!(status, 202, "{response}");
    let id = json::parse(&response)
        .unwrap()
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    let envelope = poll_job(addr, &id);
    let via_http = JobReport::from_value(envelope.get("result").unwrap()).expect("report parses");

    // The same simulation, directly through the simulator facade (the
    // engine `qsdd_cli run` drives), with the server's defaults.
    let outcome = StochasticSimulator::new()
        .with_backend(BackendKind::DecisionDiagram)
        .with_shots(400)
        .with_seed(11)
        .with_noise(NoiseModel::paper_defaults())
        .run(&ghz(6));
    let reference = JobReport {
        // The payload names the job by its content address (pure function
        // of the canonical key), which is also the id we polled.
        name: qsdd::server::parse_job_request(body)
            .unwrap()
            .content_address(),
        backend: "dd".to_string(),
        status: JobStatus::Completed,
        qubits: 6,
        shots_requested: 400,
        shots_executed: 400,
        early_stopped: false,
        counts: outcome
            .counts
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect::<BTreeMap<u64, u64>>(),
        error_events: outcome.error_events,
        dd_nodes_avg: outcome.dd_nodes_avg,
        dd_nodes_peak: outcome.dd_nodes_peak,
        unique_trajectories: outcome.dedup.as_ref().unwrap().unique_trajectories,
        dedup_hit_rate: outcome.dedup_hit_rate(),
        covered_mass: 0.0,
        enumerated_trajectories: 0,
        wall_time: Duration::ZERO,
        stage_timings: Default::default(),
    };
    assert_eq!(via_http.results_json(), reference.results_json());
    // The dedup extension field matches too.
    assert_eq!(
        envelope
            .get("result")
            .unwrap()
            .get("live_shots")
            .and_then(Value::as_u64),
        Some(outcome.dedup.as_ref().unwrap().live_shots)
    );
    // The envelope carries the per-stage `timings` breakdown: every stage
    // key plus the total, in seconds — and the cached result payload stays
    // timing-free (timings are per-envelope, not part of the byte-stable
    // payload).
    let timings = envelope.get("timings").expect("envelope carries timings");
    for stage in [
        "parse",
        "transpile",
        "compile",
        "presample",
        "group",
        "execute",
        "aggregate",
        "cache_lookup",
        "queue_wait",
        "total",
    ] {
        assert!(
            timings.get(stage).and_then(Value::as_f64).is_some(),
            "timings missing `{stage}`: {timings:?}"
        );
    }
    assert!(
        timings.get("execute").and_then(Value::as_f64).unwrap() > 0.0,
        "a 400-shot job must report execute time"
    );
    assert!(
        timings.get("total").and_then(Value::as_f64).unwrap()
            >= timings.get("execute").and_then(Value::as_f64).unwrap()
    );
    assert!(
        envelope
            .get("result")
            .unwrap()
            .get("stage_seconds")
            .is_none(),
        "the cacheable payload must stay timing-free"
    );

    // The envelope echoes the normalized circuit.
    let qasm = envelope
        .get("circuit_qasm")
        .and_then(Value::as_str)
        .expect("ghz is expressible");
    assert!(qasm.starts_with("OPENQASM 2.0;"), "{qasm}");
    assert_eq!(
        qsdd::circuit::qasm::parse_source(qasm)
            .unwrap()
            .operations(),
        ghz(6).operations()
    );
    server.shutdown_and_join();
}

#[test]
fn observable_sums_match_the_serial_runner_bit_for_bit() {
    let server = boot(1);
    let addr = server.addr();
    let body = r#"{"circuit":{"generator":"ghz","qubits":5},"shots":300,"seed":21,
                   "observables":[{"basis_probability":0},{"qubit_excitation":2}]}"#;
    let (status, response) = client::request(addr, "POST", "/v1/jobs", Some(body)).unwrap();
    assert_eq!(status, 202, "{response}");
    let id = json::parse(&response)
        .unwrap()
        .get("id")
        .and_then(Value::as_str)
        .unwrap()
        .to_string();
    let envelope = poll_job(addr, &id);
    let estimates: Vec<f64> = envelope
        .get("result")
        .unwrap()
        .get("observable_estimates")
        .and_then(Value::as_array)
        .expect("estimates present")
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();

    // Server workers execute serially; the reference is the one-thread
    // deduplicating runner, which is bit-stable.
    let engine = ShotEngine::new(
        &ghz(5),
        BackendKind::DecisionDiagram,
        NoiseModel::paper_defaults(),
        21,
        OptLevel::O0,
    );
    let reference = run_engine_dedup(
        &engine,
        300,
        1,
        &[
            qsdd::core::Observable::BasisProbability(0),
            qsdd::core::Observable::QubitExcitation(2),
        ],
    );
    assert_eq!(estimates.len(), 2);
    for (http, direct) in estimates.iter().zip(&reference.observable_estimates) {
        assert_eq!(http.to_bits(), direct.to_bits(), "sums drifted over HTTP");
    }
    server.shutdown_and_join();
}

#[test]
fn concurrent_identical_submissions_coalesce_to_one_simulation() {
    // Satellite: N concurrent identical POSTs trigger exactly one
    // simulation and every response is byte-identical to the uncached
    // result — across 1, 2 and 8 server threads.
    let body = r#"{"circuit":{"generator":"ghz","qubits":8},"shots":2000,"seed":5}"#;

    // The uncached reference: the same job executed directly (fresh
    // process-local state, no cache involved).
    let input = qsdd::server::parse_job_request(body).unwrap();
    let engine = ShotEngine::new(
        &input.circuit,
        input.backend,
        input.noise,
        input.seed,
        input.opt,
    );
    let reference = qsdd::server::result_payload(
        &input,
        &qsdd::core::run_engine_in(&engine, &mut engine.new_context(), input.shots, &[], true),
    );

    for threads in [1usize, 2, 8] {
        let server = boot(threads);
        let addr = server.addr();
        let clients = 16;
        let barrier = Arc::new(Barrier::new(clients));
        let results: Vec<(String, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        let (status, response) =
                            client::request(addr, "POST", "/v1/jobs", Some(body)).unwrap();
                        assert!(status == 200 || status == 202, "unexpected {status}");
                        let id = json::parse(&response)
                            .unwrap()
                            .get("id")
                            .and_then(Value::as_str)
                            .unwrap()
                            .to_string();
                        let envelope = poll_job(addr, &id);
                        (id, result_text(&envelope))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Content addressing: every submission resolved to the same job id,
        // and every result equals the uncached reference byte for byte.
        for (id, result) in &results {
            assert_eq!(id, &results[0].0, "ids diverged at {threads} threads");
            assert_eq!(
                result, &reference,
                "result bytes diverged at {threads} threads"
            );
        }
        let (_, stats) = client::request(addr, "GET", "/v1/stats", None).unwrap();
        let stats = json::parse(&stats).unwrap();
        assert_eq!(
            stats.get("simulations").and_then(Value::as_u64),
            Some(1),
            "exactly one simulation at {threads} threads"
        );
        assert_eq!(
            stats.get("jobs_accepted").and_then(Value::as_u64),
            Some(clients as u64)
        );
        let coalesced = stats.get("coalesced").and_then(Value::as_u64).unwrap();
        let hits = stats.get("cache_hits").and_then(Value::as_u64).unwrap();
        assert_eq!(coalesced + hits, clients as u64 - 1);
        server.shutdown_and_join();
    }
}

#[test]
fn load_test_64_concurrent_clients_with_cache_hits() {
    // Acceptance: >= 64 concurrent clients, zero dropped or incorrect
    // responses, and a nonzero cache hit rate on the repeated workload.
    let server = boot(4);
    let addr = server.addr();
    let clients = 64;
    let distinct_jobs = 8;
    let waves = 2;
    let failures = Arc::new(AtomicU64::new(0));
    let mut first_wave: Vec<Option<String>> = vec![None; distinct_jobs];

    for wave in 0..waves {
        let barrier = Arc::new(Barrier::new(clients));
        let results: Vec<(usize, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|client_index| {
                    let barrier = Arc::clone(&barrier);
                    let failures = Arc::clone(&failures);
                    scope.spawn(move || {
                        let job = client_index % distinct_jobs;
                        let body = format!(
                            r#"{{"circuit":{{"generator":"ghz","qubits":7}},"shots":500,"seed":{job}}}"#
                        );
                        barrier.wait();
                        // Submit through the bounded-backoff retry helper:
                        // a 64-client stampede may transiently fill the
                        // queue, and 429s are an invitation to retry, not
                        // a dropped response.
                        let (status, _, response) = client::with_retry(
                            5,
                            Duration::from_millis(10),
                            client_index as u64,
                            || {
                                client::Client::connect(addr)?.request_with_headers(
                                    "POST",
                                    "/v1/jobs",
                                    Some(&body),
                                )
                            },
                        )
                        .unwrap();
                        if status != 200 && status != 202 {
                            failures.fetch_add(1, Ordering::SeqCst);
                            return (job, String::new());
                        }
                        let id = json::parse(&response)
                            .unwrap()
                            .get("id")
                            .and_then(Value::as_str)
                            .unwrap()
                            .to_string();
                        let envelope = poll_job(addr, &id);
                        if envelope.get("status").and_then(Value::as_str) != Some("completed") {
                            failures.fetch_add(1, Ordering::SeqCst);
                            return (job, String::new());
                        }
                        (job, result_text(&envelope))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        assert_eq!(failures.load(Ordering::SeqCst), 0, "dropped responses");
        for (job, result) in results {
            assert!(!result.is_empty(), "missing result for job {job}");
            match &first_wave[job] {
                None => first_wave[job] = Some(result),
                Some(reference) => {
                    assert_eq!(&result, reference, "job {job} diverged (wave {wave})")
                }
            }
        }
    }

    let (_, stats) = client::request(addr, "GET", "/v1/stats", None).unwrap();
    let stats = json::parse(&stats).unwrap();
    let accepted = stats.get("jobs_accepted").and_then(Value::as_u64).unwrap();
    assert_eq!(accepted, (clients * waves) as u64);
    assert_eq!(stats.get("rejected").and_then(Value::as_u64), Some(0));
    // Only `distinct_jobs` simulations ran; everything else was served from
    // the cache or coalesced onto an in-flight run.
    assert_eq!(
        stats.get("simulations").and_then(Value::as_u64),
        Some(distinct_jobs as u64)
    );
    let hit_rate = stats.get("cache_hit_rate").and_then(Value::as_f64).unwrap();
    assert!(
        hit_rate > 0.5,
        "expected a high cache hit rate, got {hit_rate}"
    );
    server.shutdown_and_join();
}

#[test]
fn malformed_weighted_submissions_bounce_with_400() {
    // Negative paths of the weighted job knobs: every malformed combination
    // must be rejected at parse time with a 400 and a structured error —
    // nothing reaches the queue, so the stats stay clean.
    let server = boot(1);
    let addr = server.addr();
    let cases: &[(&str, &str)] = &[
        // Oversized enumeration budget: each pattern is one trajectory
        // simulation, so the cap is a CPU-bound guard.
        (
            r#"{"circuit":{"generator":"ghz","qubits":6},"weighted":{"max_patterns":100001}}"#,
            "exceeds the limit",
        ),
        // Weighted with zero shots needs the exact-histogram mode (there is
        // no shot budget to size the residual tail or the histogram).
        (
            r#"{"circuit":{"generator":"ghz","qubits":6},"shots":0,"weighted":true}"#,
            "exact_histogram",
        ),
        // Knob domain errors.
        (
            r#"{"circuit":{"generator":"ghz","qubits":6},"weighted":{"mass_cutoff":0}}"#,
            "mass_cutoff",
        ),
        (
            r#"{"circuit":{"generator":"ghz","qubits":6},"weighted":{"mass_cutoff":1.5}}"#,
            "mass_cutoff",
        ),
        (
            r#"{"circuit":{"generator":"ghz","qubits":6},"weighted":"yes"}"#,
            "must be",
        ),
        (
            r#"{"circuit":{"generator":"ghz","qubits":6},"weighted":{"cutoff":0.9}}"#,
            "unknown field",
        ),
    ];
    for (body, needle) in cases {
        let (status, response) = client::request(addr, "POST", "/v1/jobs", Some(body)).unwrap();
        assert_eq!(status, 400, "accepted malformed body: {body}");
        let error = json::parse(&response)
            .unwrap()
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or_default()
            .to_string();
        assert!(
            error.contains(needle),
            "error `{error}` does not mention `{needle}`"
        );
    }
    let (_, stats) = client::request(addr, "GET", "/v1/stats", None).unwrap();
    let stats = json::parse(&stats).unwrap();
    assert_eq!(stats.get("jobs_accepted").and_then(Value::as_u64), Some(0));
    assert_eq!(stats.get("simulations").and_then(Value::as_u64), Some(0));
    server.shutdown_and_join();
}

#[test]
fn cached_weighted_results_are_byte_identical() {
    // Weighted jobs flow through the same content-addressed cache as
    // sampled jobs: a repeated submission must be served from the cache
    // with a byte-identical result, and both must equal direct library
    // execution through the weighted driver.
    let server = boot(2);
    let addr = server.addr();
    let body = r#"{"circuit":{"generator":"ghz","qubits":6},"shots":500,"seed":3,
                   "weighted":{"mass_cutoff":0.99,"max_patterns":64}}"#;

    let input = qsdd::server::parse_job_request(body).unwrap();
    let engine = ShotEngine::new(
        &input.circuit,
        input.backend,
        input.noise,
        input.seed,
        input.opt,
    );
    let reference = qsdd::server::result_payload(
        &input,
        &qsdd::core::run_engine_weighted_in(
            &engine,
            &mut engine.new_context(),
            input.shots,
            &[],
            input.weighted.as_ref().expect("weighted options parsed"),
        ),
    );

    let mut results = Vec::new();
    for _ in 0..2 {
        let (status, response) = client::request(addr, "POST", "/v1/jobs", Some(body)).unwrap();
        assert!(status == 200 || status == 202, "unexpected {status}");
        let id = json::parse(&response)
            .unwrap()
            .get("id")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        results.push(result_text(&poll_job(addr, &id)));
    }
    assert_eq!(results[0], results[1], "cache replay changed the bytes");
    assert_eq!(results[0], reference, "served result diverged from direct");

    // The weighted extension fields made it into the payload.
    let payload = json::parse(&results[0]).unwrap();
    let covered = payload
        .get("covered_mass")
        .and_then(Value::as_f64)
        .expect("weighted results report covered_mass");
    assert!(covered > 0.9, "GHZ-6 paper noise covers most of the mass");
    assert!(payload
        .get("enumerated_trajectories")
        .and_then(Value::as_u64)
        .is_some());
    assert!(payload.get("tail_shots").and_then(Value::as_u64).is_some());
    assert!(
        payload.get("distribution").is_some(),
        "weighted results carry the exact distribution"
    );

    let (_, stats) = client::request(addr, "GET", "/v1/stats", None).unwrap();
    let stats = json::parse(&stats).unwrap();
    assert_eq!(
        stats.get("simulations").and_then(Value::as_u64),
        Some(1),
        "the second submission must be a cache hit"
    );
    assert!(stats.get("cache_hits").and_then(Value::as_u64).unwrap() >= 1);
    server.shutdown_and_join();
}

#[test]
fn full_queue_rejects_with_429_and_drains_on_shutdown() {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr();
    // Slow distinct jobs: the worker picks up the first, the second fills
    // the queue, everything after bounces with 429.
    let slow_body = |seed: usize| {
        format!(
            r#"{{"circuit":{{"generator":"qft","qubits":9}},"backend":"dense","dedup":false,"shots":1500,"seed":{seed}}}"#
        )
    };
    let mut session = client::Client::connect(addr).unwrap();
    let mut ids = Vec::new();
    let mut rejected = 0;
    for seed in 0..6 {
        let (status, headers, response) = session
            .request_with_headers("POST", "/v1/jobs", Some(&slow_body(seed)))
            .unwrap();
        match status {
            202 => ids.push(
                json::parse(&response)
                    .unwrap()
                    .get("id")
                    .and_then(Value::as_str)
                    .unwrap()
                    .to_string(),
            ),
            429 => {
                rejected += 1;
                // Sheds advertise when to retry.
                let retry_after = headers
                    .iter()
                    .find(|(name, _)| name == "retry-after")
                    .map(|(_, value)| value.as_str());
                assert_eq!(retry_after, Some("1"), "429 without Retry-After");
            }
            other => panic!("unexpected status {other}: {response}"),
        }
    }
    assert!(rejected >= 1, "expected backpressure with a 1-deep queue");
    assert!(!ids.is_empty());
    let (_, stats) = client::request(addr, "GET", "/v1/stats", None).unwrap();
    let stats = json::parse(&stats).unwrap();
    assert!(stats.get("rejected").and_then(Value::as_u64).unwrap() >= 1);
    // The explicit alias load generators alert on mirrors `rejected`.
    assert_eq!(
        stats.get("rejected_jobs").and_then(Value::as_u64),
        stats.get("rejected").and_then(Value::as_u64)
    );

    // Graceful shutdown over HTTP: accepted jobs still complete (the queue
    // drains), then the listener goes away.
    let (status, _) = client::request(addr, "POST", "/v1/shutdown", None).unwrap();
    assert_eq!(status, 200);
    server.join();
    for id in &ids {
        // The cells completed before the workers exited.
        // (The listener is closed now, so verify through the library view:
        // nothing to poll — completion is implied by join returning after
        // the drain. Reconnecting must fail.)
        let _ = id;
    }
    assert!(
        client::request(addr, "GET", "/v1/healthz", None).is_err(),
        "listener survived shutdown"
    );
}
