//! Property: no corruption of the record log is ever fatal.
//!
//! For an arbitrary log (random record count and contents), any single
//! byte mutation, any truncation, and any garbage append must leave
//! [`RecordLog::open`] returning `Ok` with a **prefix** of the original
//! records — never a panic, never a record that was not written, never a
//! record whose bytes differ from what was appended. This is the
//! "never serve a corrupt result" half of the durability contract; the
//! server layers byte-identical replay on top of it.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use qsdd_store::{RecordLog, SyncPolicy};

fn temp_path() -> PathBuf {
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("qsdd-store-prop-{}-{n}.log", std::process::id()))
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Writes `records` to a fresh log and returns its raw file bytes.
fn write_log(path: &Path, records: &[Vec<u8>]) -> Vec<u8> {
    let (mut log, existing, _) = RecordLog::open(path, SyncPolicy::Never).unwrap();
    assert!(existing.is_empty());
    for record in records {
        log.append(record).unwrap();
    }
    drop(log);
    std::fs::read(path).unwrap()
}

/// Opens the log and asserts the recovered records are a prefix of
/// `original`, byte for byte.
fn assert_recovers_to_prefix(path: &Path, original: &[Vec<u8>]) {
    let (_log, recovered, report) = RecordLog::open(path, SyncPolicy::Never).unwrap();
    assert!(
        recovered.len() <= original.len(),
        "recovered {} records from a log of {}",
        recovered.len(),
        original.len()
    );
    for (i, (got, want)) in recovered.iter().zip(original).enumerate() {
        assert_eq!(got, want, "record {i} differs after recovery");
    }
    // Recovery is idempotent: a second open finds a fully valid file.
    drop(_log);
    let (_log, again, clean) = RecordLog::open(path, SyncPolicy::Never).unwrap();
    assert_eq!(again, recovered, "recovery is not idempotent");
    assert_eq!(clean.truncated_bytes, 0, "second open still truncated");
    let _ = report;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_single_byte_flip_recovers_to_a_valid_prefix(
        records in collection::vec(collection::vec(0u8..=255, 0..40), 1..6),
        flip_at in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        let path = temp_path();
        let _cleanup = Cleanup(path.clone());
        let mut bytes = write_log(&path, &records);
        let at = flip_at % bytes.len();
        bytes[at] ^= 1 << flip_bit;
        std::fs::write(&path, &bytes).unwrap();
        assert_recovers_to_prefix(&path, &records);
    }

    #[test]
    fn any_truncation_recovers_to_a_valid_prefix(
        records in collection::vec(collection::vec(0u8..=255, 0..40), 1..6),
        cut_at in 0usize..4096,
    ) {
        let path = temp_path();
        let _cleanup = Cleanup(path.clone());
        let bytes = write_log(&path, &records);
        let keep = cut_at % (bytes.len() + 1);
        std::fs::write(&path, &bytes[..keep]).unwrap();
        assert_recovers_to_prefix(&path, &records);
    }

    #[test]
    fn garbage_appended_to_the_tail_is_truncated_away(
        records in collection::vec(collection::vec(0u8..=255, 0..40), 0..5),
        garbage in collection::vec(0u8..=255, 1..64),
    ) {
        let path = temp_path();
        let _cleanup = Cleanup(path.clone());
        let mut bytes = write_log(&path, &records);
        bytes.extend_from_slice(&garbage);
        std::fs::write(&path, &bytes).unwrap();
        // A garbage tail can accidentally parse as valid records (it would
        // need a correct fxhash checksum — vanishingly unlikely), so the
        // prefix property is the contract, not an exact record count.
        assert_recovers_to_prefix(&path, &records);
    }

    #[test]
    fn undamaged_logs_round_trip_exactly(
        records in collection::vec(collection::vec(0u8..=255, 0..64), 0..8),
    ) {
        let path = temp_path();
        let _cleanup = Cleanup(path.clone());
        write_log(&path, &records);
        let (_log, recovered, report) = RecordLog::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(recovered, records);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(report.records, records.len());
    }
}
