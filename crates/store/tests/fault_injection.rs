//! Store-site fault injection, exercised through [`RecordLog`].
//!
//! Lives in its own integration-test binary on purpose: fault plans are
//! process-global, and arming store I/O errors inside the crate's unit
//! tests would race the concurrently running `RecordLog` unit tests. Here
//! the whole process belongs to these tests (serialized by a local lock).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use qsdd_store::fault::{self, FaultPlan};
use qsdd_store::{RecordLog, SyncPolicy};

static LOCK: Mutex<()> = Mutex::new(());

fn temp_path(tag: &str) -> PathBuf {
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "qsdd-store-fault-{}-{tag}-{n}.log",
        std::process::id()
    ))
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn injected_write_errors_fail_the_budgeted_appends_then_heal() {
    let _guard = LOCK.lock().unwrap();
    let path = temp_path("write-err");
    let _cleanup = Cleanup(path.clone());
    let (mut log, _, _) = RecordLog::open(&path, SyncPolicy::Never).unwrap();
    fault::install(FaultPlan {
        store_write_err: 2,
        ..FaultPlan::default()
    });
    assert!(log.append(b"fails-1").is_err());
    assert!(log.append(b"fails-2").is_err());
    // Budget exhausted: the site heals and the log is still usable.
    log.append(b"lands").unwrap();
    fault::clear();
    drop(log);
    let (_log, records, report) = RecordLog::open(&path, SyncPolicy::Never).unwrap();
    assert_eq!(records, vec![b"lands".to_vec()]);
    assert_eq!(report.truncated_bytes, 0, "failed appends wrote nothing");
}

#[test]
fn injected_open_errors_surface_as_io_errors() {
    let _guard = LOCK.lock().unwrap();
    let path = temp_path("open-err");
    let _cleanup = Cleanup(path.clone());
    fault::install(FaultPlan {
        store_open_err: 1,
        ..FaultPlan::default()
    });
    let err = RecordLog::open(&path, SyncPolicy::Never).unwrap_err();
    assert!(err.to_string().contains("injected"), "{err}");
    // Second open succeeds (budget spent) — transient faults heal.
    let (_log, records, _) = RecordLog::open(&path, SyncPolicy::Never).unwrap();
    assert!(records.is_empty());
    fault::clear();
}

#[test]
fn injected_delays_slow_appends_without_failing_them() {
    let _guard = LOCK.lock().unwrap();
    let path = temp_path("delay");
    let _cleanup = Cleanup(path.clone());
    let (mut log, _, _) = RecordLog::open(&path, SyncPolicy::Never).unwrap();
    fault::install(FaultPlan {
        store_write_delay_ms: 30,
        ..FaultPlan::default()
    });
    let started = Instant::now();
    log.append(b"slow").unwrap();
    assert!(started.elapsed().as_millis() >= 30, "delay was not applied");
    fault::clear();
    assert_eq!(log.records(), 1);
}

#[test]
fn env_specs_round_trip_through_the_parser() {
    // Pure parsing — no global state touched until install, which this
    // test never calls.
    let plan = fault::parse_spec("store_write_err=1,store_open_err=2").unwrap();
    assert_eq!(plan.store_write_err, 1);
    assert_eq!(plan.store_open_err, 2);
    assert_eq!(plan.worker_panic, 0);
}
