//! # qsdd-store — an append-only, crash-safe record log
//!
//! The server's result cache is content-addressed: a completed job's
//! payload is a pure function of its canonical key, so persisting the
//! `(key, payload)` pair once makes every future restart able to serve the
//! byte-identical response without re-simulating. This crate is the disk
//! half of that promise — a dependency-free, append-only **record log**
//! with the failure model of a process that can be `kill -9`'d at any
//! instant:
//!
//! * Every record is length-prefixed and checksummed
//!   (`[u32 len][u64 fxhash64][payload]`), so a torn tail write is
//!   detected, never parsed.
//! * [`RecordLog::open`] scans the file front to back and **truncates to
//!   the last valid record**: everything before the first corrupt byte is
//!   served, everything after is dropped and reported in the
//!   [`RecoveryReport`].
//! * [`RecordLog::compact`] rewrites the log keeping only the last record
//!   per caller-defined key, via a temp file + fsync + atomic rename.
//! * The [`SyncPolicy`] decides whether every append fsyncs
//!   ([`SyncPolicy::Always`], the durable default) or leaves flushing to
//!   the OS ([`SyncPolicy::Never`], for tests and throwaway stores).
//!
//! The crate also hosts the [`fault`] injection seam the robustness test
//! suite uses to force store I/O errors, delayed writes and worker panics
//! at named sites — zero overhead (one relaxed atomic load) when disabled.
//!
//! ## Example
//!
//! ```
//! use qsdd_store::{RecordLog, SyncPolicy};
//!
//! let path = std::env::temp_dir().join(format!("qsdd-store-doc-{}.log", std::process::id()));
//! # let _ = std::fs::remove_file(&path);
//! let (mut log, records, report) = RecordLog::open(&path, SyncPolicy::Never).unwrap();
//! assert!(records.is_empty() && report.truncated_bytes == 0);
//! log.append(b"hello").unwrap();
//! drop(log);
//! let (_log, records, _report) = RecordLog::open(&path, SyncPolicy::Never).unwrap();
//! assert_eq!(records, vec![b"hello".to_vec()]);
//! # std::fs::remove_file(&path).unwrap();
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod fault;

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::hash::Hash;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The 8-byte magic the log file starts with (name + format version).
pub const MAGIC: &[u8; 8] = b"QSDDLOG1";

/// Per-record header size: `u32` payload length + `u64` checksum.
const HEADER_BYTES: usize = 4 + 8;

/// Upper bound on a single record's payload. Far above any legitimate
/// result payload (the server caps request bodies at 4 MiB); its real job
/// is making a corrupt length prefix read as corruption instead of a
/// 4 GiB allocation.
pub const MAX_RECORD_BYTES: usize = 64 * 1024 * 1024;

/// FxHash64 over a byte slice — the same hash family the server's content
/// addresses use, reimplemented locally so this crate stays
/// dependency-free. Not cryptographic: it detects torn and bit-flipped
/// writes, not an adversary with write access to the file.
pub fn fxhash64(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut hash: u64 = 0;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        hash = (hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
    let mut tail: u64 = 0;
    for (i, &byte) in chunks.remainder().iter().enumerate() {
        tail |= u64::from(byte) << (8 * i);
    }
    hash = (hash.rotate_left(5) ^ tail).wrapping_mul(SEED);
    // Mix the length so a payload and its zero-padded extension differ.
    (hash.rotate_left(5) ^ bytes.len() as u64).wrapping_mul(SEED)
}

/// When appends reach the platter.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum SyncPolicy {
    /// `fsync` after every append (and after compaction): a record that
    /// [`RecordLog::append`] returned `Ok` for survives power loss. The
    /// durable default.
    Always,
    /// Leave flushing to the OS page cache. Survives `kill -9` (the page
    /// cache belongs to the kernel, not the process) but not power loss.
    Never,
}

/// What [`RecordLog::open`] found and repaired.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct RecoveryReport {
    /// Valid records recovered from the log.
    pub records: usize,
    /// Bytes dropped from the tail (torn or corrupt data past the last
    /// valid record), or the whole previous file when the magic itself was
    /// unreadable.
    pub truncated_bytes: u64,
    /// Whether the file header (magic) had to be rewritten from scratch —
    /// true only when the file existed but did not start with [`MAGIC`].
    pub rewrote_header: bool,
}

/// What [`RecordLog::compact`] dropped.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct CompactReport {
    /// Records before compaction.
    pub records_before: usize,
    /// Records after compaction (last write wins per key).
    pub records_after: usize,
    /// File bytes reclaimed.
    pub reclaimed_bytes: u64,
}

/// An open, append-only record log.
///
/// All writes go through one file handle positioned at the end; the file
/// is only ever mutated by appending a complete record or by
/// [`compact`](Self::compact)'s atomic whole-file replacement, so a crash
/// at any instant leaves a prefix of valid records plus at most one torn
/// tail — exactly what [`open`](Self::open) recovers from.
#[derive(Debug)]
pub struct RecordLog {
    file: File,
    path: PathBuf,
    policy: SyncPolicy,
    records: usize,
}

impl RecordLog {
    /// Opens (creating if absent) the log at `path`, scans it, truncates
    /// any torn/corrupt tail, and returns the log handle, every valid
    /// payload in append order, and a [`RecoveryReport`] of what was
    /// repaired.
    pub fn open(
        path: &Path,
        policy: SyncPolicy,
    ) -> io::Result<(RecordLog, Vec<Vec<u8>>, RecoveryReport)> {
        if fault::take_store_open_error() {
            return Err(io::Error::other("injected store open failure"));
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut report = RecoveryReport::default();
        let (payloads, valid_len) = if bytes.len() >= MAGIC.len() && bytes.starts_with(MAGIC) {
            let (payloads, end) = scan_records(&bytes[MAGIC.len()..]);
            (payloads, (MAGIC.len() + end) as u64)
        } else if bytes.is_empty() {
            // Fresh file: write the header.
            file.write_all(MAGIC)?;
            (Vec::new(), MAGIC.len() as u64)
        } else {
            // Unrecognizable file: nothing in it can be trusted, start over.
            report.rewrote_header = true;
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            report.truncated_bytes = bytes.len() as u64;
            (Vec::new(), MAGIC.len() as u64)
        };
        if !report.rewrote_header && (bytes.len() as u64) > valid_len {
            report.truncated_bytes = bytes.len() as u64 - valid_len;
            file.set_len(valid_len)?;
        }
        file.seek(SeekFrom::End(0))?;
        if policy == SyncPolicy::Always && (report.truncated_bytes > 0 || bytes.is_empty()) {
            file.sync_data()?;
        }
        report.records = payloads.len();
        let log = RecordLog {
            file,
            path: path.to_path_buf(),
            policy,
            records: payloads.len(),
        };
        Ok((log, payloads, report))
    }

    /// Appends one record. On `Ok`, the record is fully written (and, under
    /// [`SyncPolicy::Always`], fsynced); on `Err`, the file may hold a torn
    /// tail that the next [`open`](Self::open) will truncate away.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if let Some(delay) = fault::write_delay() {
            std::thread::sleep(delay);
        }
        if fault::take_store_write_error() {
            return Err(io::Error::other("injected store write failure"));
        }
        if payload.len() > MAX_RECORD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "record of {} bytes exceeds the {MAX_RECORD_BYTES}-byte cap",
                    payload.len()
                ),
            ));
        }
        let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fxhash64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        if self.policy == SyncPolicy::Always {
            self.file.sync_data()?;
        }
        self.records += 1;
        Ok(())
    }

    /// Records currently in the log (valid at open, plus appends since).
    pub fn records(&self) -> usize {
        self.records
    }

    /// The path the log lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rewrites the log keeping, for every key `key_of` derives, only the
    /// **last** record with that key (records where `key_of` returns `None`
    /// are dropped — they would be unreadable to the consumer anyway).
    /// The rewrite goes through a temp file that is fsynced and atomically
    /// renamed over the log, so a crash mid-compaction leaves either the
    /// old file or the new one, never a mix.
    pub fn compact<K: Eq + Hash>(
        &mut self,
        key_of: impl Fn(&[u8]) -> Option<K>,
    ) -> io::Result<CompactReport> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes)?;
        let body = bytes.strip_prefix(MAGIC.as_slice()).unwrap_or(&[]);
        let (payloads, _) = scan_records(body);
        let before = payloads.len();

        // Last write wins: remember the final index per key, then emit the
        // survivors in their original order.
        let mut last: HashMap<K, usize> = HashMap::new();
        for (index, payload) in payloads.iter().enumerate() {
            if let Some(key) = key_of(payload) {
                last.insert(key, index);
            }
        }
        let mut keep = vec![false; payloads.len()];
        for &index in last.values() {
            keep[index] = true;
        }

        let tmp_path = self.path.with_extension("compact-tmp");
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(MAGIC)?;
        let mut after = 0usize;
        for (payload, keep) in payloads.iter().zip(&keep) {
            if !keep {
                continue;
            }
            let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&fxhash64(payload).to_le_bytes());
            frame.extend_from_slice(payload);
            tmp.write_all(&frame)?;
            after += 1;
        }
        tmp.sync_data()?;
        drop(tmp);
        std::fs::rename(&tmp_path, &self.path)?;
        if self.policy == SyncPolicy::Always {
            // Persist the rename itself (the directory entry).
            if let Some(dir) = self.path.parent() {
                if let Ok(dir) = File::open(dir) {
                    let _ = dir.sync_data();
                }
            }
        }
        // The old handle still points at the unlinked inode; reopen.
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        let new_len = self.file.seek(SeekFrom::End(0))?;
        self.records = after;
        Ok(CompactReport {
            records_before: before,
            records_after: after,
            reclaimed_bytes: (bytes.len() as u64).saturating_sub(new_len),
        })
    }
}

/// Scans `body` (the file past the magic) and returns every valid payload
/// plus the byte offset just past the last valid record. Stops — without
/// panicking — at the first length prefix that overruns the buffer or the
/// cap, and at the first checksum mismatch.
fn scan_records(body: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut payloads = Vec::new();
    let mut at = 0usize;
    while body.len() - at >= HEADER_BYTES {
        let len = u32::from_le_bytes(body[at..at + 4].try_into().expect("4 bytes")) as usize;
        let checksum = u64::from_le_bytes(body[at + 4..at + 12].try_into().expect("8 bytes"));
        if len > MAX_RECORD_BYTES || body.len() - at - HEADER_BYTES < len {
            break;
        }
        let payload = &body[at + HEADER_BYTES..at + HEADER_BYTES + len];
        if fxhash64(payload) != checksum {
            break;
        }
        payloads.push(payload.to_vec());
        at += HEADER_BYTES + len;
    }
    (payloads, at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "qsdd-store-test-{}-{tag}-{n}.log",
            std::process::id()
        ))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
            let _ = std::fs::remove_file(self.0.with_extension("compact-tmp"));
        }
    }

    #[test]
    fn round_trips_records_across_reopen() {
        let path = temp_path("roundtrip");
        let _cleanup = Cleanup(path.clone());
        let (mut log, records, report) = RecordLog::open(&path, SyncPolicy::Always).unwrap();
        assert!(records.is_empty());
        assert_eq!(report, RecoveryReport::default());
        log.append(b"alpha").unwrap();
        log.append(b"").unwrap();
        log.append("beta-\u{1F600}".as_bytes()).unwrap();
        assert_eq!(log.records(), 3);
        drop(log);
        let (log, records, report) = RecordLog::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(
            records,
            vec![
                b"alpha".to_vec(),
                Vec::new(),
                "beta-\u{1F600}".as_bytes().to_vec()
            ]
        );
        assert_eq!(report.records, 3);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(log.records(), 3);
    }

    #[test]
    fn torn_tail_is_truncated_to_the_last_valid_record() {
        let path = temp_path("torn");
        let _cleanup = Cleanup(path.clone());
        let (mut log, _, _) = RecordLog::open(&path, SyncPolicy::Never).unwrap();
        log.append(b"one").unwrap();
        log.append(b"two").unwrap();
        drop(log);
        // Simulate a torn append: a partial frame at the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        let intact = bytes.len();
        bytes.extend_from_slice(&1000u32.to_le_bytes());
        bytes.extend_from_slice(&[0xAB; 5]);
        std::fs::write(&path, &bytes).unwrap();
        let (log, records, report) = RecordLog::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(report.truncated_bytes, (bytes.len() - intact) as u64);
        assert!(!report.rewrote_header);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact as u64);
        drop(log);
    }

    #[test]
    fn corrupt_checksum_drops_that_record_and_everything_after() {
        let path = temp_path("checksum");
        let _cleanup = Cleanup(path.clone());
        let (mut log, _, _) = RecordLog::open(&path, SyncPolicy::Never).unwrap();
        log.append(b"keep").unwrap();
        let keep_len = std::fs::metadata(&path).unwrap().len();
        log.append(b"flip-me").unwrap();
        log.append(b"unreachable").unwrap();
        drop(log);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the middle record.
        let at = keep_len as usize + HEADER_BYTES;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (_log, records, report) = RecordLog::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(records, vec![b"keep".to_vec()]);
        assert!(report.truncated_bytes > 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep_len);
    }

    #[test]
    fn bad_magic_resets_the_file() {
        let path = temp_path("magic");
        let _cleanup = Cleanup(path.clone());
        std::fs::write(&path, b"definitely not a qsdd log").unwrap();
        let (mut log, records, report) = RecordLog::open(&path, SyncPolicy::Never).unwrap();
        assert!(records.is_empty());
        assert!(report.rewrote_header);
        assert_eq!(report.truncated_bytes, 25);
        log.append(b"fresh").unwrap();
        drop(log);
        let (_log, records, _) = RecordLog::open(&path, SyncPolicy::Never).unwrap();
        assert_eq!(records, vec![b"fresh".to_vec()]);
    }

    #[test]
    fn oversized_records_are_rejected_on_append() {
        let path = temp_path("oversize");
        let _cleanup = Cleanup(path.clone());
        let (mut log, _, _) = RecordLog::open(&path, SyncPolicy::Never).unwrap();
        // Don't actually allocate 64 MiB; cheat with a length check via the
        // cap being public.
        assert!(MAX_RECORD_BYTES < u32::MAX as usize);
        let too_big = vec![0u8; MAX_RECORD_BYTES + 1];
        let err = log.append(&too_big).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        // The failed append wrote nothing.
        assert_eq!(log.records(), 0);
        drop(log);
        let (_log, records, report) = RecordLog::open(&path, SyncPolicy::Never).unwrap();
        assert!(records.is_empty());
        assert_eq!(report.truncated_bytes, 0);
    }

    #[test]
    fn compaction_keeps_the_last_record_per_key() {
        let path = temp_path("compact");
        let _cleanup = Cleanup(path.clone());
        let (mut log, _, _) = RecordLog::open(&path, SyncPolicy::Always).unwrap();
        log.append(b"a=1").unwrap();
        log.append(b"b=1").unwrap();
        log.append(b"a=2").unwrap();
        log.append(b"junk").unwrap(); // no key -> dropped
        let report = log
            .compact(|payload| {
                let text = std::str::from_utf8(payload).ok()?;
                text.split_once('=').map(|(k, _)| k.to_string())
            })
            .unwrap();
        assert_eq!(report.records_before, 4);
        assert_eq!(report.records_after, 2);
        assert!(report.reclaimed_bytes > 0);
        // Appends still work after the handle swap, and order is preserved.
        log.append(b"c=1").unwrap();
        drop(log);
        let (_log, records, _) = RecordLog::open(&path, SyncPolicy::Always).unwrap();
        assert_eq!(
            records,
            vec![b"b=1".to_vec(), b"a=2".to_vec(), b"c=1".to_vec()]
        );
    }

    #[test]
    fn fxhash_is_stable_and_length_sensitive() {
        // Pin a couple of values so the on-disk format cannot drift
        // silently (old logs must keep verifying).
        assert_eq!(fxhash64(b""), 0_u64.wrapping_mul(0x51_7c_c1_b7_27_22_0a_95));
        assert_ne!(fxhash64(b"a"), fxhash64(b"b"));
        assert_ne!(fxhash64(b"a"), fxhash64(b"a\0"));
        assert_ne!(fxhash64(&[0u8; 8]), fxhash64(&[0u8; 16]));
    }
}
