//! Fault injection for the robustness test suite.
//!
//! Production code sprinkles *named fault sites* (worker panics, store
//! write/open failures, delayed writes) that the kill-restart and
//! degradation tests arm either in-process ([`install`]) or across a
//! subprocess boundary via the `QSDD_FAULTS` environment variable
//! ([`init_from_env`], called once at server startup).
//!
//! When no plan is installed — the production state — every site check is
//! a single relaxed atomic load of a `false` flag, so the seam costs
//! nothing on hot paths. Counters are *budgets*: `store_write_err=2` makes
//! the next two store appends fail and then heals, which is exactly the
//! shape transient disk faults take.
//!
//! ## Spec syntax
//!
//! Comma-separated `site=count` pairs, e.g.
//! `QSDD_FAULTS=worker_panic=1,store_write_err=3,store_write_delay_ms=50`:
//!
//! | site | effect |
//! |------|--------|
//! | `worker_panic` | the next *count* simulations panic mid-job |
//! | `store_write_err` | the next *count* store appends return an I/O error |
//! | `store_open_err` | the next *count* store opens return an I/O error |
//! | `store_write_delay_ms` | every store append sleeps this long first |

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Master switch: `false` (production) short-circuits every site check.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Remaining worker panics to inject.
static WORKER_PANIC: AtomicU64 = AtomicU64::new(0);
/// Remaining store-append failures to inject.
static STORE_WRITE_ERR: AtomicU64 = AtomicU64::new(0);
/// Remaining store-open failures to inject.
static STORE_OPEN_ERR: AtomicU64 = AtomicU64::new(0);
/// Delay (milliseconds) applied to every store append while non-zero.
static STORE_WRITE_DELAY_MS: AtomicU64 = AtomicU64::new(0);

/// A parsed fault plan: how many times each named site fires.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
pub struct FaultPlan {
    /// Simulations that will panic mid-job.
    pub worker_panic: u64,
    /// Store appends that will return an injected I/O error.
    pub store_write_err: u64,
    /// Store opens that will return an injected I/O error.
    pub store_open_err: u64,
    /// Sleep applied to every store append (0 = none).
    pub store_write_delay_ms: u64,
}

/// Installs `plan`, replacing any previous one. Tests that install a plan
/// must [`clear`] it afterwards (the state is process-global).
pub fn install(plan: FaultPlan) {
    WORKER_PANIC.store(plan.worker_panic, Ordering::Relaxed);
    STORE_WRITE_ERR.store(plan.store_write_err, Ordering::Relaxed);
    STORE_OPEN_ERR.store(plan.store_open_err, Ordering::Relaxed);
    STORE_WRITE_DELAY_MS.store(plan.store_write_delay_ms, Ordering::Relaxed);
    ENABLED.store(plan != FaultPlan::default(), Ordering::Release);
}

/// Disarms every fault site.
pub fn clear() {
    install(FaultPlan::default());
}

/// Arms the plan described by the `QSDD_FAULTS` environment variable, if
/// set. Called once at server startup so subprocess tests can inject
/// faults without a code path into the child. A malformed spec panics —
/// a test that asks for faults and silently gets none would pass vacuously.
pub fn init_from_env() {
    if let Ok(spec) = std::env::var("QSDD_FAULTS") {
        if !spec.is_empty() {
            install(parse_spec(&spec).unwrap_or_else(|e| panic!("bad QSDD_FAULTS: {e}")));
        }
    }
}

/// Parses a `site=count,site=count` spec (see the module docs for the
/// site table).
pub fn parse_spec(spec: &str) -> Result<FaultPlan, String> {
    let mut plan = FaultPlan::default();
    for pair in spec.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (site, count) = pair
            .split_once('=')
            .ok_or_else(|| format!("`{pair}` is not `site=count`"))?;
        let count: u64 = count
            .trim()
            .parse()
            .map_err(|_| format!("`{count}` is not a count"))?;
        match site.trim() {
            "worker_panic" => plan.worker_panic = count,
            "store_write_err" => plan.store_write_err = count,
            "store_open_err" => plan.store_open_err = count,
            "store_write_delay_ms" => plan.store_write_delay_ms = count,
            other => return Err(format!("unknown fault site `{other}`")),
        }
    }
    Ok(plan)
}

/// Decrements `counter` if positive; true exactly when this call consumed
/// one injection budget unit.
fn take(counter: &AtomicU64) -> bool {
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    counter
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
        .is_ok()
}

/// Site check: should this simulation panic? (Consumes one budget unit.)
pub fn should_panic_worker() -> bool {
    take(&WORKER_PANIC)
}

/// Site check: should this store append fail? (Consumes one budget unit.)
pub fn take_store_write_error() -> bool {
    take(&STORE_WRITE_ERR)
}

/// Site check: should this store open fail? (Consumes one budget unit.)
pub fn take_store_open_error() -> bool {
    take(&STORE_OPEN_ERR)
}

/// Site check: the delay every store append must apply, if armed.
pub fn write_delay() -> Option<Duration> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    match STORE_WRITE_DELAY_MS.load(Ordering::Relaxed) {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The fault state is process-global, so every test here serializes on
    // one lock and restores the disarmed state before releasing it.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_sites_never_fire() {
        let _guard = LOCK.lock().unwrap();
        clear();
        assert!(!should_panic_worker());
        assert!(!take_store_write_error());
        assert!(!take_store_open_error());
        assert!(write_delay().is_none());
    }

    #[test]
    fn budgets_fire_exactly_count_times() {
        // Only the worker-panic site is armed here: the store sites are
        // checked by RecordLog, whose unit tests run concurrently in this
        // same process (their coverage lives in tests/fault_injection.rs,
        // a separate test binary and therefore a separate process).
        let _guard = LOCK.lock().unwrap();
        install(FaultPlan {
            worker_panic: 2,
            ..FaultPlan::default()
        });
        assert!(should_panic_worker());
        assert!(should_panic_worker());
        assert!(!should_panic_worker());
        clear();
    }

    #[test]
    fn specs_parse_and_reject_unknown_sites() {
        let _guard = LOCK.lock().unwrap();
        let plan = parse_spec("worker_panic=3, store_write_err=1,store_write_delay_ms=50").unwrap();
        assert_eq!(
            plan,
            FaultPlan {
                worker_panic: 3,
                store_write_err: 1,
                store_open_err: 0,
                store_write_delay_ms: 50,
            }
        );
        assert!(parse_spec("explode=1").unwrap_err().contains("unknown"));
        assert!(parse_spec("worker_panic")
            .unwrap_err()
            .contains("site=count"));
        assert!(parse_spec("worker_panic=lots")
            .unwrap_err()
            .contains("count"));
        // Empty segments are tolerated (trailing commas).
        assert_eq!(parse_spec("").unwrap(), FaultPlan::default());
        clear();
    }

    #[test]
    fn write_delay_reads_without_consuming() {
        let _guard = LOCK.lock().unwrap();
        install(FaultPlan {
            store_write_delay_ms: 7,
            ..FaultPlan::default()
        });
        assert_eq!(write_delay(), Some(Duration::from_millis(7)));
        assert_eq!(write_delay(), Some(Duration::from_millis(7)));
        clear();
    }
}
