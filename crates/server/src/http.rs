//! A minimal HTTP/1.1 layer hand-rolled on `std::net`.
//!
//! The build environment is offline, so the server cannot pull in `hyper`
//! or even `httparse`; this module implements exactly the slice of
//! HTTP/1.1 the job API needs — request-line + header parsing,
//! `Content-Length` bodies, keep-alive, and response writing — in plain
//! safe Rust over [`std::io`] streams. Bodies and header blocks are
//! size-capped so a misbehaving client cannot balloon server memory.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body. Inline QASM sources are the largest
/// legitimate payload; 4 MiB covers every QASMBench circuit with room to
/// spare.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A [`TcpStream`] reader that enforces a **total** deadline across every
/// read until re-armed.
///
/// A plain `set_read_timeout` only bounds the gap between bytes: a client
/// trickling one header byte per interval (a slow-loris) resets the clock
/// on every read and can hold a handler thread for as long as it likes.
/// `DeadlineStream` fixes the budget when [`arm`](Self::arm) is called —
/// once per request, before the request line — and shrinks the socket's
/// read timeout to whatever remains before each read, so idle waiting and
/// trickled bytes draw down the same allowance. An exhausted budget reads
/// as [`io::ErrorKind::TimedOut`].
#[derive(Debug)]
pub struct DeadlineStream {
    inner: TcpStream,
    deadline: Option<Instant>,
}

impl DeadlineStream {
    /// Wraps a stream with no deadline armed (reads block indefinitely,
    /// subject to any timeout already set on the socket).
    pub fn new(inner: TcpStream) -> DeadlineStream {
        DeadlineStream {
            inner,
            deadline: None,
        }
    }

    /// Starts a fresh budget: every read from now on fails with
    /// [`io::ErrorKind::TimedOut`] once `budget` has elapsed in total.
    pub fn arm(&mut self, budget: Duration) {
        self.deadline = Some(Instant::now() + budget);
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(deadline) = self.deadline {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "request deadline exceeded",
                ));
            }
            // `set_read_timeout(Some(0))` is an error by contract; the
            // zero case returned above, but clamp anyway so a sub-
            // millisecond remainder cannot round down to it either.
            self.inner
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
        }
        match self.inner.read(buf) {
            // Unix reports an expired socket timeout as WouldBlock;
            // normalize so callers see one kind for "deadline exceeded".
            Err(error)
                if self.deadline.is_some()
                    && matches!(
                        error.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "request deadline exceeded",
                ))
            }
            other => other,
        }
    }
}

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target as sent (path only; the API uses no query strings).
    pub path: String,
    /// Decoded body (empty when the request carried none).
    pub body: String,
    /// Whether the client asked to keep the connection open afterwards.
    pub keep_alive: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed the connection before sending a request line —
    /// the normal end of a keep-alive session, not an error condition.
    Closed,
    /// An I/O failure mid-request.
    Io(io::Error),
    /// The bytes were not parseable HTTP; the message is client-facing.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`] (maps to `413`).
    BodyTooLarge(usize),
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Closed => write!(f, "connection closed"),
            RequestError::Io(error) => write!(f, "i/o error: {error}"),
            RequestError::Malformed(message) => write!(f, "malformed request: {message}"),
            RequestError::BodyTooLarge(size) => {
                write!(f, "request body of {size} bytes exceeds {MAX_BODY_BYTES}")
            }
        }
    }
}

impl From<io::Error> for RequestError {
    fn from(error: io::Error) -> Self {
        if error.kind() == io::ErrorKind::UnexpectedEof {
            RequestError::Closed
        } else {
            RequestError::Io(error)
        }
    }
}

/// Reads one HTTP/1.1 request from a buffered stream.
///
/// Returns [`RequestError::Closed`] on a clean end-of-stream before the
/// request line (the keep-alive loop's exit signal). Only `Content-Length`
/// bodies are supported; chunked transfer encoding is rejected as
/// malformed.
pub fn read_request(reader: &mut BufReader<impl Read>) -> Result<Request, RequestError> {
    let request_line = match read_line(reader, MAX_HEAD_BYTES)? {
        Some(line) if !line.is_empty() => line,
        _ => return Err(RequestError::Closed),
    };
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request line".to_string()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing request target".to_string()))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("missing HTTP version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported protocol `{version}`"
        )));
    }

    // Headers: the API only needs Content-Length and Connection; everything
    // else is skipped (but still counted against the head cap).
    let mut content_length = 0usize;
    let mut head_bytes = request_line.len();
    let mut keep_alive = version != "HTTP/1.0";
    loop {
        let line = read_line(reader, MAX_HEAD_BYTES - head_bytes.min(MAX_HEAD_BYTES))?
            .ok_or_else(|| RequestError::Malformed("truncated header block".to_string()))?;
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(RequestError::Malformed(
                "header block too large".to_string(),
            ));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!("bad header `{line}`")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| {
                    RequestError::Malformed(format!("bad Content-Length `{value}`"))
                })?;
            }
            "transfer-encoding" => {
                return Err(RequestError::Malformed(
                    "chunked transfer encoding is not supported".to_string(),
                ));
            }
            "connection" => {
                let value = value.to_ascii_lowercase();
                if value.contains("close") {
                    keep_alive = false;
                } else if value.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }

    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::BodyTooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| RequestError::Malformed("request body is not UTF-8".to_string()))?;
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

/// Reads one CRLF-terminated line (LF tolerated), or `None` on EOF.
fn read_line(
    reader: &mut BufReader<impl Read>,
    cap: usize,
) -> Result<Option<String>, RequestError> {
    let mut line = Vec::new();
    loop {
        let buffer = reader.fill_buf()?;
        if buffer.is_empty() {
            return if line.is_empty() {
                Ok(None)
            } else {
                Err(RequestError::Malformed("truncated line".to_string()))
            };
        }
        let newline = buffer.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buffer.len(), |at| at + 1);
        line.extend_from_slice(&buffer[..take]);
        reader.consume(take);
        if newline.is_some() {
            break;
        }
        if line.len() > cap {
            return Err(RequestError::Malformed("line too long".to_string()));
        }
    }
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    if line.len() > cap {
        return Err(RequestError::Malformed("line too long".to_string()));
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| RequestError::Malformed("request head is not UTF-8".to_string()))
}

/// The reason phrase for the status codes the API emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes one `application/json` response with an explicit `Content-Length`
/// (the framing keep-alive depends on).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with(stream, status, "application/json", &[], body, keep_alive)
}

/// [`write_response`] with an explicit content type and extra headers
/// (e.g. `Retry-After` on `429`, `text/plain` for `/v1/metrics`).
///
/// Extra header names/values must already be valid HTTP header text: no
/// CR/LF, no colons in names (they are written verbatim).
pub fn write_response_with(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
        reason_phrase(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    write!(stream, "{head}\r\n{body}")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let request =
            parse("POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world")
                .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/jobs");
        assert_eq!(request.body, "hello world");
        assert!(request.keep_alive);
    }

    #[test]
    fn parses_a_bodyless_get_and_connection_close() {
        let request = parse("GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.body, "");
        assert!(!request.keep_alive);
        // HTTP/1.0 defaults to close.
        let old = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!old.keep_alive);
    }

    #[test]
    fn eof_before_the_request_line_reads_as_closed() {
        assert!(matches!(parse(""), Err(RequestError::Closed)));
    }

    #[test]
    fn rejects_malformed_requests() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad header line\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), Err(RequestError::Malformed(_))),
                "accepted {raw:?}"
            );
        }
    }

    #[test]
    fn rejects_oversized_bodies_with_a_dedicated_error() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&raw), Err(RequestError::BodyTooLarge(_))));
    }

    #[test]
    fn keep_alive_sessions_read_back_to_back_requests() {
        let raw = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        assert_eq!(read_request(&mut reader).unwrap().path, "/a");
        assert_eq!(read_request(&mut reader).unwrap().path, "/b");
        assert!(matches!(
            read_request(&mut reader),
            Err(RequestError::Closed)
        ));
    }

    #[test]
    fn an_armed_deadline_bounds_the_total_time_to_read_a_request() {
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // A slow-loris: trickle header bytes forever, each gap far shorter
        // than any per-read timeout, so only a *total* budget can stop it.
        let loris = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let _ = stream.write_all(b"GET /v1/healthz HTTP/1.1\r\n");
            for _ in 0..200 {
                if stream.write_all(b"x").is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        });
        let (stream, _) = listener.accept().unwrap();
        let mut stream = DeadlineStream::new(stream);
        stream.arm(Duration::from_millis(150));
        let started = Instant::now();
        let result = read_request(&mut BufReader::new(stream));
        let elapsed = started.elapsed();
        match result {
            Err(RequestError::Io(error)) => assert_eq!(error.kind(), io::ErrorKind::TimedOut),
            other => panic!("expected a timeout, got {other:?}"),
        }
        // The trickle alone would keep the old per-read timeout alive for
        // ~2s; the armed deadline must cut the session well before that.
        assert!(elapsed < Duration::from_millis(1500), "took {elapsed:?}");
        drop(loris); // detach: the writer exits on its next broken write
    }

    #[test]
    fn rearming_grants_each_request_its_own_budget() {
        use std::net::TcpListener;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
                .unwrap();
            // Hold the connection open past both reads.
            std::thread::sleep(Duration::from_millis(300));
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(DeadlineStream::new(stream));
        reader.get_mut().arm(Duration::from_secs(5));
        assert_eq!(read_request(&mut reader).unwrap().path, "/a");
        reader.get_mut().arm(Duration::from_secs(5));
        assert_eq!(read_request(&mut reader).unwrap().path, "/b");
        client.join().unwrap();
    }

    #[test]
    fn responses_carry_framing_headers() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn extra_headers_and_content_type_are_written_before_the_blank_line() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            429,
            "application/json",
            &[("retry-after", "1")],
            "{}",
            false,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        let head = text.split("\r\n\r\n").next().unwrap();
        assert!(head.contains("retry-after: 1"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        write_response_with(
            &mut out,
            200,
            "text/plain; version=0.0.4",
            &[],
            "x 1\n",
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("content-type: text/plain; version=0.0.4\r\n"));
    }
}
