//! A minimal blocking HTTP client for loopback use.
//!
//! Exists so the integration tests, the CI smoke check and the `bench`
//! load generator can talk to the server without external tooling (the
//! build environment is offline). It speaks exactly the HTTP subset the
//! server emits: status line, headers, `Content-Length` bodies, keep-alive.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded response: status code, lower-cased `(name, value)` header
/// pairs in wire order, and the body.
pub type RawResponse = (u16, Vec<(String, String)>, String);

/// A keep-alive connection to the server.
///
/// One client maps to one TCP connection; requests issued through it are
/// served back to back without reconnecting (the cheap path the load
/// generator measures).
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to the server.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Issues one request and reads the response; returns `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        self.request_with_headers(method, path, body)
            .map(|(status, _, body)| (status, body))
    }

    /// Issues one request and additionally returns the response headers as
    /// lower-cased `(name, value)` pairs (e.g. to read `retry-after`).
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<RawResponse> {
        let body = body.unwrap_or("");
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: qsdd\r\ncontent-length: {}\r\n\r\n{body}",
            body.len(),
        )?;
        self.writer.flush()?;
        read_response(&mut self.reader)
    }
}

/// Issues a request through `attempt` until it succeeds, retrying
/// transient failures with capped exponential backoff.
///
/// Retried outcomes are connection-level I/O errors and the server's two
/// shed-load statuses, `429` (queue full) and `503` (connection limit /
/// shutting down); everything else — including application errors like
/// `400` — returns immediately. The wait before attempt `n` doubles from
/// `base_delay` and is capped at 100× base; when the response carried a
/// `Retry-After` header (the server sets it on `429`), that many seconds
/// are honored instead if longer. A deterministic jitter derived from
/// `seed` (SplitMix64, so two clients with different seeds desynchronize)
/// adds 0–25% so retry storms from simultaneous rejections spread out.
///
/// Returns the last response (or I/O error) once `attempts` are exhausted.
/// `attempts` is clamped to at least 1.
pub fn with_retry(
    attempts: u32,
    base_delay: Duration,
    seed: u64,
    mut attempt: impl FnMut() -> io::Result<RawResponse>,
) -> io::Result<RawResponse> {
    // SplitMix64: cheap, seedable, and good enough to decorrelate clients.
    let mut jitter_state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next_jitter = move || {
        jitter_state = jitter_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let attempts = attempts.max(1);
    let mut delay = base_delay;
    let cap = base_delay.saturating_mul(100);
    for round in 0..attempts {
        let outcome = attempt();
        let last_round = round + 1 == attempts;
        let retry_after = match &outcome {
            Ok((status, headers, _)) if *status == 429 || *status == 503 => headers
                .iter()
                .find(|(name, _)| name == "retry-after")
                .and_then(|(_, value)| value.parse::<u64>().ok())
                .map(Duration::from_secs),
            Ok(_) => return outcome,
            Err(_) => None,
        };
        if last_round {
            return outcome;
        }
        let wait = retry_after.unwrap_or(Duration::ZERO).max(delay);
        let jitter = wait.mul_f64((next_jitter() % 256) as f64 / 1024.0);
        std::thread::sleep(wait + jitter);
        delay = (delay + delay).min(cap);
    }
    unreachable!("the final round returns above");
}

/// One-shot convenience: connect, issue a single request, disconnect.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    Client::connect(addr)?.request(method, path, body)
}

/// Reads one `HTTP/1.1` response with a `Content-Length` body.
fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<RawResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before the status line",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line `{}`", status_line.trim()),
            )
        })?;
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside the header block",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|body| (status, headers, body))
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response body is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(status: u16) -> io::Result<RawResponse> {
        Ok((status, Vec::new(), String::new()))
    }

    #[test]
    fn successes_and_application_errors_return_without_retrying() {
        for status in [200, 202, 400, 404] {
            let mut calls = 0;
            let result = with_retry(5, Duration::from_millis(1), 7, || {
                calls += 1;
                ok(status)
            });
            assert_eq!(result.unwrap().0, status);
            assert_eq!(calls, 1, "status {status} must not retry");
        }
    }

    #[test]
    fn shed_load_statuses_and_io_errors_are_retried() {
        let mut calls = 0;
        let (status, _, _) = with_retry(5, Duration::from_millis(1), 7, || {
            calls += 1;
            match calls {
                1 => ok(429),
                2 => Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "boot race",
                )),
                3 => ok(503),
                _ => ok(200),
            }
        })
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(calls, 4);
    }

    #[test]
    fn exhausted_attempts_return_the_last_outcome() {
        let mut calls = 0;
        let result = with_retry(3, Duration::from_millis(1), 7, || {
            calls += 1;
            ok(429)
        });
        assert_eq!(result.unwrap().0, 429);
        assert_eq!(calls, 3);
        // ... including a final I/O error.
        let result = with_retry(2, Duration::from_millis(1), 7, || {
            Err(io::Error::new(io::ErrorKind::ConnectionReset, "gone"))
        });
        assert_eq!(result.unwrap_err().kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn retry_after_headers_stretch_the_wait() {
        // Observable via wall time: one retry that must honor a 1-second
        // Retry-After would stall the test, so assert on the small end —
        // a parseable header shorter than the backoff changes nothing.
        let started = std::time::Instant::now();
        let mut calls = 0;
        let _ = with_retry(2, Duration::from_millis(1), 7, || {
            calls += 1;
            Ok((
                429,
                vec![("retry-after".to_string(), "0".to_string())],
                String::new(),
            ))
        });
        assert_eq!(calls, 2);
        assert!(started.elapsed() < Duration::from_secs(1));
    }
}
