//! A minimal blocking HTTP client for loopback use.
//!
//! Exists so the integration tests, the CI smoke check and the `bench`
//! load generator can talk to the server without external tooling (the
//! build environment is offline). It speaks exactly the HTTP subset the
//! server emits: status line, headers, `Content-Length` bodies, keep-alive.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A decoded response: status code, lower-cased `(name, value)` header
/// pairs in wire order, and the body.
pub type RawResponse = (u16, Vec<(String, String)>, String);

/// A keep-alive connection to the server.
///
/// One client maps to one TCP connection; requests issued through it are
/// served back to back without reconnecting (the cheap path the load
/// generator measures).
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to the server.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Issues one request and reads the response; returns `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        self.request_with_headers(method, path, body)
            .map(|(status, _, body)| (status, body))
    }

    /// Issues one request and additionally returns the response headers as
    /// lower-cased `(name, value)` pairs (e.g. to read `retry-after`).
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<RawResponse> {
        let body = body.unwrap_or("");
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: qsdd\r\ncontent-length: {}\r\n\r\n{body}",
            body.len(),
        )?;
        self.writer.flush()?;
        read_response(&mut self.reader)
    }
}

/// One-shot convenience: connect, issue a single request, disconnect.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    Client::connect(addr)?.request(method, path, body)
}

/// Reads one `HTTP/1.1` response with a `Content-Length` body.
fn read_response(reader: &mut BufReader<TcpStream>) -> io::Result<RawResponse> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before the status line",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad status line `{}`", status_line.trim()),
            )
        })?;
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed inside the header block",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|body| (status, headers, body))
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response body is not UTF-8"))
}
