//! The content-addressed result cache and its request-coalescing cells.
//!
//! Every job is identified by its **content address** — the FxHash of the
//! canonical (circuit, noise, seed, shots, backend, opt level, dedup flag,
//! observables) key ([`JobInput::canonical_key`]) — so the cache is
//! simultaneously the job registry: submitting the same work twice yields
//! the same job id, and `GET /v1/jobs/<id>` is a cache lookup.
//!
//! Each entry is an [`ExecutionCell`] moving through
//! queued → running → done/failed exactly once. Coalescing falls out of the
//! addressing: a submission whose cell already exists *attaches* to it —
//! whether the cell is still in flight or already done — so N simultaneous
//! identical submissions cost one simulation and everyone reads the same
//! byte-identical result payload.
//!
//! Completed cells are kept in an LRU list bounded by the configured
//! capacity; in-flight cells are never evicted (evicting one would detach
//! its waiters), so the map size is bounded by
//! `capacity + queue depth + workers`.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use qsdd_telemetry::trace::Tracer;
use qsdd_telemetry::{Stage, StageTimings};

use crate::api::JobInput;

/// Lifecycle of one content-addressed job.
#[derive(Clone, Debug)]
pub enum CellState {
    /// Waiting in the bounded queue.
    Queued,
    /// A worker is simulating it right now.
    Running,
    /// Finished; the deterministic result payload (shared, never copied).
    Done(Arc<String>),
    /// Execution failed; the client-facing message.
    Failed(String),
}

impl CellState {
    /// The wire-level status string of the state.
    pub fn status(&self) -> &'static str {
        match self {
            CellState::Queued => "queued",
            CellState::Running => "running",
            CellState::Done(_) => "completed",
            CellState::Failed(_) => "failed",
        }
    }
}

/// One content-addressed job: the validated input plus its execution state.
///
/// The cell is the coalescing point — every submission of the same
/// canonical key holds an `Arc` to the same cell, and the worker that
/// executes it publishes the result to all of them at once.
#[derive(Debug)]
pub struct ExecutionCell {
    /// Job id (`j` + 16 hex digits of the canonical key's FxHash).
    pub id: String,
    /// The canonical key the id was derived from (kept to detect the
    /// astronomically unlikely 64-bit hash collision, which is resolved by
    /// probing).
    pub key: String,
    /// The validated job input the worker executes. `None` only for cells
    /// restored from the durable store at boot — those are already terminal
    /// and never execute, so only the envelope fields they carry
    /// ([`Self::circuit_qasm`]) are needed.
    input: Option<JobInput>,
    /// The QASM echo of a *restored* cell (live cells read it from `input`),
    /// persisted so a restart serves the identical job envelope.
    restored_qasm: Option<String>,
    /// When the submission created the cell — the start of its queue wait.
    created_at: Instant,
    state: Mutex<CellState>,
    done: Condvar,
    /// The job's accumulated stage breakdown (parse and queue wait on the
    /// serving path, the simulation stages merged in on completion).
    timings: Mutex<StageTimings>,
    /// The job's tracer, attached at submission when tracing samples the
    /// job; the executing worker takes it, so coalesced submissions never
    /// race over it. Diagnostics only — never part of the result payload.
    tracer: Mutex<Option<Tracer>>,
}

impl ExecutionCell {
    fn new(id: String, key: String, input: JobInput) -> Self {
        ExecutionCell {
            id,
            key,
            input: Some(input),
            restored_qasm: None,
            created_at: Instant::now(),
            state: Mutex::new(CellState::Queued),
            done: Condvar::new(),
            timings: Mutex::new(StageTimings::new()),
            tracer: Mutex::new(None),
        }
    }

    /// A cell rebuilt from a persisted record: born terminal, input-free.
    fn restored(
        id: String,
        key: String,
        circuit_qasm: Option<String>,
        payload: Arc<String>,
        timings: StageTimings,
    ) -> Self {
        ExecutionCell {
            id,
            key,
            input: None,
            restored_qasm: circuit_qasm,
            created_at: Instant::now(),
            state: Mutex::new(CellState::Done(payload)),
            done: Condvar::new(),
            timings: Mutex::new(timings),
            tracer: Mutex::new(None),
        }
    }

    /// The validated input of a live (submitted this process) cell; `None`
    /// for cells restored from the store, which are terminal by
    /// construction and never reach a worker.
    pub fn input(&self) -> Option<&JobInput> {
        self.input.as_ref()
    }

    /// The job's OpenQASM echo for the status envelope, whichever side of a
    /// restart the cell was born on.
    pub fn circuit_qasm(&self) -> Option<&str> {
        match &self.input {
            Some(input) => input.circuit_qasm.as_deref(),
            None => self.restored_qasm.as_deref(),
        }
    }

    /// A snapshot of the current state (the payload `Arc` is shared, not
    /// cloned).
    pub fn state(&self) -> CellState {
        self.state.lock().expect("cell lock").clone()
    }

    /// Marks the cell as picked up by a worker; records and returns how
    /// long it waited in the queue since submission.
    pub fn mark_running(&self) -> Duration {
        *self.state.lock().expect("cell lock") = CellState::Running;
        let waited = self.created_at.elapsed();
        self.record_stage(Stage::QueueWait, waited);
        waited
    }

    /// Adds `elapsed` to one stage of the job's timing breakdown.
    pub fn record_stage(&self, stage: Stage, elapsed: Duration) {
        self.timings
            .lock()
            .expect("cell lock")
            .record(stage, elapsed);
    }

    /// Merges a finished run's stage breakdown into the job's.
    pub fn merge_timings(&self, timings: &StageTimings) {
        self.timings.lock().expect("cell lock").merge(timings);
    }

    /// A snapshot of the job's stage-timing breakdown so far.
    pub fn stage_timings(&self) -> StageTimings {
        *self.timings.lock().expect("cell lock")
    }

    /// Attaches the job's tracer (called at submission, before the cell
    /// becomes visible to a worker).
    pub fn attach_tracer(&self, tracer: Tracer) {
        *self.tracer.lock().expect("cell lock") = Some(tracer);
    }

    /// Takes the job's tracer; the executing worker finishes it.
    pub fn take_tracer(&self) -> Option<Tracer> {
        self.tracer.lock().expect("cell lock").take()
    }

    /// Time since the cell was created (submission → now); at completion
    /// this is the job's end-to-end latency.
    pub fn age(&self) -> Duration {
        self.created_at.elapsed()
    }

    /// Publishes the result payload and wakes synchronous waiters.
    pub fn complete(&self, payload: Arc<String>) {
        *self.state.lock().expect("cell lock") = CellState::Done(payload);
        self.done.notify_all();
    }

    /// Publishes a failure and wakes synchronous waiters.
    pub fn fail(&self, message: String) {
        *self.state.lock().expect("cell lock") = CellState::Failed(message);
        self.done.notify_all();
    }

    /// Blocks until the cell reaches a terminal state and returns it (used
    /// by in-process consumers like the load generator; HTTP clients poll).
    pub fn wait_terminal(&self) -> CellState {
        let mut state = self.state.lock().expect("cell lock");
        loop {
            match &*state {
                CellState::Done(_) | CellState::Failed(_) => return state.clone(),
                _ => state = self.done.wait(state).expect("cell lock"),
            }
        }
    }
}

/// How a submission resolved against the cache.
pub enum Submission {
    /// A new cell was created and handed to `enqueue`.
    New(Arc<ExecutionCell>),
    /// An identical job is already queued or running; this submission
    /// attached to it (request coalescing).
    Coalesced(Arc<ExecutionCell>),
    /// An identical job already completed; the cached result serves
    /// immediately.
    Hit(Arc<ExecutionCell>),
    /// The job was new but `enqueue` reported the queue full (`429`).
    Rejected,
}

/// The bounded, content-addressed cache-cum-registry.
#[derive(Debug)]
pub struct ResultCache {
    /// Maximum number of *completed* entries retained.
    capacity: usize,
    inner: Mutex<CacheInner>,
}

#[derive(Debug, Default)]
struct CacheInner {
    cells: HashMap<String, Arc<ExecutionCell>>,
    /// Lazy LRU order of terminal entries: `(id, stamp)` pairs, least
    /// recently used first. A pair is *current* only when its stamp
    /// matches `stamps[id]`; touching an entry pushes a fresh pair and
    /// bumps the stamp instead of scanning for the old one, keeping the
    /// cache-hit path O(1) amortised (stale pairs are skipped at eviction
    /// and swept by occasional compaction).
    lru_queue: VecDeque<(String, u64)>,
    /// id → current stamp; an id is present exactly while terminal
    /// (evictable).
    stamps: HashMap<String, u64>,
}

impl ResultCache {
    /// A cache retaining at most `capacity` completed results.
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner::default()),
        }
    }

    /// Resolves a submission: attach to an existing cell or create a new
    /// one.
    ///
    /// `enqueue` is called with the freshly created cell *while the cache
    /// lock is held* — so the existence check and the queue insertion are
    /// one atomic step — and must return `false` when the execution queue
    /// is full, in which case nothing is inserted and the submission is
    /// [`Submission::Rejected`]. Callers must therefore never take the
    /// cache lock from within `enqueue`.
    pub fn submit_with(
        &self,
        input: JobInput,
        enqueue: impl FnOnce(&Arc<ExecutionCell>) -> bool,
    ) -> Submission {
        let key = input.canonical_key();
        // Hash the key we just built instead of re-serializing it via
        // input.content_address() (the canonical string can be megabytes
        // for inline-QASM jobs).
        let mut id = crate::api::content_address_of(&key);
        let mut inner = self.inner.lock().expect("cache lock");
        // Hash-collision probe: distinct canonical keys get distinct ids.
        loop {
            match inner.cells.get(&id).map(Arc::clone) {
                Some(cell) if cell.key == key => {
                    return match cell.state() {
                        CellState::Done(_) | CellState::Failed(_) => {
                            self.touch(&mut inner, &cell.id);
                            Submission::Hit(cell)
                        }
                        _ => Submission::Coalesced(cell),
                    };
                }
                Some(_) => {
                    // Same 64-bit address, different job: probe linearly.
                    id.push('x');
                }
                None => break,
            }
        }
        let cell = Arc::new(ExecutionCell::new(id.clone(), key, input));
        if !enqueue(&cell) {
            return Submission::Rejected;
        }
        inner.cells.insert(id, Arc::clone(&cell));
        Submission::New(cell)
    }

    /// Rebuilds one completed entry from a persisted store record (boot
    /// path). The cell is born terminal and immediately evictable; capacity
    /// is enforced exactly as for freshly completed jobs, so restoring more
    /// records than the cache holds keeps the *latest-restored* entries.
    /// Returns `false` (without touching anything) when the id is already
    /// present — the store replays records oldest-first, so the caller
    /// resolves duplicates by last-wins *before* restoring.
    pub fn restore_completed(
        &self,
        id: &str,
        key: &str,
        circuit_qasm: Option<String>,
        payload: Arc<String>,
        timings: StageTimings,
    ) -> bool {
        {
            let mut inner = self.inner.lock().expect("cache lock");
            if inner.cells.contains_key(id) {
                return false;
            }
            let cell = Arc::new(ExecutionCell::restored(
                id.to_string(),
                key.to_string(),
                circuit_qasm,
                payload,
                timings,
            ));
            inner.cells.insert(id.to_string(), cell);
        }
        self.mark_terminal(id);
        true
    }

    /// Looks up a job by id.
    pub fn get(&self, id: &str) -> Option<Arc<ExecutionCell>> {
        self.inner
            .lock()
            .expect("cache lock")
            .cells
            .get(id)
            .cloned()
    }

    /// Records that `id` reached a terminal state, making it evictable;
    /// evicts the least recently used completed entries beyond capacity.
    /// Returns how many entries were evicted (for the metrics counter).
    pub fn mark_terminal(&self, id: &str) -> usize {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.stamps.insert(id.to_string(), 0);
        inner.lru_queue.push_back((id.to_string(), 0));
        let mut evicted = 0;
        while inner.stamps.len() > self.capacity {
            let Some((candidate, stamp)) = inner.lru_queue.pop_front() else {
                break;
            };
            // Stale pairs (superseded by a touch) are skipped; only the
            // current pair of an id represents its LRU position.
            if inner.stamps.get(&candidate) == Some(&stamp) {
                inner.stamps.remove(&candidate);
                inner.cells.remove(&candidate);
                evicted += 1;
            }
        }
        evicted
    }

    /// Number of completed entries currently retained.
    pub fn completed_entries(&self) -> usize {
        self.inner.lock().expect("cache lock").stamps.len()
    }

    /// Moves `id` to the most-recently-used end of the eviction order:
    /// bump its stamp and push a fresh pair (O(1); the outdated pair goes
    /// stale in place).
    fn touch(&self, inner: &mut CacheInner, id: &str) {
        let Some(stamp) = inner.stamps.get_mut(id) else {
            return;
        };
        *stamp += 1;
        let stamp = *stamp;
        inner.lru_queue.push_back((id.to_string(), stamp));
        // Bound the garbage: each compaction is O(queue) but runs at most
        // once per ~3·capacity pushes, so touches stay O(1) amortised.
        if inner.lru_queue.len() > 4 * self.capacity + 64 {
            let stamps = &inner.stamps;
            inner
                .lru_queue
                .retain(|(entry, s)| stamps.get(entry) == Some(s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::parse_job_request;

    fn input(seed: u64) -> JobInput {
        parse_job_request(&format!(
            r#"{{"circuit":{{"generator":"ghz","qubits":4}},"shots":10,"seed":{seed}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_submissions_coalesce_and_then_hit() {
        let cache = ResultCache::new(8);
        let Submission::New(cell) = cache.submit_with(input(1), |_| true) else {
            panic!("first submission must be new");
        };
        assert!(matches!(cell.state(), CellState::Queued));
        let Submission::Coalesced(same) = cache.submit_with(input(1), |_| true) else {
            panic!("second submission must coalesce");
        };
        assert!(Arc::ptr_eq(&cell, &same));

        cell.complete(Arc::new("{}".to_string()));
        cache.mark_terminal(&cell.id);
        let Submission::Hit(hit) = cache.submit_with(input(1), |_| true) else {
            panic!("post-completion submission must hit");
        };
        assert!(Arc::ptr_eq(&cell, &hit));
        assert_eq!(hit.state().status(), "completed");
    }

    #[test]
    fn distinct_jobs_do_not_share_cells() {
        let cache = ResultCache::new(8);
        let Submission::New(a) = cache.submit_with(input(1), |_| true) else {
            panic!("new");
        };
        let Submission::New(b) = cache.submit_with(input(2), |_| true) else {
            panic!("new");
        };
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn a_full_queue_rejects_without_inserting() {
        let cache = ResultCache::new(8);
        assert!(matches!(
            cache.submit_with(input(1), |_| false),
            Submission::Rejected
        ));
        // The rejected submission left no trace; retrying works.
        assert!(matches!(
            cache.submit_with(input(1), |_| true),
            Submission::New(_)
        ));
    }

    #[test]
    fn eviction_drops_the_least_recently_used_completed_entry() {
        let cache = ResultCache::new(2);
        let mut ids = Vec::new();
        for seed in 0..3 {
            // Touch entry 0 before the third completion so it stays warm
            // while entry 1 goes cold and gets evicted.
            if seed == 2 {
                assert!(matches!(
                    cache.submit_with(input(0), |_| true),
                    Submission::Hit(_)
                ));
            }
            let Submission::New(cell) = cache.submit_with(input(seed), |_| true) else {
                panic!("new");
            };
            cell.complete(Arc::new("{}".to_string()));
            ids.push(cell.id.clone());
            cache.mark_terminal(ids.last().unwrap());
        }
        assert_eq!(cache.completed_entries(), 2);
        assert!(cache.get(&ids[0]).is_some(), "touched entry survives");
        assert!(cache.get(&ids[1]).is_none(), "cold entry evicted");
        assert!(cache.get(&ids[2]).is_some());
        // Re-submitting the evicted job creates a fresh cell (a miss).
        assert!(matches!(
            cache.submit_with(input(1), |_| true),
            Submission::New(_)
        ));
    }

    #[test]
    fn repeated_hits_stay_cheap_and_preserve_lru_order() {
        // The hot path: hammer one completed entry with hits, then push a
        // new completion — the untouched entry must be the one evicted,
        // and the lazy queue must stay bounded by compaction.
        let cache = ResultCache::new(2);
        let mut ids = Vec::new();
        for seed in 0..2 {
            let Submission::New(cell) = cache.submit_with(input(seed), |_| true) else {
                panic!("new");
            };
            cell.complete(Arc::new("{}".to_string()));
            cache.mark_terminal(&cell.id);
            ids.push(cell.id.clone());
        }
        for _ in 0..5_000 {
            assert!(matches!(
                cache.submit_with(input(0), |_| true),
                Submission::Hit(_)
            ));
        }
        {
            let inner = cache.inner.lock().unwrap();
            assert!(
                inner.lru_queue.len() <= 4 * 2 + 64 + 1,
                "lazy queue grew unbounded: {}",
                inner.lru_queue.len()
            );
        }
        let Submission::New(cell) = cache.submit_with(input(7), |_| true) else {
            panic!("new");
        };
        cell.complete(Arc::new("{}".to_string()));
        cache.mark_terminal(&cell.id);
        assert_eq!(cache.completed_entries(), 2);
        assert!(cache.get(&ids[0]).is_some(), "hot entry survives");
        assert!(cache.get(&ids[1]).is_none(), "cold entry evicted");
    }

    #[test]
    fn in_flight_cells_are_never_evicted() {
        let cache = ResultCache::new(1);
        let Submission::New(pending) = cache.submit_with(input(0), |_| true) else {
            panic!("new");
        };
        for seed in 1..5 {
            let Submission::New(cell) = cache.submit_with(input(seed), |_| true) else {
                panic!("new");
            };
            cell.complete(Arc::new("{}".to_string()));
            cache.mark_terminal(&cell.id);
        }
        assert!(cache.get(&pending.id).is_some(), "queued cell survived");
        assert!(matches!(
            cache.submit_with(input(0), |_| true),
            Submission::Coalesced(_)
        ));
    }

    #[test]
    fn restored_entries_serve_hits_like_native_completions() {
        let cache = ResultCache::new(8);
        let job = input(1);
        let key = job.canonical_key();
        let id = job.content_address();
        let payload = Arc::new(r#"{"restored":true}"#.to_string());
        assert!(cache.restore_completed(
            &id,
            &key,
            Some("OPENQASM 2.0;".to_string()),
            Arc::clone(&payload),
            StageTimings::new(),
        ));
        // Duplicate ids are refused (the store resolves last-wins first).
        assert!(!cache.restore_completed(&id, &key, None, payload, StageTimings::new()));
        // A fresh submission of the same job hits the restored entry.
        let Submission::Hit(cell) = cache.submit_with(job, |_| true) else {
            panic!("submission after restore must hit");
        };
        assert!(cell.input().is_none(), "restored cells carry no input");
        assert_eq!(cell.circuit_qasm(), Some("OPENQASM 2.0;"));
        let CellState::Done(served) = cell.state() else {
            panic!("restored cell must be done");
        };
        assert_eq!(served.as_str(), r#"{"restored":true}"#);
    }

    #[test]
    fn restore_enforces_capacity_like_completion() {
        let cache = ResultCache::new(2);
        for seed in 0..4u64 {
            let job = input(seed);
            assert!(cache.restore_completed(
                &job.content_address(),
                &job.canonical_key(),
                None,
                Arc::new("{}".to_string()),
                StageTimings::new(),
            ));
        }
        assert_eq!(cache.completed_entries(), 2, "capacity holds at boot too");
        // The latest-restored entries survive.
        assert!(cache.get(&input(3).content_address()).is_some());
        assert!(cache.get(&input(0).content_address()).is_none());
    }

    #[test]
    fn wait_terminal_blocks_until_completion() {
        let cache = ResultCache::new(2);
        let Submission::New(cell) = cache.submit_with(input(9), |_| true) else {
            panic!("new");
        };
        let waiter = Arc::clone(&cell);
        let handle = std::thread::spawn(move || waiter.wait_terminal());
        cell.mark_running();
        cell.complete(Arc::new("{\"done\":true}".to_string()));
        match handle.join().unwrap() {
            CellState::Done(payload) => assert_eq!(payload.as_str(), "{\"done\":true}"),
            other => panic!("unexpected terminal state {other:?}"),
        }
    }
}
