//! Per-server-instance Prometheus metrics.
//!
//! Each [`Server`](crate::Server) owns its own
//! [`Registry`](qsdd_telemetry::Registry) rather than sharing the
//! process-global one, so several servers in one process (the test suite
//! boots them side by side) never mix counters, and `GET /v1/metrics` can
//! assert exact values against a scripted workload. The rendered page
//! concatenates this registry with the global one (stage histograms,
//! decision-diagram table traffic), whose metric names do not overlap.

use std::sync::Arc;

use qsdd_telemetry::{Counter, Gauge, Histogram, Registry, LATENCY_BOUNDS};

/// Pre-resolved handles into the server's private registry (resolving a
/// metric by name takes the registry lock, so the fixed-name series are
/// looked up once at startup).
#[derive(Debug)]
pub(crate) struct ServerMetrics {
    registry: Registry,
    /// Submissions answered from a completed cache entry.
    pub cache_hits: Arc<Counter>,
    /// Submissions that created a new cell (a cache miss).
    pub cache_misses: Arc<Counter>,
    /// Submissions attached to an identical in-flight job.
    pub coalesced: Arc<Counter>,
    /// Completed entries dropped by the cache's LRU bound.
    pub evictions: Arc<Counter>,
    /// Submissions shed with `429` because the queue was full.
    pub rejected: Arc<Counter>,
    /// Jobs whose simulation finished and published a result.
    pub jobs_completed: Arc<Counter>,
    /// Jobs whose simulation panicked.
    pub jobs_failed: Arc<Counter>,
    /// Jobs cancelled at their `timeout_ms` deadline (a subset of failed).
    pub jobs_timed_out: Arc<Counter>,
    /// Completed results appended to the durable store.
    pub store_writes: Arc<Counter>,
    /// Store appends that failed (the job still completed in memory).
    pub store_write_failures: Arc<Counter>,
    /// Records in the durable store (restored at boot + written since).
    pub store_records: Arc<Gauge>,
    /// 1 when the store has degraded to memory-only, else 0 (also 0 when
    /// the server runs without a store).
    pub store_degraded: Arc<Gauge>,
    /// Seconds each durable-store append took (fsync included).
    pub store_append: Arc<Histogram>,
    /// Milliseconds the boot-time store replay took (0 without a store).
    pub store_restore_millis: Arc<Gauge>,
    /// Records replayed from the durable store at the last boot.
    pub store_restored_records: Arc<Gauge>,
    /// Seconds jobs spent queued before a worker picked them up.
    pub queue_wait: Arc<Histogram>,
    /// Seconds from submission to published result (end-to-end).
    pub job_duration: Arc<Histogram>,
    /// Jobs currently waiting in the bounded execution queue.
    pub queue_depth: Arc<Gauge>,
}

impl ServerMetrics {
    /// Creates the registry and registers every fixed-name series (so the
    /// metrics page lists them from the first scrape, at zero).
    pub fn new() -> ServerMetrics {
        let registry = Registry::new();
        let cache_hits = registry.counter(
            "qsdd_cache_hits_total",
            "Submissions answered from a completed cache entry",
        );
        let cache_misses = registry.counter(
            "qsdd_cache_misses_total",
            "Submissions that created a new job (cache miss)",
        );
        let coalesced = registry.counter(
            "qsdd_cache_coalesced_total",
            "Submissions attached to an identical in-flight job",
        );
        let evictions = registry.counter(
            "qsdd_cache_evictions_total",
            "Completed results evicted by the cache's LRU bound",
        );
        let rejected = registry.counter(
            "qsdd_jobs_rejected_total",
            "Submissions shed with 429 because the queue was full",
        );
        let jobs_completed = registry.counter(
            "qsdd_jobs_completed_total",
            "Jobs that finished and published a result",
        );
        let jobs_failed =
            registry.counter("qsdd_jobs_failed_total", "Jobs whose simulation failed");
        let jobs_timed_out = registry.counter(
            "qsdd_jobs_timed_out_total",
            "Jobs cancelled at their timeout_ms deadline",
        );
        let store_writes = registry.counter(
            "qsdd_store_writes_total",
            "Completed results appended to the durable store",
        );
        let store_write_failures = registry.counter(
            "qsdd_store_write_failures_total",
            "Durable-store appends that failed",
        );
        let store_records = registry.gauge(
            "qsdd_store_records",
            "Records in the durable store (restored + written)",
        );
        let store_degraded = registry.gauge(
            "qsdd_store_degraded",
            "1 when the durable store has fallen back to memory-only",
        );
        let store_append = registry.histogram(
            "qsdd_store_append_seconds",
            "Time to append one completed result to the durable store",
            LATENCY_BOUNDS,
        );
        let store_restore_millis = registry.gauge(
            "qsdd_store_restore_millis",
            "Milliseconds the boot-time durable-store replay took",
        );
        let store_restored_records = registry.gauge(
            "qsdd_store_restored_records",
            "Records replayed from the durable store at the last boot",
        );
        let queue_wait = registry.histogram(
            "qsdd_queue_wait_seconds",
            "Time jobs spent queued before a worker picked them up",
            LATENCY_BOUNDS,
        );
        let job_duration = registry.histogram(
            "qsdd_job_duration_seconds",
            "Time from job submission to published result",
            LATENCY_BOUNDS,
        );
        let queue_depth = registry.gauge(
            "qsdd_queue_depth",
            "Jobs currently waiting in the execution queue",
        );
        ServerMetrics {
            registry,
            cache_hits,
            cache_misses,
            coalesced,
            evictions,
            rejected,
            jobs_completed,
            jobs_failed,
            jobs_timed_out,
            store_writes,
            store_write_failures,
            store_records,
            store_degraded,
            store_append,
            store_restore_millis,
            store_restored_records,
            queue_wait,
            job_duration,
            queue_depth,
        }
    }

    /// Counts one finished HTTP exchange under its normalized endpoint and
    /// status labels (label resolution takes the registry lock — fine at
    /// per-request granularity).
    pub fn observe_request(&self, path: &str, status: u16) {
        self.registry
            .counter_with(
                "qsdd_http_requests_total",
                "HTTP requests served, by endpoint and status",
                &[
                    ("endpoint", normalize_endpoint(path)),
                    ("status", status_label(status)),
                ],
            )
            .inc();
    }

    /// Renders this server's registry as Prometheus text.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

/// Collapses request paths onto a bounded endpoint label set, so an
/// attacker probing random paths cannot grow the registry without bound.
pub(crate) fn normalize_endpoint(path: &str) -> &'static str {
    match path {
        "/v1/healthz" => "/v1/healthz",
        "/v1/stats" => "/v1/stats",
        "/v1/metrics" => "/v1/metrics",
        "/v1/jobs" => "/v1/jobs",
        "/v1/shutdown" => "/v1/shutdown",
        "/v1/traces" => "/v1/traces",
        path if path.starts_with("/v1/jobs/") && path.ends_with("/trace") => "/v1/jobs/{id}/trace",
        path if path.starts_with("/v1/jobs/") => "/v1/jobs/{id}",
        _ => "other",
    }
}

/// The bounded status-label set (every status the server emits).
fn status_label(status: u16) -> &'static str {
    match status {
        200 => "200",
        202 => "202",
        400 => "400",
        404 => "404",
        405 => "405",
        413 => "413",
        429 => "429",
        503 => "503",
        _ => "500",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_normalize_onto_a_bounded_label_set() {
        assert_eq!(normalize_endpoint("/v1/jobs"), "/v1/jobs");
        assert_eq!(normalize_endpoint("/v1/jobs/j0123abc"), "/v1/jobs/{id}");
        assert_eq!(
            normalize_endpoint("/v1/jobs/j0123abc/trace"),
            "/v1/jobs/{id}/trace"
        );
        assert_eq!(normalize_endpoint("/v1/traces"), "/v1/traces");
        assert_eq!(normalize_endpoint("/v1/metrics"), "/v1/metrics");
        assert_eq!(normalize_endpoint("/etc/passwd"), "other");
        assert_eq!(normalize_endpoint(""), "other");
    }

    #[test]
    fn request_counters_render_with_labels() {
        let metrics = ServerMetrics::new();
        metrics.observe_request("/v1/jobs", 202);
        metrics.observe_request("/v1/jobs", 202);
        metrics.observe_request("/v1/jobs/jdeadbeef", 200);
        let text = metrics.render();
        assert!(
            text.contains("qsdd_http_requests_total{endpoint=\"/v1/jobs\",status=\"202\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("qsdd_http_requests_total{endpoint=\"/v1/jobs/{id}\",status=\"200\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn fixed_series_are_present_from_the_first_scrape() {
        let text = ServerMetrics::new().render();
        for name in [
            "qsdd_cache_hits_total",
            "qsdd_cache_misses_total",
            "qsdd_cache_coalesced_total",
            "qsdd_cache_evictions_total",
            "qsdd_jobs_rejected_total",
            "qsdd_jobs_completed_total",
            "qsdd_jobs_failed_total",
            "qsdd_jobs_timed_out_total",
            "qsdd_store_writes_total",
            "qsdd_store_write_failures_total",
            "qsdd_store_records",
            "qsdd_store_degraded",
            "qsdd_store_append_seconds_count",
            "qsdd_store_restore_millis",
            "qsdd_store_restored_records",
            "qsdd_queue_wait_seconds_count",
            "qsdd_job_duration_seconds_count",
            "qsdd_queue_depth",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }
}
