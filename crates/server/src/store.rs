//! The durable result store behind the cache.
//!
//! When the server is started with a store directory, every job that
//! reaches [`CellState::Done`](crate::cache::CellState) is also appended —
//! *after* the in-memory cache is updated, never on the serving path — to
//! an on-disk [`RecordLog`] (`results.log` in the store directory). On the
//! next boot the log is replayed into the cache, so a restart (including a
//! `kill -9`) serves every previously completed job byte-identically from
//! the first request.
//!
//! One record is one completed job, encoded as a single JSON object:
//!
//! ```json
//! {"format":"qsdd-store-record/1","id":"j…","key":"…","circuit":"…",
//!  "payload":"…","timings":{"parse":1234,"…":…}}
//! ```
//!
//! `payload` is the exact cached result string; `timings` is the job's
//! stage breakdown in integer nanoseconds. The record framing, checksums
//! and torn-write recovery live in `qsdd-store`; this module only encodes,
//! decodes and supervises degradation.
//!
//! # Degradation
//!
//! The store is an accelerator for restarts, not a correctness dependency:
//! any I/O failure makes the server *less durable*, never unavailable. An
//! open failure at boot yields a degraded (memory-only) store; write
//! failures are counted and retried on the next completion, and after
//! [`MAX_CONSECUTIVE_FAILURES`] consecutive failures the store degrades to
//! memory-only for the rest of the process. Both conditions are visible in
//! `GET /v1/stats`, the serve banner and the `qsdd_store_*` metrics.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use qsdd_json::Value;
use qsdd_store::{RecordLog, SyncPolicy};
use qsdd_telemetry::{log_kv, Level, Stage, StageTimings};

/// Format tag of every persisted record; bump on breaking encoding changes
/// (unknown formats are skipped at boot, not errors).
pub const RECORD_FORMAT: &str = "qsdd-store-record/1";

/// The log's file name inside the store directory.
const LOG_FILE: &str = "results.log";

/// Consecutive write failures after which the store stops trying and runs
/// memory-only (transient failures below the threshold are retried on the
/// next completion).
const MAX_CONSECUTIVE_FAILURES: u64 = 3;

/// One decoded store record — everything needed to rebuild a completed
/// cache entry.
#[derive(Clone, Debug)]
pub struct RestoredRecord {
    /// The job id (`j` + 16 hex digits, plus collision-probe suffixes).
    pub id: String,
    /// The job's canonical key (what the id was hashed from).
    pub key: String,
    /// The job's OpenQASM echo for the status envelope, when it had one.
    pub circuit_qasm: Option<String>,
    /// The exact cached result payload.
    pub payload: String,
    /// The job's stage-timing breakdown at completion.
    pub timings: StageTimings,
}

/// What happened to one [`ResultStore::record_completion`] attempt.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub enum AppendOutcome {
    /// The record is on disk.
    Written,
    /// The append failed; logged and counted, the job is unaffected.
    Failed,
    /// The store is degraded (memory-only); nothing was attempted.
    Skipped,
}

/// What boot-time recovery found (reported in `/v1/stats` and the banner).
#[derive(Clone, Copy, Debug, Default)]
pub struct BootReport {
    /// Records replayed into the cache (after last-wins dedup).
    pub records_restored: usize,
    /// Bytes of torn or corrupt tail discarded by recovery.
    pub truncated_bytes: u64,
    /// Whether the log was rewritten (compacted) during boot.
    pub compacted: bool,
}

/// The server's handle on the durable result log. All methods are callable
/// concurrently from the worker pool; degradation is sticky and lock-free
/// to observe.
#[derive(Debug)]
pub struct ResultStore {
    path: PathBuf,
    log: Mutex<Option<RecordLog>>,
    writes: AtomicU64,
    write_failures: AtomicU64,
    consecutive_failures: AtomicU64,
    degraded: AtomicBool,
    boot: BootReport,
}

impl ResultStore {
    /// Opens (or creates) the store under `dir` and decodes every surviving
    /// record, oldest first. Never fails: an unopenable store comes back
    /// degraded (memory-only) with the reason logged, because durability
    /// must never cost availability.
    ///
    /// The caller replays the returned records into the cache (last-wins
    /// per id). When recovery truncated bytes or the log holds superseded
    /// duplicates, the log is compacted before serving.
    pub fn open(dir: &Path) -> (ResultStore, Vec<RestoredRecord>) {
        match Self::try_open(dir) {
            Ok(opened) => opened,
            Err(err) => {
                log_kv(
                    Level::Error,
                    "store.open_failed",
                    &[
                        ("dir", &dir.display().to_string()),
                        ("error", &err.to_string()),
                    ],
                );
                let store = ResultStore {
                    path: dir.join(LOG_FILE),
                    log: Mutex::new(None),
                    writes: AtomicU64::new(0),
                    write_failures: AtomicU64::new(0),
                    consecutive_failures: AtomicU64::new(0),
                    degraded: AtomicBool::new(true),
                    boot: BootReport::default(),
                };
                (store, Vec::new())
            }
        }
    }

    fn try_open(dir: &Path) -> io::Result<(ResultStore, Vec<RestoredRecord>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(LOG_FILE);
        let (mut log, raw_records, report) = RecordLog::open(&path, SyncPolicy::Always)?;
        // Decode defensively: a record that frames correctly but does not
        // parse (foreign format, manual tampering that survived the
        // checksum) is skipped and counted, never served.
        let mut decoded: Vec<RestoredRecord> = Vec::with_capacity(raw_records.len());
        let mut undecodable = 0usize;
        for raw in &raw_records {
            match decode_record(raw) {
                Some(record) => decoded.push(record),
                None => undecodable += 1,
            }
        }
        // Last-wins per id: drop every record superseded by a later append.
        let mut survivors = vec![true; decoded.len()];
        {
            let mut last: std::collections::HashMap<&str, usize> = std::collections::HashMap::new();
            for (index, record) in decoded.iter().enumerate() {
                if let Some(previous) = last.insert(record.id.as_str(), index) {
                    survivors[previous] = false;
                }
            }
        }
        let duplicates = survivors.iter().filter(|keep| !**keep).count();
        let mut compacted = false;
        if report.truncated_bytes > 0 || duplicates > 0 || undecodable > 0 {
            // Rewrite the log down to exactly the records we will serve.
            compacted = log
                .compact(|raw| decode_record(raw).map(|record| record.id))
                .is_ok();
        }
        let restored: Vec<RestoredRecord> = decoded
            .into_iter()
            .zip(survivors)
            .filter_map(|(record, keep)| keep.then_some(record))
            .collect();
        log_kv(
            Level::Info,
            "store.open",
            &[
                ("path", &path.display().to_string()),
                ("records", &restored.len().to_string()),
                ("truncated_bytes", &report.truncated_bytes.to_string()),
                ("undecodable", &undecodable.to_string()),
            ],
        );
        let store = ResultStore {
            path,
            log: Mutex::new(Some(log)),
            writes: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
            consecutive_failures: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            boot: BootReport {
                records_restored: restored.len(),
                truncated_bytes: report.truncated_bytes,
                compacted,
            },
        };
        Ok((store, restored))
    }

    /// Appends one completed job behind the cache. Failures are logged and
    /// counted, never propagated — the job already completed in memory and
    /// its client must be served regardless. The outcome feeds the
    /// `qsdd_store_*` metrics.
    pub fn record_completion(&self, record: &RestoredRecord) -> AppendOutcome {
        if self.degraded.load(Ordering::Relaxed) {
            return AppendOutcome::Skipped;
        }
        let frame = encode_record(record);
        let mut guard = self.log.lock().expect("store lock");
        let Some(log) = guard.as_mut() else {
            return AppendOutcome::Skipped;
        };
        match log.append(frame.as_bytes()) {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                self.consecutive_failures.store(0, Ordering::Relaxed);
                AppendOutcome::Written
            }
            Err(err) => {
                self.write_failures.fetch_add(1, Ordering::Relaxed);
                let streak = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
                log_kv(
                    Level::Error,
                    "store.write_failed",
                    &[
                        ("id", &record.id),
                        ("error", &err.to_string()),
                        ("consecutive", &streak.to_string()),
                    ],
                );
                if streak >= MAX_CONSECUTIVE_FAILURES {
                    // The disk is not coming back: stop paying for the
                    // attempts and make the degradation visible.
                    *guard = None;
                    self.degraded.store(true, Ordering::Relaxed);
                    log_kv(
                        Level::Error,
                        "store.degraded",
                        &[("path", &self.path.display().to_string())],
                    );
                }
                AppendOutcome::Failed
            }
        }
    }

    /// The log file's path (for the banner and `/v1/stats`).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the store has fallen back to memory-only operation.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Records successfully appended since boot.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Appends that failed since boot.
    pub fn write_failures(&self) -> u64 {
        self.write_failures.load(Ordering::Relaxed)
    }

    /// Records currently in the log (restored + written this process).
    pub fn records(&self) -> u64 {
        self.boot.records_restored as u64 + self.writes()
    }

    /// What boot-time recovery found.
    pub fn boot_report(&self) -> BootReport {
        self.boot
    }
}

/// Renders one record as its single-line JSON frame.
fn encode_record(record: &RestoredRecord) -> String {
    let mut fields: Vec<(String, Value)> = vec![
        ("format".to_string(), Value::from(RECORD_FORMAT)),
        ("id".to_string(), Value::from(record.id.as_str())),
        ("key".to_string(), Value::from(record.key.as_str())),
    ];
    if let Some(qasm) = &record.circuit_qasm {
        fields.push(("circuit".to_string(), Value::from(qasm.as_str())));
    }
    fields.push(("payload".to_string(), Value::from(record.payload.as_str())));
    fields.push((
        "timings".to_string(),
        Value::Object(
            record
                .timings
                .iter()
                .filter(|(_, elapsed)| !elapsed.is_zero())
                .map(|(stage, elapsed)| {
                    (
                        stage.name().to_string(),
                        Value::from(elapsed.as_nanos() as u64),
                    )
                })
                .collect(),
        ),
    ));
    Value::object(fields).to_string()
}

/// Decodes one raw log record; `None` for anything that is not a valid
/// record of the current format (skipped at boot, dropped by compaction).
fn decode_record(raw: &[u8]) -> Option<RestoredRecord> {
    let text = std::str::from_utf8(raw).ok()?;
    let value = qsdd_json::parse(text).ok()?;
    if value.get("format")?.as_str()? != RECORD_FORMAT {
        return None;
    }
    let id = value.get("id")?.as_str()?.to_string();
    let key = value.get("key")?.as_str()?.to_string();
    let circuit_qasm = match value.get("circuit") {
        Some(circuit) => Some(circuit.as_str()?.to_string()),
        None => None,
    };
    let payload = value.get("payload")?.as_str()?.to_string();
    let mut timings = StageTimings::new();
    if let Some(Value::Object(pairs)) = value.get("timings") {
        for (name, nanos) in pairs {
            let stage = Stage::ALL.iter().find(|stage| stage.name() == name)?;
            timings.record(*stage, Duration::from_nanos(nanos.as_u64()?));
        }
    }
    Some(RestoredRecord {
        id,
        key,
        circuit_qasm,
        payload,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fault seam is process-global; every test that appends (whether
    /// it arms faults or not) serializes on this lock so an armed budget
    /// is consumed only by the test that armed it.
    static FAULT_SCOPE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn record(id: &str, payload: &str) -> RestoredRecord {
        let mut timings = StageTimings::new();
        timings.record(Stage::Parse, Duration::from_nanos(1234));
        timings.record(Stage::Execute, Duration::from_micros(56));
        RestoredRecord {
            id: id.to_string(),
            key: format!("key-of-{id}"),
            circuit_qasm: Some("OPENQASM 2.0;\nqreg q[2];\n".to_string()),
            payload: payload.to_string(),
            timings,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicU64;
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let n = UNIQUE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "qsdd-result-store-{}-{tag}-{n}",
            std::process::id()
        ))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn records_round_trip_through_the_encoding() {
        let original = record("j0123456789abcdef", r#"{"counts":{"0":7}}"#);
        let decoded = decode_record(encode_record(&original).as_bytes()).unwrap();
        assert_eq!(decoded.id, original.id);
        assert_eq!(decoded.key, original.key);
        assert_eq!(decoded.circuit_qasm, original.circuit_qasm);
        assert_eq!(decoded.payload, original.payload);
        assert_eq!(
            decoded.timings.get(Stage::Parse),
            Duration::from_nanos(1234)
        );
        assert_eq!(
            decoded.timings.get(Stage::Execute),
            Duration::from_micros(56)
        );
        // QASM-free jobs (generator circuits outside the QASM subset)
        // round-trip without the optional field.
        let mut bare = record("jfedcba9876543210", "{}");
        bare.circuit_qasm = None;
        let decoded = decode_record(encode_record(&bare).as_bytes()).unwrap();
        assert_eq!(decoded.circuit_qasm, None);
    }

    #[test]
    fn foreign_and_malformed_records_decode_to_none() {
        assert!(decode_record(b"not json").is_none());
        assert!(decode_record(br#"{"format":"something-else/9","id":"x"}"#).is_none());
        assert!(decode_record(br#"{"format":"qsdd-store-record/1"}"#).is_none());
        assert!(decode_record(&[0xFF, 0xFE]).is_none());
    }

    #[test]
    fn completions_persist_across_reopen_with_last_wins() {
        let _scope = FAULT_SCOPE.lock().unwrap();
        let dir = temp_dir("reopen");
        let _cleanup = Cleanup(dir.clone());
        {
            let (store, restored) = ResultStore::open(&dir);
            assert!(restored.is_empty());
            assert!(!store.is_degraded());
            for (id, payload) in [("j1", "first"), ("j2", "other"), ("j1", "second")] {
                // The repeat of j1 models an eviction + resubmission.
                assert_eq!(
                    store.record_completion(&record(id, payload)),
                    AppendOutcome::Written
                );
            }
            assert_eq!(store.writes(), 3);
        }
        let (store, restored) = ResultStore::open(&dir);
        assert_eq!(restored.len(), 2, "last-wins dedup at boot");
        let j1 = restored.iter().find(|r| r.id == "j1").unwrap();
        assert_eq!(j1.payload, "second");
        assert_eq!(store.boot_report().records_restored, 2);
        // The duplicate forced a compaction, so a third open is clean.
        assert!(store.boot_report().compacted);
        drop(store);
        let (store, restored) = ResultStore::open(&dir);
        assert_eq!(restored.len(), 2);
        assert!(!store.boot_report().compacted);
    }

    #[test]
    fn an_unopenable_directory_degrades_instead_of_failing() {
        let _scope = FAULT_SCOPE.lock().unwrap();
        // A file where the directory should be makes create_dir_all fail.
        let dir = temp_dir("degraded");
        std::fs::write(&dir, b"not a directory").unwrap();
        let _cleanup = Cleanup(dir.clone());
        let (store, restored) = ResultStore::open(&dir);
        assert!(store.is_degraded());
        assert!(restored.is_empty());
        // Writes are silently skipped, not errors.
        assert_eq!(
            store.record_completion(&record("j1", "lost")),
            AppendOutcome::Skipped
        );
        assert_eq!(store.writes(), 0);
    }

    #[test]
    fn repeated_write_failures_degrade_to_memory_only() {
        let _scope = FAULT_SCOPE.lock().unwrap();
        let dir = temp_dir("write-fail");
        let _cleanup = Cleanup(dir.clone());
        let (store, _) = ResultStore::open(&dir);
        qsdd_store::fault::install(qsdd_store::fault::FaultPlan {
            store_write_err: MAX_CONSECUTIVE_FAILURES,
            ..Default::default()
        });
        for _ in 0..MAX_CONSECUTIVE_FAILURES {
            assert_eq!(
                store.record_completion(&record("j1", "x")),
                AppendOutcome::Failed
            );
        }
        qsdd_store::fault::clear();
        assert!(store.is_degraded(), "failure streak must degrade");
        assert_eq!(store.write_failures(), MAX_CONSECUTIVE_FAILURES);
        // Degraded is sticky: even healthy disks are not retried.
        assert_eq!(
            store.record_completion(&record("j1", "x")),
            AppendOutcome::Skipped
        );
    }
}
