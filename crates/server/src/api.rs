//! Request / response schemas of the job API.
//!
//! This module is pure data plumbing: it decodes `POST /v1/jobs` bodies
//! into a validated [`JobInput`], derives the job's **canonical key** (the
//! string the content-addressed result cache hashes), and renders the
//! JobReport-shaped result payload. No sockets, no locks — everything here
//! is unit-testable in isolation.
//!
//! See `docs/server.md` for the wire-level reference of every field.

use std::collections::BTreeMap;
use std::hash::Hasher as _;

use qsdd_batch::{JobReport, JobStatus};
use qsdd_circuit::{generators, qasm, Circuit};
use qsdd_core::fxhash::FxHasher;
use qsdd_core::{BackendKind, Observable, OptLevel, StochasticOutcome, WeightedOptions};
use qsdd_json::Value;
use qsdd_noise::NoiseModel;

/// Hard shot cap per job: bounds both a job's CPU time and its transient
/// memory — the deduplicating driver holds per-shot presample state
/// (tens of bytes per shot, plus a per-shot record when observables are
/// requested), so the cap keeps one untrusted request's footprint in the
/// tens of megabytes per worker. Larger studies belong in `qsdd_cli
/// batch`, whose round-based scheduler bounds memory by the round size.
pub const MAX_SHOTS: usize = 1_000_000;
/// Qubit cap on the decision-diagram back-end (outcomes are `u64` basis
/// indices).
pub const MAX_DD_QUBITS: usize = 63;
/// Qubit cap on the dense statevector back-end (the amplitude buffer is
/// `2^n` complex numbers; 24 qubits is already a 256 MiB state).
pub const MAX_DENSE_QUBITS: usize = 24;
/// Enumeration-budget cap on weighted jobs: each enumerated pattern is one
/// full trajectory simulation, so the cap bounds a weighted request's CPU
/// the same way [`MAX_SHOTS`] bounds a sampled one (and bounds the
/// enumerator's frontier heap, which grows with the budget).
pub const MAX_WEIGHTED_PATTERNS: u64 = 100_000;
/// Cap on the per-job intra-shot fork-join width. Purely a sanity bound on
/// the request — the effective width is additionally clamped against the
/// server's worker count at execution time.
pub const MAX_INTRA_THREADS: u64 = 64;

/// A fully validated job submission.
#[derive(Clone, Debug)]
pub struct JobInput {
    /// The circuit to simulate (untranspiled; `opt` is applied at
    /// execution).
    pub circuit: Circuit,
    /// The normalized OpenQASM 2.0 echo of the circuit, when the circuit is
    /// expressible in the parser's OpenQASM subset (`None` e.g. for
    /// generator circuits using gates with three or more controls).
    pub circuit_qasm: Option<String>,
    /// Simulation back-end.
    pub backend: BackendKind,
    /// Number of stochastic shots.
    pub shots: usize,
    /// Master seed.
    pub seed: u64,
    /// Transpiler optimization level.
    pub opt: OptLevel,
    /// Whether trajectory deduplication may be used (results are identical
    /// either way).
    pub dedup: bool,
    /// Noise model applied after every gate.
    pub noise: NoiseModel,
    /// Observables estimated over the shots, in request order.
    pub observables: Vec<Observable>,
    /// When set, the job runs through the weighted trajectory-enumeration
    /// driver with these knobs instead of sampling every shot.
    pub weighted: Option<WeightedOptions>,
    /// Intra-shot fork-join width for this job (`1` = serial). An
    /// *execution* knob, not a result knob: results are bit-identical for
    /// every width, so it is deliberately **excluded** from
    /// [`canonical_key`](Self::canonical_key) and two submissions differing
    /// only here share one simulation and one cached result.
    pub intra_threads: usize,
    /// Wall-clock budget for the simulation in milliseconds; the job fails
    /// with reason `timed_out` when it cannot finish in time. Unlike
    /// `intra_threads` this **is** part of the canonical key (when present):
    /// a timed-out failure must never be served as the cached answer for an
    /// unbounded submission of the same circuit, and vice versa.
    pub timeout_ms: Option<u64>,
}

impl JobInput {
    /// The canonical key of the job: a string that is equal exactly for
    /// submissions that must share one simulation and one cached result.
    ///
    /// Every float is encoded by its IEEE-754 bit pattern, so two requests
    /// spelling the same angle differently (`0.5` vs `5e-1`) still collide
    /// while genuinely different angles never do. The circuit is encoded
    /// structurally (not via its QASM echo) so circuits outside the QASM
    /// subset are cacheable too.
    pub fn canonical_key(&self) -> String {
        let mut key = String::with_capacity(256);
        key.push_str(&canonical_circuit(&self.circuit));
        key.push_str(&format!(
            "|backend={}|shots={}|seed={}|opt={:?}|dedup={}|noise={:016x},{:016x},{:016x}",
            self.backend,
            self.shots,
            self.seed,
            self.opt,
            self.dedup,
            self.noise.depolarizing_prob().to_bits(),
            self.noise.amplitude_damping_prob().to_bits(),
            self.noise.phase_flip_prob().to_bits(),
        ));
        // `intra_threads` is deliberately absent: it only changes how the
        // job is executed, never what it computes, so all widths must hit
        // the same cache entry.
        if let Some(timeout_ms) = self.timeout_ms {
            // Only-when-present keeps every pre-existing key (and with it
            // every previously persisted result) byte-identical.
            key.push_str(&format!("|timeout_ms={timeout_ms}"));
        }
        if let Some(weighted) = &self.weighted {
            // Absent and `"weighted": false` collapse to the same key (both
            // mean ordinary sampling), so older cached results stay valid.
            key.push_str(&format!(
                "|weighted=cutoff:{:016x},max:{},exact:{}",
                weighted.mass_cutoff.to_bits(),
                weighted.max_patterns,
                weighted.exact_histogram,
            ));
        }
        for observable in &self.observables {
            match observable {
                Observable::QubitExcitation(q) => key.push_str(&format!("|exc={q}")),
                Observable::BasisProbability(index) => key.push_str(&format!("|basis={index}")),
                Observable::Fidelity(_) => unreachable!("fidelity is not exposed over HTTP"),
            }
        }
        key
    }

    /// The content address of the job: the FxHash of
    /// [`canonical_key`](Self::canonical_key), rendered as the job id
    /// (`j` + 16 hex digits).
    pub fn content_address(&self) -> String {
        content_address_of(&self.canonical_key())
    }
}

/// [`JobInput::content_address`] over an already-built canonical key, so
/// hot paths that need both never serialize the key twice.
pub fn content_address_of(canonical_key: &str) -> String {
    let mut hasher = FxHasher::default();
    hasher.write(canonical_key.as_bytes());
    format!("j{:016x}", hasher.finish())
}

/// A total, injective text encoding of a circuit (gate kinds, qubits and
/// parameter bit patterns).
fn canonical_circuit(circuit: &Circuit) -> String {
    use qsdd_circuit::{Gate, Operation};
    let mut out = format!("q={};c={}", circuit.num_qubits(), circuit.num_clbits());
    let push_gate = |out: &mut String, gate: &Gate| {
        out.push_str(gate.name());
        let params: Vec<f64> = match *gate {
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Phase(t) => vec![t],
            Gate::U2(a, b) => vec![a, b],
            Gate::U3(a, b, c) => vec![a, b, c],
            _ => Vec::new(),
        };
        for p in params {
            out.push_str(&format!(":{:016x}", p.to_bits()));
        }
    };
    for op in circuit.operations() {
        out.push(';');
        match op {
            Operation::Gate {
                gate,
                target,
                controls,
            } => {
                push_gate(&mut out, gate);
                for c in controls {
                    out.push_str(&format!(",c{c}"));
                }
                out.push_str(&format!(",t{target}"));
            }
            Operation::Swap { a, b } => out.push_str(&format!("swap,{a},{b}")),
            Operation::Measure { qubit, clbit } => out.push_str(&format!("m,{qubit},{clbit}")),
            Operation::Reset { qubit } => out.push_str(&format!("r,{qubit}")),
            Operation::Barrier => out.push('|'),
        }
    }
    out
}

/// Decodes and validates a `POST /v1/jobs` body.
///
/// Unknown top-level fields are rejected (a typoed `"shot"` must not
/// silently run with the default), and every limit violation names the
/// offending value. The returned message is client-facing (`400`).
pub fn parse_job_request(body: &str) -> Result<JobInput, String> {
    let value = qsdd_json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
    let Value::Object(pairs) = &value else {
        return Err("request body must be a JSON object".to_string());
    };
    for (key, _) in pairs {
        if !matches!(
            key.as_str(),
            "circuit"
                | "shots"
                | "seed"
                | "backend"
                | "opt"
                | "dedup"
                | "noise"
                | "observables"
                | "weighted"
                | "intra_threads"
                | "timeout_ms"
        ) {
            return Err(format!("unknown field `{key}`"));
        }
    }

    let circuit = parse_circuit(value.get("circuit").ok_or("missing `circuit`")?)?;

    let shots = match value.get("shots") {
        None => 1000,
        Some(v) => v.as_u64().ok_or("`shots` must be a non-negative integer")? as usize,
    };
    if shots > MAX_SHOTS {
        return Err(format!("`shots` {shots} exceeds the limit of {MAX_SHOTS}"));
    }

    let seed = match value.get("seed") {
        None => 2021,
        Some(v) => v.as_u64().ok_or("`seed` must be a non-negative integer")?,
    };

    let backend = match value.get("backend") {
        None => BackendKind::DecisionDiagram,
        Some(v) => v
            .as_str()
            .ok_or("`backend` must be a string")?
            .parse::<BackendKind>()?,
    };
    let qubit_cap = match backend {
        BackendKind::DecisionDiagram => MAX_DD_QUBITS,
        BackendKind::Statevector => MAX_DENSE_QUBITS,
    };
    if circuit.num_qubits() > qubit_cap {
        return Err(format!(
            "{} qubits exceed the `{backend}` back-end's limit of {qubit_cap}",
            circuit.num_qubits()
        ));
    }

    let opt = match value.get("opt") {
        None => OptLevel::O0,
        Some(v) => match v.as_u64() {
            Some(0) => OptLevel::O0,
            Some(1) => OptLevel::O1,
            Some(2) => OptLevel::O2,
            _ => return Err("`opt` must be 0, 1 or 2".to_string()),
        },
    };

    let dedup = match value.get("dedup") {
        None => true,
        Some(v) => v.as_bool().ok_or("`dedup` must be a boolean")?,
    };

    let noise = parse_noise(value.get("noise"))?;
    let observables = parse_observables(value.get("observables"), &circuit)?;
    let weighted = parse_weighted(value.get("weighted"))?;
    if let Some(options) = &weighted {
        if shots == 0 && !options.exact_histogram {
            return Err("weighted jobs with `shots` 0 must set `exact_histogram` \
                 (there are no samples to synthesize counts from)"
                .to_string());
        }
    }

    let intra_threads = match value.get("intra_threads") {
        None => 1,
        Some(v) => {
            let width = v
                .as_u64()
                .ok_or("`intra_threads` must be a positive integer")?;
            if width == 0 {
                return Err("`intra_threads` must be at least 1".to_string());
            }
            if width > MAX_INTRA_THREADS {
                return Err(format!(
                    "`intra_threads` {width} exceeds the limit of {MAX_INTRA_THREADS}"
                ));
            }
            width as usize
        }
    };

    let timeout_ms = match value.get("timeout_ms") {
        None => None,
        Some(v) => {
            let ms = v
                .as_u64()
                .ok_or("`timeout_ms` must be a positive integer")?;
            if ms == 0 {
                return Err("`timeout_ms` must be at least 1".to_string());
            }
            Some(ms)
        }
    };

    let circuit_qasm = qasm::write_source(&circuit).ok();
    Ok(JobInput {
        circuit,
        circuit_qasm,
        backend,
        shots,
        seed,
        opt,
        dedup,
        noise,
        observables,
        weighted,
        intra_threads,
        timeout_ms,
    })
}

/// `"weighted": true` (default knobs), `false` (ordinary sampling) or an
/// object overriding `mass_cutoff` / `max_patterns` / `exact_histogram`.
fn parse_weighted(value: Option<&Value>) -> Result<Option<WeightedOptions>, String> {
    let Some(value) = value else {
        return Ok(None);
    };
    if let Some(flag) = value.as_bool() {
        return Ok(flag.then(WeightedOptions::default));
    }
    reject_unknown_keys(
        value,
        "weighted",
        &["mass_cutoff", "max_patterns", "exact_histogram"],
    )?;
    let mut options = WeightedOptions::default();
    if let Some(cutoff) = value.get("mass_cutoff") {
        let cutoff = cutoff.as_f64().ok_or("`mass_cutoff` must be a number")?;
        if !(cutoff > 0.0 && cutoff <= 1.0) {
            return Err(format!(
                "`mass_cutoff` must be a probability in (0, 1], got {cutoff}"
            ));
        }
        options.mass_cutoff = cutoff;
    }
    if let Some(max) = value.get("max_patterns") {
        let max = max
            .as_u64()
            .ok_or("`max_patterns` must be a non-negative integer")?;
        if max > MAX_WEIGHTED_PATTERNS {
            return Err(format!(
                "`max_patterns` {max} exceeds the limit of {MAX_WEIGHTED_PATTERNS}"
            ));
        }
        options.max_patterns = max;
    }
    if let Some(exact) = value.get("exact_histogram") {
        options.exact_histogram = exact
            .as_bool()
            .ok_or("`exact_histogram` must be a boolean")?;
    }
    Ok(Some(options))
}

/// `{"generator": "...", "qubits": N}` or `{"qasm": "..."}`.
///
/// The global qubit cap ([`MAX_DD_QUBITS`], the larger of the two back-end
/// limits) is enforced **before** any circuit is constructed: generator
/// builders and register broadcasts do work proportional to the qubit
/// count (quadratic for `qft`), so an unchecked count in a tiny request
/// could pin a handler thread or exhaust memory. The tighter dense-back-end
/// cap is checked afterwards by the caller.
fn parse_circuit(value: &Value) -> Result<Circuit, String> {
    reject_unknown_keys(value, "circuit", &["generator", "qubits", "qasm"])?;
    match (value.get("generator"), value.get("qasm")) {
        (Some(name), None) => {
            let name = name.as_str().ok_or("`generator` must be a string")?;
            let qubits = value
                .get("qubits")
                .and_then(Value::as_u64)
                .ok_or("generator circuits need a `qubits` integer")?;
            if qubits > MAX_DD_QUBITS as u64 {
                return Err(format!(
                    "{qubits} qubits exceed the limit of {MAX_DD_QUBITS}"
                ));
            }
            let qubits = qubits as usize;
            generators::by_name(name, qubits).ok_or_else(|| match generators::min_qubits(name) {
                Some(min) => {
                    format!("generator `{name}` needs at least {min} qubit(s), got {qubits}")
                }
                None => format!("unknown generator `{name}`"),
            })
        }
        (None, Some(source)) => {
            let source = source.as_str().ok_or("`qasm` must be a string")?;
            qasm::parse_source_with_limit(source, MAX_DD_QUBITS).map_err(|e| e.to_string())
        }
        _ => Err("`circuit` must carry exactly one of `generator` or `qasm`".to_string()),
    }
}

/// Rejects keys outside `known` so a typoed option cannot silently run
/// with its default (the same strictness the top-level fields get).
fn reject_unknown_keys(value: &Value, context: &str, known: &[&str]) -> Result<(), String> {
    let Value::Object(pairs) = value else {
        return Err(format!("`{context}` must be an object"));
    };
    for (key, _) in pairs {
        if !known.contains(&key.as_str()) {
            return Err(format!("unknown field `{key}` in `{context}`"));
        }
    }
    Ok(())
}

/// `{"noiseless": true}` or per-channel overrides of the paper defaults.
fn parse_noise(value: Option<&Value>) -> Result<NoiseModel, String> {
    let Some(value) = value else {
        return Ok(NoiseModel::paper_defaults());
    };
    reject_unknown_keys(
        value,
        "noise",
        &["noiseless", "depolarizing", "damping", "phaseflip"],
    )?;
    if let Some(noiseless) = value.get("noiseless") {
        // Strict like every other field: a non-boolean value must error,
        // not silently simulate with full noise.
        if noiseless.as_bool().ok_or("`noiseless` must be a boolean")? {
            return Ok(NoiseModel::noiseless());
        }
    }
    let defaults = NoiseModel::paper_defaults();
    let prob = |key: &str, default: f64| -> Result<f64, String> {
        match value.get(key) {
            None => Ok(default),
            Some(v) => {
                let p = v
                    .as_f64()
                    .ok_or_else(|| format!("`{key}` must be a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("`{key}` must be a probability in [0, 1], got {p}"));
                }
                Ok(p)
            }
        }
    };
    Ok(NoiseModel::new(
        prob("depolarizing", defaults.depolarizing_prob())?,
        prob("damping", defaults.amplitude_damping_prob())?,
        prob("phaseflip", defaults.phase_flip_prob())?,
    ))
}

/// `[{"qubit_excitation": q}, {"basis_probability": i}, ...]`.
fn parse_observables(value: Option<&Value>, circuit: &Circuit) -> Result<Vec<Observable>, String> {
    let Some(value) = value else {
        return Ok(Vec::new());
    };
    let entries = value.as_array().ok_or("`observables` must be an array")?;
    let mut observables = Vec::with_capacity(entries.len());
    for entry in entries {
        reject_unknown_keys(
            entry,
            "observables",
            &["qubit_excitation", "basis_probability"],
        )?;
        if !matches!(entry, Value::Object(pairs) if pairs.len() == 1) {
            return Err(
                "each observable must carry exactly one of `qubit_excitation` or \
                 `basis_probability`"
                    .to_string(),
            );
        }
        let observable = if let Some(q) = entry.get("qubit_excitation").and_then(Value::as_u64) {
            if q as usize >= circuit.num_qubits() {
                return Err(format!("observable qubit {q} is out of range"));
            }
            Observable::QubitExcitation(q as usize)
        } else if let Some(index) = entry.get("basis_probability").and_then(Value::as_u64) {
            if circuit.num_qubits() < 64 && index >= 1u64 << circuit.num_qubits() {
                return Err(format!("basis index {index} is out of range"));
            }
            Observable::BasisProbability(index)
        } else {
            return Err(
                "each observable must carry `qubit_excitation` or `basis_probability`".to_string(),
            );
        };
        observables.push(observable);
    }
    Ok(observables)
}

/// Renders the deterministic, cacheable result payload of a completed job.
///
/// The payload is the [`JobReport`] results object (exactly what
/// `qsdd_cli batch` writes per job, minus wall-clock timing) extended with
/// the dedup `live_shots` counter, the weighted `tail_shots` count and
/// exact `distribution` (weighted jobs only) and — when the job requested
/// observables — their estimates. Everything in it is a pure function of the canonical
/// key, which is what makes cached responses byte-identical to freshly
/// computed ones. In particular the report's `name` is the job's content
/// address, **not** the circuit's display name: equivalent submissions
/// (a generator spec vs. its inline-QASM spelling) share one cache cell,
/// so a name outside the canonical key would leak which spelling arrived
/// first.
pub fn result_payload(input: &JobInput, outcome: &StochasticOutcome) -> String {
    let report = JobReport {
        name: input.content_address(),
        backend: input.backend.to_string(),
        status: JobStatus::Completed,
        qubits: input.circuit.num_qubits(),
        shots_requested: input.shots as u64,
        shots_executed: outcome.shots as u64,
        early_stopped: false,
        counts: outcome
            .counts
            .iter()
            .map(|(&outcome, &count)| (outcome, count))
            .collect::<BTreeMap<u64, u64>>(),
        error_events: outcome.error_events,
        dd_nodes_avg: outcome.dd_nodes_avg,
        dd_nodes_peak: outcome.dd_nodes_peak,
        unique_trajectories: match (&outcome.weighted, &outcome.dedup) {
            (Some(stats), _) => stats.enumerated_trajectories + stats.tail_shots,
            (None, Some(stats)) => stats.unique_trajectories,
            (None, None) => outcome.shots as u64,
        },
        dedup_hit_rate: outcome.dedup_hit_rate(),
        covered_mass: outcome
            .weighted
            .as_ref()
            .map_or(0.0, |stats| stats.covered_mass),
        enumerated_trajectories: outcome
            .weighted
            .as_ref()
            .map_or(0, |stats| stats.enumerated_trajectories),
        wall_time: outcome.wall_time,
        // Timing fields never reach the payload (results_value drops them);
        // the per-stage breakdown lives in the job envelope instead.
        stage_timings: Default::default(),
    };
    let Value::Object(mut pairs) = report.results_value() else {
        unreachable!("results_value always builds an object");
    };
    pairs.push((
        "live_shots".to_string(),
        Value::from(outcome.dedup.map_or(0, |stats| stats.live_shots)),
    ));
    if let Some(stats) = &outcome.weighted {
        pairs.push(("tail_shots".to_string(), Value::from(stats.tail_shots)));
        // The exact weighted distribution (outcome -> probability), the
        // quantity the enumeration computed; counts above are its
        // largest-remainder rounding to integer shots.
        pairs.push((
            "distribution".to_string(),
            Value::Object(
                stats
                    .distribution
                    .iter()
                    .map(|&(outcome, probability)| (format!("{outcome}"), Value::from(probability)))
                    .collect(),
            ),
        ));
    }
    if !input.observables.is_empty() {
        pairs.push((
            "observable_estimates".to_string(),
            Value::Array(
                outcome
                    .observable_estimates
                    .iter()
                    .map(|&estimate| Value::from(estimate))
                    .collect(),
            ),
        ));
    }
    Value::Object(pairs).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ghz_request(extra: &str) -> String {
        format!(r#"{{"circuit":{{"generator":"ghz","qubits":5}},"shots":200,"seed":7{extra}}}"#)
    }

    #[test]
    fn parses_a_generator_submission_with_defaults() {
        let input = parse_job_request(&ghz_request("")).unwrap();
        assert_eq!(input.circuit.num_qubits(), 5);
        assert_eq!(input.shots, 200);
        assert_eq!(input.seed, 7);
        assert_eq!(input.backend, BackendKind::DecisionDiagram);
        assert_eq!(input.opt, OptLevel::O0);
        assert!(input.dedup);
        assert!(!input.noise.is_noiseless());
        assert!(input.observables.is_empty());
        assert!(input.circuit_qasm.is_some());
    }

    #[test]
    fn intra_threads_is_validated_and_never_reaches_the_cache_key() {
        // Default is serial.
        let serial = parse_job_request(&ghz_request("")).unwrap();
        assert_eq!(serial.intra_threads, 1);
        // An explicit width parses ...
        let wide = parse_job_request(&ghz_request(r#","intra_threads":8"#)).unwrap();
        assert_eq!(wide.intra_threads, 8);
        // ... but never changes what the job computes, so the canonical key
        // (and with it the job id and cache entry) must be identical.
        assert_eq!(serial.canonical_key(), wide.canonical_key());
        assert_eq!(serial.content_address(), wide.content_address());
        // Invalid widths are rejected with a pointed message.
        let zero = parse_job_request(&ghz_request(r#","intra_threads":0"#)).unwrap_err();
        assert!(zero.contains("at least 1"), "{zero}");
        let huge = parse_job_request(&ghz_request(r#","intra_threads":65"#)).unwrap_err();
        assert!(huge.contains("exceeds the limit"), "{huge}");
        let text = parse_job_request(&ghz_request(r#","intra_threads":"two""#)).unwrap_err();
        assert!(text.contains("positive integer"), "{text}");
    }

    #[test]
    fn parses_inline_qasm_and_noise_overrides() {
        let body = r#"{
            "circuit": {"qasm": "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0], q[1];\n"},
            "backend": "dense",
            "opt": 2,
            "dedup": false,
            "noise": {"depolarizing": 0.01, "phaseflip": 0},
            "observables": [{"qubit_excitation": 1}, {"basis_probability": 3}]
        }"#;
        let input = parse_job_request(body).unwrap();
        assert_eq!(input.circuit.num_qubits(), 2);
        assert_eq!(input.backend, BackendKind::Statevector);
        assert_eq!(input.opt, OptLevel::O2);
        assert!(!input.dedup);
        assert!((input.noise.depolarizing_prob() - 0.01).abs() < 1e-12);
        assert_eq!(input.noise.phase_flip_prob(), 0.0);
        // Unset channels keep the paper defaults.
        assert_eq!(
            input.noise.amplitude_damping_prob(),
            NoiseModel::paper_defaults().amplitude_damping_prob()
        );
        assert_eq!(input.observables.len(), 2);
    }

    #[test]
    fn rejects_invalid_submissions_with_messages() {
        let cases: &[(&str, &str)] = &[
            ("not json", "invalid JSON"),
            ("[]", "must be a JSON object"),
            ("{}", "missing `circuit`"),
            (r#"{"circuit":{}}"#, "exactly one of"),
            (
                r#"{"circuit":{"generator":"nope","qubits":4}}"#,
                "unknown generator",
            ),
            (
                r#"{"circuit":{"generator":"grover","qubits":1}}"#,
                "at least 2",
            ),
            (
                r#"{"circuit":{"qasm":"OPENQASM 2.0; qreg q[1]; boom q[0];"}}"#,
                "unknown gate",
            ),
            (
                r#"{"circuit":{"generator":"ghz","qubits":4},"shot":1}"#,
                "unknown field `shot`",
            ),
            (
                r#"{"circuit":{"generator":"ghz","qubits":4},"shots":99999999999}"#,
                "exceeds the limit",
            ),
            (
                r#"{"circuit":{"generator":"ghz","qubits":30},"backend":"dense"}"#,
                "limit of 24",
            ),
            // Oversized counts are rejected before any construction work
            // (a qft at this size would otherwise build ~5e13 gates).
            (
                r#"{"circuit":{"generator":"qft","qubits":9999999}}"#,
                "exceed the limit",
            ),
            (
                r#"{"circuit":{"qasm":"OPENQASM 2.0; qreg q[9999999]; h q;"}}"#,
                "limit of 63",
            ),
            (
                r#"{"circuit":{"generator":"ghz","qubits":4},"opt":9}"#,
                "`opt` must be",
            ),
            (
                r#"{"circuit":{"generator":"ghz","qubits":4},"noise":{"damping":1.5}}"#,
                "[0, 1]",
            ),
            (
                r#"{"circuit":{"generator":"ghz","qubits":4},"noise":{"noiseless":"true"}}"#,
                "`noiseless` must be a boolean",
            ),
            (
                r#"{"circuit":{"generator":"ghz","qubits":4},"observables":[{"qubit_excitation":9}]}"#,
                "out of range",
            ),
            (
                r#"{"circuit":{"generator":"ghz","qubits":4},"observables":[{"what":1}]}"#,
                "unknown field `what` in `observables`",
            ),
            // Nested objects are as strict as the top level: a typo must
            // not silently fall back to a default.
            (
                r#"{"circuit":{"generator":"ghz","qubits":4},"noise":{"depolarising":0.2}}"#,
                "unknown field `depolarising` in `noise`",
            ),
            (
                r#"{"circuit":{"generator":"ghz","qubits":4,"shot":5000}}"#,
                "unknown field `shot` in `circuit`",
            ),
            (
                r#"{"circuit":{"generator":"ghz","qubits":4},"observables":[{"qubit_excitation":1,"basis_probability":0}]}"#,
                "each observable",
            ),
            // Weighted knobs are validated as strictly as the rest.
            (
                r#"{"circuit":{"generator":"ghz","qubits":4},"weighted":"yes"}"#,
                "`weighted` must be an object",
            ),
            (
                r#"{"circuit":{"generator":"ghz","qubits":4},"weighted":{"cutoff":0.9}}"#,
                "unknown field `cutoff` in `weighted`",
            ),
            (
                r#"{"circuit":{"generator":"ghz","qubits":4},"weighted":{"mass_cutoff":0}}"#,
                "(0, 1]",
            ),
            (
                r#"{"circuit":{"generator":"ghz","qubits":4},"weighted":{"mass_cutoff":1.5}}"#,
                "(0, 1]",
            ),
            (
                r#"{"circuit":{"generator":"ghz","qubits":4},"weighted":{"max_patterns":100000000}}"#,
                "exceeds the limit of 100000",
            ),
            (
                r#"{"circuit":{"generator":"ghz","qubits":4},"weighted":{"exact_histogram":1}}"#,
                "`exact_histogram` must be a boolean",
            ),
            (
                r#"{"circuit":{"generator":"ghz","qubits":4},"shots":0,"weighted":true}"#,
                "must set `exact_histogram`",
            ),
        ];
        for (body, needle) in cases {
            let err = parse_job_request(body).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    /// Like [`ghz_request`] but without a fixed seed, so variant fields can
    /// override any knob without producing duplicate JSON keys.
    fn bare_request(extra: &str) -> String {
        format!(r#"{{"circuit":{{"generator":"ghz","qubits":5}},"shots":200{extra}}}"#)
    }

    #[test]
    fn canonical_keys_identify_identical_jobs() {
        let a = parse_job_request(&bare_request("")).unwrap();
        let b = parse_job_request(&bare_request("")).unwrap();
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.content_address(), b.content_address());
        // Every knob participates in the key.
        for extra in [
            r#","seed":8"#,
            r#","backend":"dense""#,
            r#","opt":1"#,
            r#","dedup":false"#,
            r#","noise":{"noiseless":true}"#,
            r#","observables":[{"qubit_excitation":0}]"#,
            r#","weighted":true"#,
            r#","weighted":{"mass_cutoff":0.5}"#,
            r#","weighted":{"max_patterns":16}"#,
            r#","weighted":{"exact_histogram":true}"#,
            r#","timeout_ms":5000"#,
        ] {
            let other = parse_job_request(&bare_request(extra)).unwrap();
            assert_ne!(
                a.canonical_key(),
                other.canonical_key(),
                "{extra} did not change the key"
            );
        }
        let other =
            parse_job_request(&bare_request("").replace(r#""qubits":5"#, r#""qubits":6"#)).unwrap();
        assert_ne!(a.canonical_key(), other.canonical_key());
        // `"weighted": false` means ordinary sampling, exactly like leaving
        // the field out — the two spellings share one cache cell.
        let disabled = parse_job_request(&bare_request(r#","weighted":false"#)).unwrap();
        assert_eq!(a.canonical_key(), disabled.canonical_key());
    }

    #[test]
    fn timeout_ms_is_validated_and_joins_the_key_only_when_present() {
        // Absent by default, and an absent timeout keeps the historical key
        // (no trailing `|timeout_ms=` marker) so persisted results stay
        // addressable across upgrades.
        let unbounded = parse_job_request(&bare_request("")).unwrap();
        assert_eq!(unbounded.timeout_ms, None);
        assert!(!unbounded.canonical_key().contains("timeout_ms"));
        // Present: parses and distinguishes the key per budget.
        let bounded = parse_job_request(&bare_request(r#","timeout_ms":250"#)).unwrap();
        assert_eq!(bounded.timeout_ms, Some(250));
        let other = parse_job_request(&bare_request(r#","timeout_ms":251"#)).unwrap();
        assert_ne!(bounded.canonical_key(), other.canonical_key());
        // Invalid budgets are rejected with pointed messages.
        let zero = parse_job_request(&bare_request(r#","timeout_ms":0"#)).unwrap_err();
        assert!(zero.contains("at least 1"), "{zero}");
        let text = parse_job_request(&bare_request(r#","timeout_ms":"soon""#)).unwrap_err();
        assert!(text.contains("positive integer"), "{text}");
    }

    #[test]
    fn weighted_submissions_parse_their_knobs() {
        let input = parse_job_request(&bare_request(r#","weighted":true"#)).unwrap();
        assert_eq!(input.weighted, Some(WeightedOptions::default()));
        let input = parse_job_request(&bare_request(
            r#","weighted":{"mass_cutoff":0.75,"max_patterns":32,"exact_histogram":true}"#,
        ))
        .unwrap();
        let options = input.weighted.unwrap();
        assert_eq!(options.mass_cutoff, 0.75);
        assert_eq!(options.max_patterns, 32);
        assert!(options.exact_histogram);
        // Zero shots are fine once the exact histogram is requested.
        let body = r#"{"circuit":{"generator":"ghz","qubits":5},"shots":0,"weighted":{"exact_histogram":true}}"#;
        assert!(parse_job_request(body).is_ok());
    }

    #[test]
    fn equivalent_spellings_share_a_canonical_key() {
        // A generator submission and the equivalent inline QASM collapse to
        // the same content address (same operations, same knobs).
        let generated = parse_job_request(&ghz_request("")).unwrap();
        let qasm = generated.circuit_qasm.clone().unwrap();
        let inline = parse_job_request(&format!(
            r#"{{"circuit":{{"qasm":{}}},"shots":200,"seed":7}}"#,
            Value::from(qasm.as_str())
        ))
        .unwrap();
        assert_eq!(generated.content_address(), inline.content_address());
    }

    #[test]
    fn result_payload_is_deterministic_and_parseable() {
        let input = parse_job_request(&ghz_request("")).unwrap();
        let engine = qsdd_core::ShotEngine::new(
            &input.circuit,
            input.backend,
            input.noise,
            input.seed,
            input.opt,
        );
        let mut ctx = engine.new_context();
        let outcome =
            qsdd_core::run_engine_in(&engine, &mut ctx, input.shots, &input.observables, true);
        let payload = result_payload(&input, &outcome);
        let again =
            qsdd_core::run_engine_in(&engine, &mut ctx, input.shots, &input.observables, true);
        assert_eq!(payload, result_payload(&input, &again));
        let parsed = qsdd_json::parse(&payload).unwrap();
        assert_eq!(
            parsed.get("shots_executed").and_then(Value::as_u64),
            Some(200)
        );
        assert!(
            parsed.get("wall_time_secs").is_none(),
            "timing must stay out"
        );
        // The JobReport core of the payload parses back through the batch
        // crate's own reader.
        assert!(JobReport::from_value(&parsed).is_ok());
    }
}
