//! The HTTP service: listener, router, worker pool and lifecycle.
//!
//! # Request lifecycle
//!
//! 1. A single **acceptor** thread owns the [`TcpListener`] and spawns one
//!    short-lived handler thread per connection (keep-alive: a handler
//!    serves every request of its connection).
//! 2. `POST /v1/jobs` parses and validates the body ([`crate::api`]), then
//!    resolves it against the content-addressed cache ([`crate::cache`]):
//!    a completed identical job answers from the cache, an in-flight one
//!    coalesces, and a genuinely new one is pushed onto the **bounded
//!    execution queue** — or rejected with `429` when the queue is full.
//! 3. **Worker** threads pop cells off the queue. Each worker owns one
//!    long-lived [`ExecContext`] for its entire lifetime and executes every
//!    job through [`run_engine_in`], so decision-diagram arenas, amplitude
//!    buffers and operator caches are rewound — never rebuilt — across
//!    requests (the PR-3 reuse path), and the PR-4 trajectory-dedup driver
//!    runs whenever the job allows it.
//! 4. Completion publishes the deterministic result payload to the cell
//!    (waking every coalesced submission at once) and registers it with the
//!    cache's LRU for eviction accounting.
//!
//! # Shutdown
//!
//! `POST /v1/shutdown` (or [`Server::shutdown`]) flips the shutdown flag,
//! wakes the workers (which drain the queue, then exit) and unblocks the
//! acceptor with a loopback wakeup connection. In-flight connections finish
//! their current request; new connections are no longer accepted.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qsdd_core::{run_engine_in_deadline, Deadline, ExecContext, ShotEngine, TimedOut};
use qsdd_json::Value;
use qsdd_telemetry::trace::{self, AttrValue, TraceStore, Tracer};
use qsdd_telemetry::{log_kv, Level, SpanTimer, Stage, StageTimings};

use crate::api::{self, JobInput};
use crate::cache::{CellState, ExecutionCell, ResultCache, Submission};
use crate::http::{self, DeadlineStream, Request, RequestError};
use crate::metrics::ServerMetrics;
use crate::store::{AppendOutcome, RestoredRecord, ResultStore};

/// Default total budget for reading one request (idle keep-alive waiting
/// and trickled bytes draw down the same clock — see
/// [`DeadlineStream`]), so neither a silent nor a slow-loris client can
/// hold a handler thread indefinitely.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(30);
/// Concurrent connections served at once; beyond this the acceptor answers
/// `503` inline instead of spawning a handler thread, so a connection
/// flood cannot exhaust OS threads (job load is bounded separately by the
/// queue depth).
const MAX_CONNECTIONS: usize = 1024;
/// How long [`Server::join`] waits for detached connection handlers.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(5);
/// Completed traces retained by the in-memory ring buffer behind
/// `GET /v1/jobs/<id>/trace`. Volatile by design — traces are a
/// diagnostics side channel and are re-recorded when a job re-executes.
const TRACE_CAPACITY: usize = 256;

/// Server configuration (every knob has a CLI flag on `qsdd_cli serve`).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Simulation worker threads; `0` uses all available cores.
    pub threads: usize,
    /// Completed results retained by the cache.
    pub cache_entries: usize,
    /// Maximum queued (not yet running) jobs before `429`.
    pub queue_depth: usize,
    /// Durable result store directory (`--store-dir`). `None` runs
    /// memory-only; `Some` persists every completed result and replays
    /// them into the cache at the next boot.
    pub store_dir: Option<String>,
    /// Total time a client gets to deliver one request before its
    /// connection is dropped (no CLI flag; tests shrink it to exercise the
    /// slow-loris defence quickly).
    pub request_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 0,
            cache_entries: 1024,
            queue_depth: 256,
            store_dir: None,
            request_timeout: REQUEST_TIMEOUT,
        }
    }
}

/// Monotonic service counters, all updated with relaxed atomics (the stats
/// endpoint is informational, not a synchronisation point).
#[derive(Debug, Default)]
struct Stats {
    http_requests: AtomicU64,
    /// Accepted submissions (new + coalesced + cache hits).
    jobs_accepted: AtomicU64,
    /// Submissions answered from a completed cache entry.
    cache_hits: AtomicU64,
    /// Submissions attached to an in-flight identical job.
    coalesced: AtomicU64,
    /// Submissions rejected with `429`.
    rejected: AtomicU64,
    /// Simulations actually started by workers.
    simulations: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
}

/// Everything the acceptor, handlers and workers share.
struct ServerState {
    addr: SocketAddr,
    workers: usize,
    queue_depth: usize,
    started: Instant,
    shutdown: AtomicBool,
    cache: ResultCache,
    queue: Mutex<std::collections::VecDeque<Arc<ExecutionCell>>>,
    queue_wake: Condvar,
    stats: Stats,
    active_connections: AtomicUsize,
    /// This instance's Prometheus registry (`GET /v1/metrics`); private per
    /// server so concurrent instances in one process never mix counters.
    metrics: ServerMetrics,
    /// The durable result store (`None` when running memory-only).
    store: Option<ResultStore>,
    /// Ring buffer of recently completed job traces (`GET /v1/traces`,
    /// `GET /v1/jobs/<id>/trace`). In-memory only; restarts lose it.
    traces: TraceStore,
    request_timeout: Duration,
}

impl ServerState {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running simulation service.
///
/// # Examples
///
/// ```
/// use qsdd_server::{Server, ServerConfig};
///
/// let server = Server::start(ServerConfig::default()).unwrap();
/// let addr = server.addr();
/// let (status, body) =
///     qsdd_server::client::request(addr, "GET", "/v1/healthz", None).unwrap();
/// assert_eq!(status, 200);
/// assert!(body.contains("\"ok\""));
/// server.shutdown_and_join();
/// ```
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, spawns the worker pool and the acceptor, and
    /// returns the running server.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        // Serving mode turns the process-global telemetry on: the per-stage
        // histograms and decision-diagram counters the simulation layers
        // publish become part of this server's `/v1/metrics` page.
        qsdd_telemetry::set_enabled(true);
        // Tracing defaults on while serving (coarse spans; `QSDD_TRACE=off`
        // or `QSDD_TRACE_SAMPLE=<n>` tune it down for high-QPS fleets).
        trace::configure_trace_from_env(true);
        // Arm the fault-injection seam from `QSDD_FAULTS` (a no-op outside
        // the robustness tests; the checks it leaves behind are two relaxed
        // atomic loads).
        qsdd_store::fault::init_from_env();
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = if config.threads > 0 {
            config.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        // Open the durable store (when configured) and replay every
        // surviving record into the cache as an already-completed entry, so
        // a restarted server answers previously finished jobs byte-for-byte
        // identically from the first request.
        let cache = ResultCache::new(config.cache_entries);
        let restore_started = Instant::now();
        let mut restored_records = 0usize;
        let store = config.store_dir.as_ref().map(|dir| {
            let (store, restored) = ResultStore::open(std::path::Path::new(dir));
            for record in restored {
                restored_records += 1;
                cache.restore_completed(
                    &record.id,
                    &record.key,
                    record.circuit_qasm,
                    Arc::new(record.payload),
                    record.timings,
                );
            }
            store
        });
        let restore_elapsed = restore_started.elapsed();
        let metrics = ServerMetrics::new();
        let traces = TraceStore::new(TRACE_CAPACITY);
        if let Some(store) = &store {
            metrics.store_records.set(store.records() as i64);
            metrics.store_degraded.set(store.is_degraded() as i64);
            metrics
                .store_restore_millis
                .set(restore_elapsed.as_millis() as i64);
            metrics.store_restored_records.set(restored_records as i64);
            // A synthetic boot trace makes the restore visible in the same
            // span vocabulary as live jobs (`GET /v1/jobs/boot/trace`).
            if trace::trace_enabled() {
                let boot = Tracer::forced_at("boot", "boot", restore_started);
                boot.record_span_at(
                    0,
                    "store_restore",
                    Duration::from_secs(0),
                    restore_elapsed,
                    vec![("records", AttrValue::U64(restored_records as u64))],
                );
                traces.insert(boot.finish("boot"));
            }
        }
        let state = Arc::new(ServerState {
            addr,
            workers,
            queue_depth: config.queue_depth.max(1),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            cache,
            queue: Mutex::new(std::collections::VecDeque::new()),
            queue_wake: Condvar::new(),
            stats: Stats::default(),
            active_connections: AtomicUsize::new(0),
            metrics,
            store,
            traces,
            request_timeout: config.request_timeout,
        });
        log_kv(
            Level::Info,
            "server.start",
            &[
                ("addr", &addr.to_string()),
                ("workers", &workers.to_string()),
            ],
        );

        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let state = Arc::clone(&state);
            worker_handles.push(std::thread::spawn(move || worker_loop(&state)));
        }
        let acceptor_state = Arc::clone(&state);
        let acceptor = std::thread::spawn(move || accept_loop(listener, &acceptor_state));

        Ok(Server {
            state,
            addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (the actual port when `addr` requested port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// One human-readable line describing the durable store's status —
    /// `None` when the server runs without one. Printed under the serve
    /// banner so restarts and degraded (memory-only) operation are visible
    /// without scraping `/v1/stats`.
    pub fn store_banner(&self) -> Option<String> {
        self.state.store.as_ref().map(|store| {
            if store.is_degraded() {
                format!(
                    "store: DEGRADED to memory-only ({} unusable)",
                    store.path().display()
                )
            } else {
                let boot = store.boot_report();
                format!(
                    "store: {} ({} records restored, {} bytes recovered)",
                    store.path().display(),
                    boot.records_restored,
                    boot.truncated_bytes,
                )
            }
        })
    }

    /// Initiates graceful shutdown: stop accepting, drain the queue, then
    /// let every thread exit. Idempotent; returns immediately.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.state);
    }

    /// Waits until the server has shut down (triggered by
    /// [`shutdown`](Self::shutdown) or `POST /v1/shutdown`) and all worker
    /// and acceptor threads have exited.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Connection handlers are detached; give in-flight ones a bounded
        // window to finish their current response.
        let deadline = Instant::now() + DRAIN_TIMEOUT;
        while self.state.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// [`shutdown`](Self::shutdown) followed by [`join`](Self::join).
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

/// Flips the shutdown flag, wakes the workers and unblocks the acceptor.
fn initiate_shutdown(state: &Arc<ServerState>) {
    if state.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    // Wake workers blocked on an empty queue (they drain, then exit).
    {
        let _queue = state.queue.lock().expect("queue lock");
        state.queue_wake.notify_all();
    }
    // Unblock the acceptor's `accept()` with a throwaway loopback
    // connection; it observes the flag and exits. A wildcard bind
    // (0.0.0.0 / [::]) is not a connectable destination everywhere, so
    // aim at the loopback of the same family instead.
    let mut target = state.addr;
    if target.ip().is_unspecified() {
        target.set_ip(match target {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect(target);
}

/// The acceptor: accepts until shutdown, one detached handler thread per
/// connection.
fn accept_loop(listener: TcpListener, state: &Arc<ServerState>) {
    for stream in listener.incoming() {
        if state.shutting_down() {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        if state.active_connections.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
            // Shed load without spawning: one thread per connection is the
            // model, so the connection count must be bounded.
            let _ = http::write_response(
                &mut stream,
                503,
                &error_body("connection limit reached, retry later"),
                false,
            );
            continue;
        }
        let state = Arc::clone(state);
        state.active_connections.fetch_add(1, Ordering::SeqCst);
        std::thread::spawn(move || {
            handle_connection(stream, &state);
            state.active_connections.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

/// Serves one connection's keep-alive session.
fn handle_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(DeadlineStream::new(read_half));
    let mut writer = stream;
    loop {
        // One *total* budget per request: a client that goes silent and one
        // that trickles a byte at a time (slow-loris) are both cut off at
        // the same deadline, instead of resetting a per-read timeout with
        // every byte.
        reader.get_mut().arm(state.request_timeout);
        let request = match http::read_request(&mut reader) {
            Ok(request) => request,
            Err(RequestError::Closed) | Err(RequestError::Io(_)) => return,
            Err(RequestError::Malformed(message)) => {
                let _ = http::write_response(&mut writer, 400, &error_body(&message), false);
                return;
            }
            Err(RequestError::BodyTooLarge(size)) => {
                let _ = http::write_response(
                    &mut writer,
                    413,
                    &error_body(&format!("request body of {size} bytes is too large")),
                    false,
                );
                return;
            }
        };
        state.stats.http_requests.fetch_add(1, Ordering::Relaxed);
        let (status, body) = route(state, &request);
        state.metrics.observe_request(&request.path, status);
        log_kv(
            Level::Debug,
            "server.request",
            &[
                ("method", &request.method),
                ("path", &request.path),
                ("status", &status.to_string()),
            ],
        );
        // Finish the session once shutdown started: handlers must not
        // outlive the acceptor indefinitely.
        let keep_alive = request.keep_alive && !state.shutting_down();
        // A rejected job is retryable as soon as a worker frees a queue
        // slot — tell clients how long to back off.
        let retry_after: [(&str, &str); 1] = [("retry-after", "1")];
        let extra_headers: &[(&str, &str)] = if status == 429 { &retry_after } else { &[] };
        let content_type = if request.path == "/v1/metrics" && status == 200 {
            "text/plain; version=0.0.4; charset=utf-8"
        } else {
            "application/json"
        };
        let written = http::write_response_with(
            &mut writer,
            status,
            content_type,
            extra_headers,
            &body,
            keep_alive,
        );
        if written.is_err() || !keep_alive {
            return;
        }
    }
}

/// Dispatches one request to its endpoint handler.
fn route(state: &Arc<ServerState>, request: &Request) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/healthz") => (200, r#"{"status":"ok"}"#.to_string()),
        ("GET", "/v1/stats") => (200, stats_body(state)),
        ("GET", "/v1/metrics") => (200, metrics_body(state)),
        ("POST", "/v1/jobs") => submit_job(state, &request.body),
        ("GET", "/v1/traces") => (200, traces_body(state)),
        // The `/trace` sub-resource must match before the generic job arm.
        ("GET", path) if path.starts_with("/v1/jobs/") && path.ends_with("/trace") => {
            job_trace(state, &path["/v1/jobs/".len()..path.len() - "/trace".len()])
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            job_status(state, &path["/v1/jobs/".len()..])
        }
        ("POST", "/v1/shutdown") => {
            initiate_shutdown(state);
            (200, r#"{"status":"shutting-down"}"#.to_string())
        }
        (
            _,
            "/v1/healthz" | "/v1/stats" | "/v1/metrics" | "/v1/jobs" | "/v1/shutdown"
            | "/v1/traces",
        ) => (405, error_body("method not allowed")),
        (_, path) if path.starts_with("/v1/jobs/") => (405, error_body("method not allowed")),
        _ => (404, error_body("no such endpoint")),
    }
}

/// `POST /v1/jobs`: validate, content-address, coalesce or enqueue.
fn submit_job(state: &Arc<ServerState>, body: &str) -> (u16, String) {
    if state.shutting_down() {
        return (503, error_body("server is shutting down"));
    }
    let parse_started = Instant::now();
    let input = match api::parse_job_request(body) {
        Ok(input) => input,
        Err(message) => return (400, error_body(&message)),
    };
    let parse_time = parse_started.elapsed();
    let lookup = SpanTimer::start(Stage::CacheLookup);
    let lookup_started = Instant::now();
    let body_bytes = body.len() as u64;
    let submission = state.cache.submit_with(input, |cell| {
        // Stamp the parse time before the cell becomes visible to a
        // worker: a fast worker can complete (and persist) the job before
        // this thread runs again, and a record written without the parse
        // stage would make the restored envelope differ from the live one.
        cell.record_stage(Stage::Parse, parse_time);
        // Start the job's trace (gated + sampled) with the request arrival
        // as its epoch, so the parse span begins at offset zero. The
        // handler-side stages are recorded here and the tracer rides the
        // cell to the worker — all before the cell is queued, so the
        // worker can never pop it tracer-less.
        if let Some(tracer) = Tracer::start_at(&cell.id, &cell.id, parse_started) {
            tracer.record_span_at(
                0,
                "parse",
                Duration::from_secs(0),
                parse_time,
                vec![("bytes", AttrValue::U64(body_bytes))],
            );
            tracer.record_span_at(
                0,
                "cache_lookup",
                lookup_started.saturating_duration_since(parse_started),
                parse_started.elapsed(),
                Vec::new(),
            );
            cell.attach_tracer(tracer);
        }
        let mut queue = state.queue.lock().expect("queue lock");
        // Re-check shutdown under the queue lock: workers only observe the
        // flag while holding it, so a cell enqueued here is guaranteed to
        // be drained — a check outside the lock could accept a job after
        // the last worker already found the queue empty and exited.
        if state.shutting_down() || queue.len() >= state.queue_depth {
            return false;
        }
        queue.push_back(Arc::clone(cell));
        state.metrics.queue_depth.set(queue.len() as i64);
        state.queue_wake.notify_one();
        true
    });
    lookup.stop();
    let stats = &state.stats;
    let metrics = &state.metrics;
    match submission {
        Submission::New(cell) => {
            stats.jobs_accepted.fetch_add(1, Ordering::Relaxed);
            metrics.cache_misses.inc();
            log_kv(Level::Info, "server.accept", &[("id", &cell.id)]);
            (202, submission_body(&cell, false))
        }
        Submission::Coalesced(cell) => {
            stats.jobs_accepted.fetch_add(1, Ordering::Relaxed);
            stats.coalesced.fetch_add(1, Ordering::Relaxed);
            metrics.coalesced.inc();
            (202, submission_body(&cell, false))
        }
        Submission::Hit(cell) => {
            stats.jobs_accepted.fetch_add(1, Ordering::Relaxed);
            stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            metrics.cache_hits.inc();
            (200, submission_body(&cell, true))
        }
        Submission::Rejected if state.shutting_down() => {
            (503, error_body("server is shutting down"))
        }
        Submission::Rejected => {
            stats.rejected.fetch_add(1, Ordering::Relaxed);
            metrics.rejected.inc();
            log_kv(Level::Warn, "server.reject", &[("reason", "queue_full")]);
            (429, error_body("job queue is full, retry later"))
        }
    }
}

/// The `POST /v1/jobs` response body.
fn submission_body(cell: &ExecutionCell, cached: bool) -> String {
    format!(
        r#"{{"id":{},"status":{},"cached":{cached}}}"#,
        Value::from(cell.id.as_str()),
        Value::from(cell.state().status()),
    )
}

/// `GET /v1/jobs/<id>`: the job envelope around the cached result payload.
fn job_status(state: &Arc<ServerState>, id: &str) -> (u16, String) {
    let Some(cell) = state.cache.get(id) else {
        return (
            404,
            error_body(&format!("no job `{id}` (unknown or evicted)")),
        );
    };
    // One state snapshot for the whole envelope: reading twice could race
    // with the worker's completion and emit "status":"running" next to a
    // "result" field.
    let snapshot = cell.state();
    let mut body = format!(
        r#"{{"id":{},"status":{}"#,
        Value::from(cell.id.as_str()),
        Value::from(snapshot.status()),
    );
    if let Some(qasm) = cell.circuit_qasm() {
        body.push_str(&format!(r#","circuit_qasm":{}"#, Value::from(qasm)));
    }
    // The stage breakdown accumulated so far (parse and queue wait while
    // pending; the full simulation stages once terminal). Lives in the
    // envelope, never in the cached result payload, which must stay a pure
    // function of the job's canonical key.
    body.push_str(&format!(
        r#","timings":{}"#,
        timings_json(&cell.stage_timings())
    ));
    match snapshot {
        CellState::Done(payload) => {
            body.push_str(",\"result\":");
            body.push_str(&payload);
        }
        CellState::Failed(message) => {
            body.push_str(&format!(r#","error":{}"#, Value::from(message.as_str())));
        }
        _ => {}
    }
    body.push('}');
    (200, body)
}

/// `GET /v1/jobs/<id>/trace`: the job's recorded span tree. Served from
/// the volatile ring buffer — a restart clears it until the job
/// re-executes (results, by contrast, survive via the durable store).
fn job_trace(state: &Arc<ServerState>, id: &str) -> (u16, String) {
    match state.traces.get(id) {
        Some(trace) => (200, trace.to_json().to_string()),
        None => (
            404,
            error_body(&format!(
                "no trace for job `{id}` (tracing off, sampled out, \
                 not yet executed, or evicted from the ring buffer)"
            )),
        ),
    }
}

/// `GET /v1/traces`: an index of resident traces, most recent first.
fn traces_body(state: &Arc<ServerState>) -> String {
    let traces = state.traces.recent();
    Value::object(vec![
        ("count".to_string(), Value::from(traces.len())),
        (
            "traces".to_string(),
            Value::Array(
                traces
                    .iter()
                    .map(|trace| {
                        Value::object(vec![
                            ("trace_id".to_string(), Value::from(trace.trace_id.as_str())),
                            ("job_id".to_string(), Value::from(trace.job_id.as_str())),
                            ("duration_ns".to_string(), Value::from(trace.duration_ns())),
                            ("span_count".to_string(), Value::from(trace.spans.len())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .to_string()
}

/// `GET /v1/stats`.
fn stats_body(state: &Arc<ServerState>) -> String {
    let stats = &state.stats;
    let accepted = stats.jobs_accepted.load(Ordering::Relaxed);
    let served_from_cache =
        stats.cache_hits.load(Ordering::Relaxed) + stats.coalesced.load(Ordering::Relaxed);
    let hit_rate = if accepted == 0 {
        0.0
    } else {
        served_from_cache as f64 / accepted as f64
    };
    let queue_len = state.queue.lock().expect("queue lock").len();
    Value::object(vec![
        (
            "uptime_secs".to_string(),
            Value::from(state.started.elapsed().as_secs_f64()),
        ),
        ("workers".to_string(), Value::from(state.workers)),
        ("queue_len".to_string(), Value::from(queue_len)),
        ("queue_depth".to_string(), Value::from(state.queue_depth)),
        (
            "cache_entries".to_string(),
            Value::from(state.cache.completed_entries()),
        ),
        (
            "http_requests".to_string(),
            Value::from(stats.http_requests.load(Ordering::Relaxed)),
        ),
        ("jobs_accepted".to_string(), Value::from(accepted)),
        (
            "cache_hits".to_string(),
            Value::from(stats.cache_hits.load(Ordering::Relaxed)),
        ),
        (
            "coalesced".to_string(),
            Value::from(stats.coalesced.load(Ordering::Relaxed)),
        ),
        ("cache_hit_rate".to_string(), Value::from(hit_rate)),
        (
            "rejected".to_string(),
            Value::from(stats.rejected.load(Ordering::Relaxed)),
        ),
        (
            // The explicit name clients alert on; `rejected` above is the
            // original spelling, kept for compatibility.
            "rejected_jobs".to_string(),
            Value::from(stats.rejected.load(Ordering::Relaxed)),
        ),
        (
            "simulations".to_string(),
            Value::from(stats.simulations.load(Ordering::Relaxed)),
        ),
        (
            "jobs_completed".to_string(),
            Value::from(stats.jobs_completed.load(Ordering::Relaxed)),
        ),
        (
            "jobs_failed".to_string(),
            Value::from(stats.jobs_failed.load(Ordering::Relaxed)),
        ),
        (
            "shutting_down".to_string(),
            Value::from(state.shutting_down()),
        ),
        ("store".to_string(), store_stats(state)),
    ])
    .to_string()
}

/// The `store` object inside `/v1/stats` (`null` when memory-only by
/// configuration; `degraded: true` when memory-only by disk failure).
fn store_stats(state: &Arc<ServerState>) -> Value {
    let Some(store) = &state.store else {
        return Value::Null;
    };
    let boot = store.boot_report();
    Value::object(vec![
        (
            "path".to_string(),
            Value::from(store.path().display().to_string().as_str()),
        ),
        ("records".to_string(), Value::from(store.records())),
        ("writes".to_string(), Value::from(store.writes())),
        (
            "write_failures".to_string(),
            Value::from(store.write_failures()),
        ),
        ("degraded".to_string(), Value::from(store.is_degraded())),
        (
            "restored_at_boot".to_string(),
            Value::from(boot.records_restored),
        ),
        (
            "truncated_bytes_at_boot".to_string(),
            Value::from(boot.truncated_bytes),
        ),
        ("compacted_at_boot".to_string(), Value::from(boot.compacted)),
    ])
}

/// `GET /v1/metrics`: Prometheus text — this instance's registry (request,
/// cache and queue series) followed by the process-global one (stage
/// histograms, decision-diagram table traffic). The name sets are disjoint.
fn metrics_body(state: &Arc<ServerState>) -> String {
    // Refresh the depth gauge at scrape time so an idle server reports the
    // true (empty) queue even though no push/pop sampled it recently.
    let queue_len = state.queue.lock().expect("queue lock").len();
    state.metrics.queue_depth.set(queue_len as i64);
    let mut page = state.metrics.render();
    page.push_str(&qsdd_telemetry::global().render());
    page
}

/// The job envelope's `timings` object: every pipeline stage in order (in
/// seconds, zero when the stage did not run) plus the total.
fn timings_json(timings: &StageTimings) -> String {
    let mut fields: Vec<(String, Value)> = timings
        .iter()
        .map(|(stage, elapsed)| (stage.name().to_string(), Value::from(elapsed.as_secs_f64())))
        .collect();
    fields.push((
        "total".to_string(),
        Value::from(timings.total().as_secs_f64()),
    ));
    Value::object(fields).to_string()
}

fn error_body(message: &str) -> String {
    format!(r#"{{"error":{}}}"#, Value::from(message))
}

/// One worker: pop → compile (once per job) → execute in the worker's
/// long-lived context → publish.
fn worker_loop(state: &Arc<ServerState>) {
    // The worker's whole point: this context lives as long as the worker,
    // so every job it executes reuses the warmed per-backend-kind state.
    let mut ctx = ExecContext::new();
    loop {
        let cell = {
            let mut queue = state.queue.lock().expect("queue lock");
            loop {
                if let Some(cell) = queue.pop_front() {
                    state.metrics.queue_depth.set(queue.len() as i64);
                    break Some(cell);
                }
                if state.shutting_down() {
                    break None;
                }
                queue = state.queue_wake.wait(queue).expect("queue lock");
            }
        };
        let Some(cell) = cell else { return };
        let waited = cell.mark_running();
        state.metrics.queue_wait.observe_duration(waited);
        state.stats.simulations.fetch_add(1, Ordering::Relaxed);
        // Take the job's tracer (attached at submission): record the queue
        // wait retroactively, then trace the execution on lane 0 of this
        // worker's thread. `finish` merges and publishes the span tree.
        let tracer = cell.take_tracer();
        if let Some(tracer) = &tracer {
            let picked_up = tracer.elapsed();
            tracer.record_span_at(
                0,
                "queue_wait",
                picked_up.saturating_sub(waited),
                picked_up,
                Vec::new(),
            );
        }
        {
            let _traced = tracer.as_ref().map(|tracer| tracer.install(0));
            execute_job(state, &cell, &mut ctx);
        }
        if let Some(tracer) = tracer {
            state.traces.insert(tracer.finish("job"));
        }
    }
}

/// Runs one job to completion and publishes the result (or failure) to
/// its cell.
///
/// A panic anywhere in compilation or execution must not take the worker
/// down with the job: the cell would be stuck in `running` forever (it is
/// exempt from LRU eviction while in flight), every coalesced submitter
/// would poll a job that can never finish, and the pool would shrink by
/// one worker for the server's lifetime. So the simulation runs under
/// `catch_unwind`, a panic publishes [`CellState::Failed`], and the
/// worker's context — whose rewind invariants cannot be trusted after an
/// unwind — is replaced with a fresh one.
fn execute_job(state: &Arc<ServerState>, cell: &Arc<ExecutionCell>, ctx: &mut ExecContext) {
    let input: &JobInput = cell
        .input()
        .expect("queued cells always carry their input (only restored cells do not)");
    // Per-job intra-shot width, clamped against the worker-pool size so a
    // fully loaded pool never oversubscribes the machine. The knob never
    // affects the payload (bit-identical by the `qsdd_dd` speculation
    // contract), which is what keeps it safely outside the cache key.
    ctx.set_intra_threads(qsdd_core::resolve_intra_threads(
        input.intra_threads,
        state.workers,
    ));
    // The job's deadline (when it set one). Cancellation is cooperative —
    // the drivers check at chunk and trajectory boundaries — so the context
    // stays reusable after a timeout, unlike after a panic.
    let deadline = match input.timeout_ms {
        Some(ms) => Deadline::from_millis(ms),
        None => Deadline::unbounded(),
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
        || -> Result<(String, StageTimings), TimedOut> {
            if qsdd_store::fault::should_panic_worker() {
                panic!("injected worker fault (QSDD_FAULTS worker_panic)");
            }
            let _execute = trace::span("execute");
            trace::attr("shots", input.shots as u64);
            let engine = {
                let _compile = trace::span("compile");
                ShotEngine::new(
                    &input.circuit,
                    input.backend,
                    input.noise,
                    input.seed,
                    input.opt,
                )
            };
            let outcome = match &input.weighted {
                Some(options) => qsdd_core::run_engine_weighted_in_deadline(
                    &engine,
                    ctx,
                    input.shots,
                    &input.observables,
                    options,
                    &deadline,
                )?,
                None => run_engine_in_deadline(
                    &engine,
                    ctx,
                    input.shots,
                    &input.observables,
                    input.dedup,
                    &deadline,
                )?,
            };
            // The payload is timing-free by contract (byte-identical cache
            // serving); the breakdown rides alongside into the job envelope.
            Ok((api::result_payload(input, &outcome), outcome.stage_timings))
        },
    ));
    match result {
        Ok(Ok((payload, timings))) => {
            cell.merge_timings(&timings);
            let payload = Arc::new(payload);
            cell.complete(Arc::clone(&payload));
            state.stats.jobs_completed.fetch_add(1, Ordering::Relaxed);
            state.metrics.jobs_completed.inc();
            state.metrics.job_duration.observe_duration(cell.age());
            log_kv(
                Level::Info,
                "server.complete",
                &[
                    ("id", &cell.id),
                    ("secs", &format!("{:.6}", cell.age().as_secs_f64())),
                ],
            );
            // Persist behind the cache: the client is already served from
            // memory, so store trouble can only cost durability.
            if let Some(store) = &state.store {
                let record = RestoredRecord {
                    id: cell.id.clone(),
                    key: cell.key.clone(),
                    circuit_qasm: input.circuit_qasm.clone(),
                    payload: (*payload).clone(),
                    // The merged breakdown, so a restored envelope reports
                    // the same timings the original run did.
                    timings: cell.stage_timings(),
                };
                let append_span = trace::span("store_append");
                let append_started = Instant::now();
                let outcome = store.record_completion(&record);
                state
                    .metrics
                    .store_append
                    .observe_duration(append_started.elapsed());
                drop(append_span);
                match outcome {
                    AppendOutcome::Written => {
                        state.metrics.store_writes.inc();
                        state.metrics.store_records.set(store.records() as i64);
                    }
                    AppendOutcome::Failed => {
                        state.metrics.store_write_failures.inc();
                        state.metrics.store_degraded.set(store.is_degraded() as i64);
                    }
                    AppendOutcome::Skipped => {}
                }
            }
        }
        Ok(Err(TimedOut)) => {
            let budget = input.timeout_ms.unwrap_or(0);
            cell.fail(format!("timed_out: exceeded the {budget} ms deadline"));
            state.stats.jobs_failed.fetch_add(1, Ordering::Relaxed);
            state.metrics.jobs_failed.inc();
            state.metrics.jobs_timed_out.inc();
            log_kv(
                Level::Warn,
                "server.job_timed_out",
                &[("id", &cell.id), ("timeout_ms", &budget.to_string())],
            );
        }
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "simulation panicked".to_string());
            cell.fail(format!("simulation failed: {message}"));
            state.stats.jobs_failed.fetch_add(1, Ordering::Relaxed);
            state.metrics.jobs_failed.inc();
            log_kv(
                Level::Error,
                "server.job_failed",
                &[("id", &cell.id), ("message", &message)],
            );
            *ctx = ExecContext::new();
        }
    }
    let evicted = state.cache.mark_terminal(&cell.id);
    if evicted > 0 {
        state.metrics.evictions.add(evicted as u64);
    }
}

/// Runs the server until shutdown is requested (via `POST /v1/shutdown` or
/// a [`Server::shutdown`] call from another thread), logging the bound
/// address to `out` first. This is the `qsdd_cli serve` entry point.
pub fn serve_forever(config: ServerConfig, out: &mut impl Write) -> io::Result<()> {
    let server = Server::start(config)?;
    writeln!(out, "qsdd-server listening on http://{}", server.addr())?;
    writeln!(
        out,
        "endpoints: POST /v1/jobs, GET /v1/jobs/<id>, GET /v1/jobs/<id>/trace, GET /v1/traces, GET /v1/healthz, GET /v1/stats, GET /v1/metrics, POST /v1/shutdown"
    )?;
    if let Some(line) = server.store_banner() {
        writeln!(out, "{line}")?;
    }
    out.flush()?;
    server.join();
    Ok(())
}
