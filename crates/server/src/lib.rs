//! # qsdd-server — a dependency-free HTTP simulation service
//!
//! The ROADMAP's north star is a service "serving heavy traffic from
//! millions of users"; this crate is that deployment shape. It wraps the
//! stochastic simulator in a long-lived HTTP/1.1 + JSON job service,
//! hand-rolled on [`std::net`] (the build environment is offline, so there
//! is no hyper, no serde — the JSON layer is the shared [`qsdd_json`]
//! crate also backing `qsdd-batch`'s reports):
//!
//! * **[`http`]** — minimal HTTP/1.1 request parsing and response writing
//!   (keep-alive, `Content-Length` framing, size caps).
//! * **[`api`]** — the job schema: submissions name a circuit (built-in
//!   generator or inline OpenQASM 2.0), noise model, seed, shots, back-end,
//!   optimization level, dedup flag and observables; results are shaped
//!   like `qsdd-batch`'s per-job reports.
//! * **[`cache`]** — the content-addressed result cache: jobs are
//!   identified by the FxHash of their canonical key, so identical
//!   submissions share one cell — concurrent ones **coalesce** onto a
//!   single simulation and later ones are served the byte-identical cached
//!   payload.
//! * **[`server`]** — listener, router and the worker pool. Each worker
//!   owns one long-lived [`ExecContext`](qsdd_core::ExecContext) reused
//!   across every job it executes (the compile/execute split of
//!   `qsdd-core` amortises across requests) and runs the
//!   trajectory-deduplicating driver whenever the job supports it.
//! * **[`store`]** — the durable result store: completed results are
//!   appended to a checksummed on-disk log (`qsdd-store`) *behind* the
//!   cache and replayed into it at the next boot, so a restart — including
//!   `kill -9` — never changes the bytes a job id answers with. Disk
//!   trouble degrades the server to memory-only; it never fails jobs.
//! * **[`client`]** — a small blocking HTTP client for loopback tests,
//!   the CI smoke check and the benchmark load generator (including
//!   [`client::with_retry`], the bounded-backoff retry helper).
//!
//! Determinism is the backbone: a job's result payload is a pure function
//! of its canonical key (seeded shots, single-context execution, ordered
//! JSON emission), which is what makes cache entries safe to serve
//! byte-for-byte and lets the integration suite diff HTTP responses
//! against direct library runs.
//!
//! ## Quick start
//!
//! ```
//! use qsdd_server::{client, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! let (status, body) = client::request(
//!     server.addr(),
//!     "POST",
//!     "/v1/jobs",
//!     Some(r#"{"circuit":{"generator":"ghz","qubits":4},"shots":64,"seed":1}"#),
//! )
//! .unwrap();
//! assert_eq!(status, 202);
//! assert!(body.contains("\"id\""));
//! server.shutdown_and_join();
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod cache;
pub mod client;
pub mod http;
mod metrics;
pub mod server;
pub mod store;

pub use api::{parse_job_request, result_payload, JobInput};
pub use cache::{CellState, ExecutionCell, ResultCache, Submission};
pub use server::{serve_forever, Server, ServerConfig};
