//! A minimal hand-rolled JSON value type, writer and parser.
//!
//! The build environment is offline, so the workspace cannot depend on
//! `serde`; this crate implements exactly the JSON subset the workspace's
//! serialisation surfaces need — objects, arrays, strings, finite numbers,
//! booleans and `null` — in a few hundred lines. Objects preserve insertion
//! order so that emission is byte-deterministic, which both the batch
//! report's cross-thread-count byte comparisons and the HTTP server's
//! content-addressed result cache rely on.
//!
//! The crate started life as `qsdd-batch`'s private report serialiser and
//! was extracted once `qsdd-server` needed the same writer/parser for its
//! request and response bodies; `qsdd_batch::json` remains available as a
//! re-export.
//!
//! ```
//! use qsdd_json::{parse, Value};
//!
//! let value = Value::object(vec![
//!     ("name".to_string(), Value::String("ghz".to_string())),
//!     ("shots".to_string(), Value::from(1024u64)),
//! ]);
//! let text = value.to_string();
//! assert_eq!(text, r#"{"name":"ghz","shots":1024}"#);
//! let back = parse(&text).unwrap();
//! assert_eq!(back.get("shots").and_then(Value::as_u64), Some(1024));
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact up to `u64::MAX` (measurement
    /// outcomes of 64-qubit circuits overflow an `f64`'s 53-bit mantissa).
    Uint(u64),
    /// Any other finite number.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved on write.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from ordered key/value pairs.
    pub fn object(pairs: Vec<(String, Value)>) -> Value {
        Value::Object(pairs)
    }

    /// Looks up a key in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite float, if it is a number (integers convert,
    /// possibly rounding above 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Uint(n) => Some(*n as f64),
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer: exact for [`Value::Uint`], and for
    /// [`Value::Number`]s that are whole, non-negative and small enough to
    /// be exact in an `f64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Uint(n) => Some(*n),
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Uint(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Uint(n as u64)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl fmt::Display for Value {
    /// Writes compact JSON; use [`Value::write_pretty`] for indented output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Uint(n) => write!(f, "{n}"),
            Value::Number(n) => write_number(f, *n),
            Value::String(s) => write_escaped(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(pairs) => {
                write!(f, "{{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl Value {
    /// Writes the value as indented, human-friendly JSON.
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner = "  ".repeat(indent + 1);
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&inner);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&inner);
                    out.push_str(&Value::String(key.clone()).to_string());
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&pad);
                out.push('}');
            }
            other => out.push_str(&other.to_string()),
        }
    }

    /// The value as an indented JSON document (with a trailing newline).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }
}

fn write_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        write!(f, "{}", n as i64)
    } else {
        // `{}` on f64 prints the shortest representation that round-trips.
        write!(f, "{n}")
    }
}

fn write_escaped(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A JSON parse error with a byte offset into the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting the parser accepts.
///
/// The parser is recursive-descent, so unbounded nesting would let a tiny
/// hostile document (`[[[[…`) overflow the thread stack — a fatal abort,
/// not a catchable panic. No legitimate workspace document nests deeper
/// than a handful of levels.
pub const MAX_DEPTH: usize = 128;

/// Parses a JSON document into a [`Value`].
///
/// Accepts exactly the subset this module writes (no comments, no trailing
/// commas); numbers are parsed as `f64`. Containers may nest at most
/// [`MAX_DEPTH`] levels deep — beyond that the document is rejected with a
/// parse error instead of risking a stack overflow.
pub fn parse(source: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: source.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        // Plain non-negative integer tokens stay exact (outcome indices of
        // 64-qubit circuits exceed an f64's 53-bit mantissa).
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Uint(n));
            }
        }
        let n: f64 = text
            .parse()
            .map_err(|_| self.error(&format!("invalid number `{text}`")))?;
        if !n.is_finite() {
            return Err(self.error("non-finite number"));
        }
        Ok(Value::Number(n))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogates are not needed by our own writer.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar value.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let text = r#"{"a":[1,2.5,-3],"b":{"nested":true,"s":"he\"llo\n"},"c":null}"#;
        let value = parse(text).unwrap();
        assert_eq!(value.to_string(), text);
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            value.get("b").unwrap().get("s").unwrap().as_str(),
            Some("he\"llo\n")
        );
        assert_eq!(value.get("c"), Some(&Value::Null));
    }

    #[test]
    fn pretty_output_parses_back() {
        let value = Value::object(vec![
            ("jobs".to_string(), Value::Array(vec![Value::from(1u64)])),
            ("empty".to_string(), Value::Array(Vec::new())),
        ]);
        let pretty = value.to_pretty_string();
        assert_eq!(parse(&pretty).unwrap(), value);
    }

    #[test]
    fn integers_are_written_without_fraction() {
        assert_eq!(Value::from(5u64).to_string(), "5");
        assert_eq!(Value::from(0.25f64).to_string(), "0.25");
        // Large magnitudes stay exact through a write/parse round trip.
        let big = Value::from(1e300);
        assert_eq!(parse(&big.to_string()).unwrap(), big);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"abc"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_pathological_nesting_instead_of_overflowing_the_stack() {
        // A recursive-descent parser without a depth cap aborts the whole
        // process on `[[[[…` — fatal for a server parsing untrusted bodies.
        let deep = "[".repeat(4_000_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let mixed = format!("{}{}", "{\"k\":[".repeat(100), "]}".repeat(100));
        assert!(parse(&mixed).unwrap_err().message.contains("nesting"));
        // Reasonable nesting is untouched, and depth resets between
        // siblings (the counter decrements on container exit).
        let wide = format!("[{}]", vec!["[[[]]]"; 64].join(","));
        assert!(parse(&wide).is_ok());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn large_u64_integers_stay_exact_through_round_trips() {
        // A 64-qubit all-ones outcome exceeds the f64 mantissa; the Uint
        // variant must carry it bit-exactly through write + parse.
        for big in [u64::MAX, u64::MAX - 1, (1u64 << 60) - 1, 1u64 << 53] {
            let value = Value::from(big);
            assert_eq!(value.to_string(), big.to_string());
            let back = parse(&value.to_string()).unwrap();
            assert_eq!(back.as_u64(), Some(big));
        }
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Value::Number(3.5).as_u64(), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
        assert_eq!(Value::Number(7.0).as_u64(), Some(7));
        assert_eq!(Value::Bool(true).as_u64(), None);
    }
}
