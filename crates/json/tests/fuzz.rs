//! Fuzz-style property coverage for the JSON writer/parser pair.
//!
//! Two properties, both load-bearing for the server's cache (result payloads
//! are compared byte-for-byte after a write/parse round trip):
//!
//! * **Round trip** — any tree of [`Value`]s survives `to_string` → `parse`
//!   up to the documented number canonicalisation (whole non-negative
//!   floats print as integer tokens and re-parse as [`Value::Uint`]).
//! * **No panics** — random byte-level mutations of valid documents (bit
//!   flips, insertions, deletions) either parse or return a [`ParseError`];
//!   the parser never panics, hangs, or overflows the stack.

use proptest::prelude::*;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use qsdd_json::{parse, Value, MAX_DEPTH};
use rand::Rng;

/// Characters the string generator draws from: JSON syntax, escapes,
/// controls, multi-byte UTF-8 — everything the writer must escape or pass
/// through and the parser must take back.
const PALETTE: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{1f}', '{', '}', '[', ']',
    ':', ',', '-', '.', 'e', 'é', 'Ω', '中', '🦀', '\u{7f}', '\u{80}', '\u{fffd}',
];

fn gen_string(rng: &mut TestRng) -> String {
    let len = rng.gen_range(0..12usize);
    (0..len)
        .map(|_| PALETTE[rng.gen_range(0..PALETTE.len())])
        .collect()
}

fn gen_value(rng: &mut TestRng, depth: usize) -> Value {
    // Containers only below the depth budget; scalars otherwise.
    let kind = if depth > 0 {
        rng.gen_range(0..8u8)
    } else {
        rng.gen_range(0..6u8)
    };
    match kind {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_range(0..2u8) == 0),
        2 => Value::Uint(rng.gen::<u64>() >> rng.gen_range(0..64u32)),
        3 => Value::Number(rng.gen_range(-1e12..1e12)),
        4 => {
            // Numbers prone to formatting edge cases: whole, tiny, huge.
            match rng.gen_range(0..4u8) {
                0 => Value::Number(rng.gen_range(-1e6..1e6f64).trunc()),
                1 => Value::Number(rng.gen_range(-1.0..1.0f64) * 1e-300),
                2 => Value::Number(rng.gen_range(-1.0..1.0f64) * 1e300),
                _ => Value::Number(-0.0),
            }
        }
        5 => Value::String(gen_string(rng)),
        6 => {
            let len = rng.gen_range(0..5usize);
            Value::Array((0..len).map(|_| gen_value(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.gen_range(0..5usize);
            Value::Object(
                (0..len)
                    .map(|_| (gen_string(rng), gen_value(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

/// Strategy producing random JSON value trees up to 4 container levels.
struct ArbValue;

impl Strategy for ArbValue {
    type Value = Value;

    fn generate(&self, rng: &mut TestRng) -> Value {
        gen_value(rng, 4)
    }
}

/// The value the parser is specified to return for a written document:
/// identical up to number canonicalisation — a whole non-negative float
/// small enough to print as an integer token re-parses as `Uint`.
fn canonical(value: &Value) -> Value {
    match value {
        Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 => {
            Value::Uint(*n as u64)
        }
        Value::Array(items) => Value::Array(items.iter().map(canonical).collect()),
        Value::Object(pairs) => Value::Object(
            pairs
                .iter()
                .map(|(k, v)| (k.clone(), canonical(v)))
                .collect(),
        ),
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Compact and pretty renderings of random value trees both parse back
    /// to the canonical form of the original tree.
    #[test]
    fn random_values_round_trip(value in ArbValue) {
        let expected = canonical(&value);
        let compact = value.to_string();
        let parsed = parse(&compact)
            .unwrap_or_else(|e| panic!("compact form failed to parse: {e}\n{compact}"));
        prop_assert_eq!(&parsed, &expected, "compact round trip diverged");
        let pretty = value.to_pretty_string();
        let parsed = parse(&pretty)
            .unwrap_or_else(|e| panic!("pretty form failed to parse: {e}\n{pretty}"));
        prop_assert_eq!(&parsed, &expected, "pretty round trip diverged");
        // Idempotence: re-serialising the parsed tree is byte-stable (the
        // property the server's content-addressed cache relies on).
        prop_assert_eq!(parsed.to_string(), expected.to_string());
    }

    /// Byte-level mutations of a valid document never panic the parser:
    /// every mutant either parses or reports a structured error.
    #[test]
    fn mutated_documents_never_panic(
        value in ArbValue,
        mutations in proptest::collection::vec((0..4096usize, 0..=255u8, 0..3u8), 1..16),
    ) {
        let mut bytes = value.to_string().into_bytes();
        for (position, byte, op) in mutations {
            if bytes.is_empty() {
                bytes.push(byte);
                continue;
            }
            let at = position % bytes.len();
            match op {
                0 => bytes[at] = byte,
                1 => bytes.insert(at, byte),
                _ => {
                    bytes.remove(at);
                }
            }
        }
        // Mutations can break UTF-8; the parser takes `&str`, so feed it
        // the lossy decoding (what any caller would have to do).
        let source = String::from_utf8_lossy(&bytes);
        match parse(&source) {
            Ok(reparsed) => {
                // If the mutant still parses, it must also re-serialise and
                // re-parse cleanly (the value is internally consistent).
                let rendered = reparsed.to_string();
                prop_assert_eq!(
                    parse(&rendered).expect("re-rendered mutant parses"),
                    reparsed
                );
            }
            Err(error) => {
                // Offsets index the (lossy-decoded) source the parser saw.
                prop_assert!(
                    error.offset <= source.len(),
                    "error offset {} beyond document length {}",
                    error.offset,
                    source.len()
                );
            }
        }
    }
}

#[test]
fn hostile_nesting_is_rejected_not_overflowed() {
    // A tiny document with pathological nesting must come back as a parse
    // error — never a recursion-induced stack overflow.
    for open in ["[", "{\"k\":"] {
        let source = open.repeat(MAX_DEPTH + 10);
        let error = parse(&source).expect_err("over-deep document rejected");
        assert!(
            error.message.contains("nesting"),
            "unexpected error: {error}"
        );
    }
    // At exactly the limit the document is still accepted.
    let balanced = format!("{}null{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
    parse(&balanced).expect("nesting at the limit parses");
}

#[test]
fn truncated_documents_error_cleanly() {
    let document = r#"{"counts":{"0":512,"15":488},"estimates":[0.5,-1.25e-3],"ok":true}"#;
    for cut in 0..document.len() {
        let truncated = &document[..cut];
        if truncated.is_empty() {
            continue;
        }
        // Every strict prefix is incomplete; none may panic, and only the
        // full document parses.
        assert!(
            parse(truncated).is_err(),
            "prefix of length {cut} unexpectedly parsed"
        );
    }
    parse(document).expect("the full document parses");
}
