//! Hierarchical span tracing for end-to-end job visibility.
//!
//! A [`Tracer`] records one **trace** per job: a tree of spans with
//! nanosecond start/end offsets (relative to the trace epoch), parent
//! links, a per-span **lane** (0 = the driver or serving thread,
//! `n + 1` = shot-worker `n`), and `key=value` attributes. Layers emit
//! spans through a thread-local cursor — [`span`] opens a child of the
//! innermost open span on the calling thread — so the engine drivers
//! need no extra parameters: a worker closure calls [`propagate`]
//! before spawning and installs the returned handle on its own thread.
//!
//! # Determinism
//!
//! Span ids encode `(lane + 1) << 32 | sequence`, with the sequence
//! allocated per lane in span-start order. [`Tracer::finish`] merges
//! the per-thread records and sorts them by id, so the *structure* of a
//! trace (ids, names, parents, lanes, attribute keys) is a pure
//! function of the execution plan — identical across runs and across
//! server restarts — while timestamps naturally vary. Traces are a
//! diagnostics side channel: nothing here feeds back into results,
//! cache keys or RNG streams.
//!
//! # Cost model
//!
//! Tracing is **off** by default. When off, [`span`] is one relaxed
//! atomic load. When on, spans are coarse by design — per request
//! stage, per trajectory group, per scheduler chunk — never per DD
//! node, and each costs one short mutex lock on the owning tracer.
//! A sampling knob ([`set_trace_sample_rate`]) keeps high-QPS serving
//! cheap: 1-in-`n` jobs trace, chosen deterministically by a hash of
//! the trace id.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use qsdd_json::Value;

/// The synthesized root span's id (`parent == 0` marks the root).
pub const ROOT_SPAN_ID: u64 = 1;

/// Process-wide tracing switch, separate from the metrics gate so the
/// two observability planes toggle independently.
static TRACING: AtomicBool = AtomicBool::new(false);

/// 1-in-`n` sampling rate for [`Tracer::start`]; `0`/`1` = every job.
static SAMPLE_RATE: AtomicU64 = AtomicU64::new(1);

/// Whether span recording is on (one relaxed load — the entire cost of
/// an un-traced [`span`] call).
#[inline]
pub fn trace_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Turns span recording on or off.
pub fn set_trace_enabled(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Sets the sampling rate: 1-in-`rate` jobs trace (`0` and `1` both
/// mean every job). Selection hashes the trace id, so the same job is
/// sampled (or not) consistently across runs and replicas.
pub fn set_trace_sample_rate(rate: u64) {
    SAMPLE_RATE.store(rate, Ordering::Relaxed);
}

/// The current 1-in-`n` sampling rate.
pub fn trace_sample_rate() -> u64 {
    SAMPLE_RATE.load(Ordering::Relaxed)
}

/// Seeds the gate and sampling rate from `QSDD_TRACE` (`0`/`off`/
/// `false` disable, anything else — or unset — leaves `default_on`)
/// and `QSDD_TRACE_SAMPLE` (a 1-in-`n` rate). The server calls this
/// with `default_on = true` at startup; the CLI with the `--trace-out`
/// decision.
pub fn configure_trace_from_env(default_on: bool) {
    let on = match std::env::var("QSDD_TRACE") {
        Ok(value) => !matches!(
            value.trim().to_ascii_lowercase().as_str(),
            "0" | "off" | "false" | "no"
        ),
        Err(_) => default_on,
    };
    set_trace_enabled(on);
    if let Ok(value) = std::env::var("QSDD_TRACE_SAMPLE") {
        if let Ok(rate) = value.trim().parse::<u64>() {
            set_trace_sample_rate(rate);
        }
    }
}

/// Deterministic sampling decision for a trace id at the current rate.
pub fn sampled(trace_id: &str) -> bool {
    let rate = trace_sample_rate();
    if rate <= 1 {
        return true;
    }
    // FNV-1a: stable, dependency-free, and independent of the job
    // content hash so sampling does not correlate with cache placement.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in trace_id.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash.is_multiple_of(rate)
}

/// A span attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// An unsigned integer (counts, node totals, worker indices).
    U64(u64),
    /// A float (masses, ratios).
    F64(f64),
    /// A short piece of text (backend names, job kinds).
    Text(String),
}

impl From<u64> for AttrValue {
    fn from(value: u64) -> AttrValue {
        AttrValue::U64(value)
    }
}

impl From<usize> for AttrValue {
    fn from(value: usize) -> AttrValue {
        AttrValue::U64(value as u64)
    }
}

impl From<f64> for AttrValue {
    fn from(value: f64) -> AttrValue {
        AttrValue::F64(value)
    }
}

impl From<&str> for AttrValue {
    fn from(value: &str) -> AttrValue {
        AttrValue::Text(value.to_string())
    }
}

impl AttrValue {
    fn to_json(&self) -> Value {
        match self {
            AttrValue::U64(value) => Value::from(*value),
            AttrValue::F64(value) => Value::from(*value),
            AttrValue::Text(value) => Value::from(value.as_str()),
        }
    }
}

/// One finished span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// `(lane + 1) << 32 | sequence`; [`ROOT_SPAN_ID`] for the root.
    pub id: u64,
    /// Parent span id; `0` on the root span only.
    pub parent: u64,
    /// Span name from the fixed vocabulary (`docs/tracing.md`).
    pub name: &'static str,
    /// Thread lane: 0 = driver/serving thread, `n + 1` = worker `n`.
    pub lane: u32,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// End offset from the trace epoch, nanoseconds.
    pub end_ns: u64,
    /// `key=value` attributes attached while the span was open.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

/// A completed, merged trace.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The trace id (the job content address on the serving path).
    pub trace_id: String,
    /// The job id the trace belongs to (usually equal to `trace_id`).
    pub job_id: String,
    /// Spans sorted by id; `spans[0]` is the synthesized root.
    pub spans: Vec<SpanRecord>,
}

impl Trace {
    /// Whole-trace duration: the root span's end offset.
    pub fn duration_ns(&self) -> u64 {
        self.spans.first().map(|root| root.end_ns).unwrap_or(0)
    }

    /// The structural signature: ids, parents, names and lanes joined
    /// canonically, timestamps and attribute values excluded. Two runs
    /// of the same job produce the same signature — the property the
    /// restart-replay test pins.
    pub fn structure(&self) -> String {
        let mut out = String::new();
        for span in &self.spans {
            if !out.is_empty() {
                out.push(';');
            }
            out.push_str(&format!(
                "{:x}>{:x}:{}@{}",
                span.id, span.parent, span.name, span.lane
            ));
        }
        out
    }

    /// The structural JSON served by `GET /v1/jobs/<id>/trace`.
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("trace_id".to_string(), Value::from(self.trace_id.as_str())),
            ("job_id".to_string(), Value::from(self.job_id.as_str())),
            ("duration_ns".to_string(), Value::from(self.duration_ns())),
            ("span_count".to_string(), Value::from(self.spans.len())),
            (
                "spans".to_string(),
                Value::Array(self.spans.iter().map(span_json).collect()),
            ),
        ])
    }

    /// Chrome trace-event JSON (the "JSON object format"): complete
    /// `ph:"X"` events with microsecond `ts`/`dur`, `pid` 1 and the
    /// lane as `tid`. Loads directly in Perfetto / `chrome://tracing`.
    pub fn to_chrome_json(&self) -> Value {
        let events = self
            .spans
            .iter()
            .map(|span| {
                let mut args = vec![
                    ("span_id".to_string(), Value::from(span.id)),
                    ("parent_id".to_string(), Value::from(span.parent)),
                ];
                for (key, value) in &span.attrs {
                    args.push(((*key).to_string(), value.to_json()));
                }
                Value::object(vec![
                    ("name".to_string(), Value::from(span.name)),
                    ("cat".to_string(), Value::from("qsdd")),
                    ("ph".to_string(), Value::from("X")),
                    ("ts".to_string(), Value::from(span.start_ns as f64 / 1e3)),
                    (
                        "dur".to_string(),
                        Value::from(span.end_ns.saturating_sub(span.start_ns) as f64 / 1e3),
                    ),
                    ("pid".to_string(), Value::from(1u64)),
                    ("tid".to_string(), Value::from(u64::from(span.lane))),
                    ("args".to_string(), Value::object(args)),
                ])
            })
            .collect();
        Value::object(vec![
            ("displayTimeUnit".to_string(), Value::from("ms")),
            (
                "otherData".to_string(),
                Value::object(vec![
                    ("trace_id".to_string(), Value::from(self.trace_id.as_str())),
                    ("job_id".to_string(), Value::from(self.job_id.as_str())),
                ]),
            ),
            ("traceEvents".to_string(), Value::Array(events)),
        ])
    }
}

fn span_json(span: &SpanRecord) -> Value {
    Value::object(vec![
        ("id".to_string(), Value::from(span.id)),
        ("parent".to_string(), Value::from(span.parent)),
        ("name".to_string(), Value::from(span.name)),
        ("lane".to_string(), Value::from(u64::from(span.lane))),
        ("start_ns".to_string(), Value::from(span.start_ns)),
        ("end_ns".to_string(), Value::from(span.end_ns)),
        (
            "attrs".to_string(),
            Value::object(
                span.attrs
                    .iter()
                    .map(|(key, value)| ((*key).to_string(), value.to_json()))
                    .collect(),
            ),
        ),
    ])
}

/// Shared tracer state: the epoch plus per-lane sequence counters and
/// the merged record buffer. Spans are coarse, so one short lock per
/// span boundary is in budget.
#[derive(Debug)]
struct TracerInner {
    trace_id: String,
    job_id: String,
    epoch: Instant,
    state: Mutex<TracerState>,
}

#[derive(Debug, Default)]
struct TracerState {
    /// Next sequence number per lane (index = lane).
    next_seq: Vec<u32>,
    /// Finished spans, flushed here at span close.
    done: Vec<SpanRecord>,
}

impl TracerInner {
    fn offset_ns(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Allocates the next span id on `lane`.
    fn next_id(state: &mut TracerState, lane: u32) -> u64 {
        let slot = lane as usize;
        if state.next_seq.len() <= slot {
            state.next_seq.resize(slot + 1, 0);
        }
        let seq = state.next_seq[slot];
        state.next_seq[slot] = seq + 1;
        ((u64::from(lane) + 1) << 32) | u64::from(seq)
    }
}

/// Records one job's spans; create per job, [`Tracer::finish`] at the
/// end.
#[derive(Clone, Debug)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// Starts a tracer if tracing is enabled and `trace_id` falls in
    /// the sample; the epoch is now.
    pub fn start(trace_id: &str, job_id: &str) -> Option<Tracer> {
        Tracer::start_at(trace_id, job_id, Instant::now())
    }

    /// Like [`Tracer::start`] with an explicit epoch — the server uses
    /// the request-arrival instant so the parse span begins at offset 0.
    pub fn start_at(trace_id: &str, job_id: &str, epoch: Instant) -> Option<Tracer> {
        if !trace_enabled() || !sampled(trace_id) {
            return None;
        }
        Some(Tracer::forced_at(trace_id, job_id, epoch))
    }

    /// Starts a tracer unconditionally (no gate, no sampling) — the CLI
    /// uses this for an explicit `--trace-out` request. The caller must
    /// still [`set_trace_enabled`] for [`span`] to record.
    pub fn forced(trace_id: &str, job_id: &str) -> Tracer {
        Tracer::forced_at(trace_id, job_id, Instant::now())
    }

    /// [`Tracer::forced`] with an explicit epoch.
    pub fn forced_at(trace_id: &str, job_id: &str, epoch: Instant) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                trace_id: trace_id.to_string(),
                job_id: job_id.to_string(),
                epoch,
                state: Mutex::new(TracerState::default()),
            }),
        }
    }

    /// Time since the trace epoch.
    pub fn elapsed(&self) -> Duration {
        self.inner.epoch.elapsed()
    }

    /// The trace id.
    pub fn trace_id(&self) -> &str {
        &self.inner.trace_id
    }

    /// Makes this tracer current on the calling thread for `lane`
    /// until the guard drops; new top-level spans parent to the root.
    pub fn install(&self, lane: u32) -> InstallGuard {
        install_state(TlsState {
            inner: Arc::clone(&self.inner),
            lane,
            default_parent: ROOT_SPAN_ID,
            stack: Vec::new(),
        })
    }

    /// Records a finished span directly, without the thread-local
    /// cursor, from start/end offsets relative to the epoch. The
    /// serving path uses this for stages measured before a worker
    /// installs the tracer (parse, cache lookup, queue wait); such
    /// spans parent to the root.
    pub fn record_span_at(
        &self,
        lane: u32,
        name: &'static str,
        start: Duration,
        end: Duration,
        attrs: Vec<(&'static str, AttrValue)>,
    ) {
        let mut state = self.inner.state.lock().unwrap();
        let id = TracerInner::next_id(&mut state, lane);
        state.done.push(SpanRecord {
            id,
            parent: ROOT_SPAN_ID,
            name,
            lane,
            start_ns: start.as_nanos() as u64,
            end_ns: end.as_nanos() as u64,
            attrs,
        });
    }

    /// Merges every lane's spans into the finished [`Trace`]: sorted
    /// by id (deterministic structure), under a synthesized root span
    /// covering the whole job.
    pub fn finish(self, root_name: &'static str) -> Trace {
        let elapsed_ns = self.inner.epoch.elapsed().as_nanos() as u64;
        let mut state = self.inner.state.lock().unwrap();
        let mut spans = std::mem::take(&mut state.done);
        drop(state);
        spans.sort_by_key(|span| span.id);
        let end_ns = spans
            .iter()
            .map(|span| span.end_ns)
            .fold(elapsed_ns, u64::max);
        spans.insert(
            0,
            SpanRecord {
                id: ROOT_SPAN_ID,
                parent: 0,
                name: root_name,
                lane: 0,
                start_ns: 0,
                end_ns,
                attrs: Vec::new(),
            },
        );
        Trace {
            trace_id: self.inner.trace_id.clone(),
            job_id: self.inner.job_id.clone(),
            spans,
        }
    }
}

/// A capture of the calling thread's current trace position, made
/// before spawning workers; each worker installs it on its own lane.
#[derive(Clone, Debug)]
pub struct TraceHandle {
    inner: Arc<TracerInner>,
    parent: u64,
}

impl TraceHandle {
    /// Makes the originating tracer current on the calling thread for
    /// `lane`; new top-level spans parent to the span that was open
    /// when [`propagate`] captured the handle.
    pub fn install(&self, lane: u32) -> InstallGuard {
        install_state(TlsState {
            inner: Arc::clone(&self.inner),
            lane,
            default_parent: self.parent,
            stack: Vec::new(),
        })
    }
}

/// Captures the calling thread's tracer and innermost open span, for
/// hand-off to spawned workers. `None` when the thread is not traced.
pub fn propagate() -> Option<TraceHandle> {
    if !trace_enabled() {
        return None;
    }
    CURRENT.with(|current| {
        current.borrow().as_ref().map(|state| TraceHandle {
            inner: Arc::clone(&state.inner),
            parent: state
                .stack
                .last()
                .map(|open| open.id)
                .unwrap_or(state.default_parent),
        })
    })
}

/// Whether the calling thread is actively traced (tracing on *and* a
/// tracer installed). Use to skip computing expensive attribute values.
pub fn active() -> bool {
    trace_enabled() && CURRENT.with(|current| current.borrow().is_some())
}

/// The trace and job ids of the calling thread's current trace, for
/// log correlation. `None` when the thread is not traced.
pub fn current_ids() -> Option<(String, String)> {
    if !trace_enabled() {
        return None;
    }
    CURRENT.with(|current| {
        current
            .borrow()
            .as_ref()
            .map(|state| (state.inner.trace_id.clone(), state.inner.job_id.clone()))
    })
}

/// One open (not yet finished) span on a thread's stack.
#[derive(Debug)]
struct OpenSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// The thread-local cursor: which tracer and lane this thread records
/// into, plus the stack of open spans.
#[derive(Debug)]
struct TlsState {
    inner: Arc<TracerInner>,
    lane: u32,
    default_parent: u64,
    stack: Vec<OpenSpan>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<TlsState>> =
        const { std::cell::RefCell::new(None) };
}

fn install_state(state: TlsState) -> InstallGuard {
    let previous = CURRENT.with(|current| current.borrow_mut().replace(state));
    InstallGuard { previous }
}

/// Uninstalls the thread-local tracer on drop (restoring any previous
/// one), closing spans left open — e.g. when a panic unwound past
/// their guards — so no record is lost.
#[derive(Debug)]
pub struct InstallGuard {
    previous: Option<TlsState>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let state = CURRENT
            .with(|current| std::mem::replace(&mut *current.borrow_mut(), self.previous.take()));
        if let Some(mut state) = state {
            while let Some(open) = state.stack.pop() {
                close_span(&state.inner, state.lane, open);
            }
        }
    }
}

fn close_span(inner: &Arc<TracerInner>, lane: u32, open: OpenSpan) {
    let end_ns = inner.offset_ns(Instant::now());
    let mut shared = inner.state.lock().unwrap();
    shared.done.push(SpanRecord {
        id: open.id,
        parent: open.parent,
        name: open.name,
        lane,
        start_ns: open.start_ns,
        end_ns,
        attrs: open.attrs,
    });
}

/// Opens a span named `name` as a child of the innermost open span on
/// this thread; the span closes when the guard drops. A no-op costing
/// one relaxed load when tracing is off or the thread is untraced.
pub fn span(name: &'static str) -> SpanGuard {
    if !trace_enabled() {
        return SpanGuard { active: false };
    }
    let active = CURRENT.with(|current| {
        let mut current = current.borrow_mut();
        let Some(state) = current.as_mut() else {
            return false;
        };
        let now = Instant::now();
        let parent = state
            .stack
            .last()
            .map(|open| open.id)
            .unwrap_or(state.default_parent);
        let (id, start_ns) = {
            let mut shared = state.inner.state.lock().unwrap();
            let id = TracerInner::next_id(&mut shared, state.lane);
            (id, state.inner.offset_ns(now))
        };
        state.stack.push(OpenSpan {
            id,
            parent,
            name,
            start_ns,
            attrs: Vec::new(),
        });
        true
    });
    SpanGuard { active }
}

/// Attaches `key = value` to the innermost open span on this thread
/// (dropped silently when no span is open).
pub fn attr(key: &'static str, value: impl Into<AttrValue>) {
    if !trace_enabled() {
        return;
    }
    let value = value.into();
    CURRENT.with(|current| {
        if let Some(state) = current.borrow_mut().as_mut() {
            if let Some(open) = state.stack.last_mut() {
                open.attrs.push((key, value));
            }
        }
    });
}

/// Closes its span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    /// Whether this guard actually opened a span (tracing was on and
    /// the thread had a tracer installed).
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        CURRENT.with(|current| {
            let mut current = current.borrow_mut();
            if let Some(state) = current.as_mut() {
                if let Some(open) = state.stack.pop() {
                    let inner = Arc::clone(&state.inner);
                    let lane = state.lane;
                    close_span(&inner, lane, open);
                }
            }
        });
    }
}

/// A bounded ring buffer of recently completed traces, keyed by job
/// id. **Volatile by design**: traces live in memory only and do not
/// survive a restart (results do, via the durable store — traces are
/// re-recorded when a job re-executes).
#[derive(Debug)]
pub struct TraceStore {
    capacity: usize,
    inner: Mutex<VecDeque<Arc<Trace>>>,
}

impl TraceStore {
    /// Creates a store keeping at most `capacity` traces (oldest
    /// evicted first).
    pub fn new(capacity: usize) -> TraceStore {
        TraceStore {
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Inserts a completed trace, replacing any previous trace for the
    /// same job id.
    pub fn insert(&self, trace: Trace) {
        let mut inner = self.inner.lock().unwrap();
        inner.retain(|existing| existing.job_id != trace.job_id);
        inner.push_back(Arc::new(trace));
        while inner.len() > self.capacity {
            inner.pop_front();
        }
    }

    /// The trace for `job_id`, if still resident.
    pub fn get(&self, job_id: &str) -> Option<Arc<Trace>> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .find(|trace| trace.job_id == job_id)
            .cloned()
    }

    /// Every resident trace, most recent first.
    pub fn recent(&self) -> Vec<Arc<Trace>> {
        self.inner.lock().unwrap().iter().rev().cloned().collect()
    }

    /// Number of resident traces.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the global gate (the whole test
    /// binary shares it).
    fn with_tracing<T>(body: impl FnOnce() -> T) -> T {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap();
        set_trace_enabled(true);
        set_trace_sample_rate(1);
        let out = body();
        set_trace_enabled(false);
        out
    }

    #[test]
    fn spans_nest_and_parent_correctly() {
        let trace = with_tracing(|| {
            let tracer = Tracer::forced("t1", "j1");
            {
                let _install = tracer.install(0);
                let _outer = span("execute");
                attr("shots", 100usize);
                {
                    let _inner = span("trajectory_group");
                    attr("members", 4usize);
                }
                {
                    let _inner = span("aggregate");
                }
            }
            tracer.finish("job")
        });
        assert_eq!(trace.spans.len(), 4);
        let root = &trace.spans[0];
        assert_eq!(root.id, ROOT_SPAN_ID);
        assert_eq!(root.parent, 0);
        assert_eq!(root.name, "job");
        let execute = &trace.spans[1];
        assert_eq!(execute.name, "execute");
        assert_eq!(execute.parent, ROOT_SPAN_ID);
        assert_eq!(execute.attrs, vec![("shots", AttrValue::U64(100))]);
        let group = &trace.spans[2];
        assert_eq!(group.name, "trajectory_group");
        assert_eq!(group.parent, execute.id);
        let aggregate = &trace.spans[3];
        assert_eq!(aggregate.name, "aggregate");
        assert_eq!(aggregate.parent, execute.id);
        // Children start and end within their parent and the root.
        for span in &trace.spans[1..] {
            assert!(span.start_ns <= span.end_ns);
            assert!(span.end_ns <= root.end_ns);
        }
    }

    #[test]
    fn worker_lanes_merge_deterministically() {
        let run = || {
            with_tracing(|| {
                let tracer = Tracer::forced("t2", "j2");
                let _install = tracer.install(0);
                let _job = span("execute");
                let handle = propagate().expect("traced thread propagates");
                std::thread::scope(|scope| {
                    for worker in 0..4u32 {
                        let handle = handle.clone();
                        scope.spawn(move || {
                            let _lane = handle.install(worker + 1);
                            let _span = span("worker_shots");
                            attr("worker", u64::from(worker));
                        });
                    }
                });
                drop(_job);
                drop(_install);
                tracer.finish("job")
            })
        };
        let first = run();
        let second = run();
        assert_eq!(first.structure(), second.structure());
        // One root + execute + four worker spans, each on its own lane,
        // parented to the execute span that propagated.
        assert_eq!(first.spans.len(), 6);
        let execute_id = first.spans[1].id;
        let lanes: Vec<u32> = first.spans[2..].iter().map(|span| span.lane).collect();
        assert_eq!(lanes, vec![1, 2, 3, 4]);
        for span in &first.spans[2..] {
            assert_eq!(span.parent, execute_id);
            assert_eq!(span.name, "worker_shots");
        }
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        set_trace_enabled(false);
        let _span = span("execute");
        attr("shots", 1usize);
        assert!(propagate().is_none());
        assert!(current_ids().is_none());
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_proportional() {
        let decisions: Vec<bool> = {
            set_trace_sample_rate(4);
            let out = (0..256)
                .map(|n| sampled(&format!("j{n:016x}")))
                .collect::<Vec<_>>();
            set_trace_sample_rate(1);
            out
        };
        let repeat: Vec<bool> = {
            set_trace_sample_rate(4);
            let out = (0..256)
                .map(|n| sampled(&format!("j{n:016x}")))
                .collect::<Vec<_>>();
            set_trace_sample_rate(1);
            out
        };
        assert_eq!(decisions, repeat, "sampling must be deterministic");
        let hits = decisions.iter().filter(|&&hit| hit).count();
        assert!(
            (16..=112).contains(&hits),
            "1-in-4 sampling of 256 ids hit {hits} times"
        );
        assert!(sampled("anything"), "rate 1 samples everything");
    }

    #[test]
    fn record_span_at_lands_on_the_requested_lane() {
        let trace = with_tracing(|| {
            let tracer = Tracer::forced("t3", "j3");
            tracer.record_span_at(
                0,
                "parse",
                Duration::from_nanos(0),
                Duration::from_nanos(500),
                vec![("bytes", AttrValue::U64(128))],
            );
            tracer.record_span_at(
                0,
                "queue_wait",
                Duration::from_nanos(600),
                Duration::from_nanos(900),
                Vec::new(),
            );
            tracer.finish("job")
        });
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(trace.spans[1].name, "parse");
        assert_eq!(trace.spans[1].parent, ROOT_SPAN_ID);
        assert_eq!(trace.spans[2].name, "queue_wait");
        assert!(trace.spans[1].id < trace.spans[2].id);
        assert!(trace.duration_ns() >= 900);
    }

    #[test]
    fn chrome_export_has_complete_events() {
        let trace = with_tracing(|| {
            let tracer = Tracer::forced("t4", "j4");
            {
                let _install = tracer.install(0);
                let _span = span("execute");
            }
            tracer.finish("job")
        });
        let chrome = trace.to_chrome_json();
        assert_eq!(
            chrome.get("displayTimeUnit").and_then(Value::as_str),
            Some("ms")
        );
        let events = chrome
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), trace.spans.len());
        for event in events {
            assert_eq!(event.get("ph").and_then(Value::as_str), Some("X"));
            assert!(event.get("ts").and_then(Value::as_f64).is_some());
            assert!(event.get("dur").and_then(Value::as_f64).is_some());
            assert_eq!(event.get("pid").and_then(Value::as_u64), Some(1));
            assert!(event.get("tid").and_then(Value::as_u64).is_some());
            assert!(event
                .get("args")
                .and_then(|args| args.get("span_id"))
                .and_then(Value::as_u64)
                .is_some());
        }
        // Round-trips through the parser.
        let text = chrome.to_string();
        qsdd_json::parse(&text).expect("chrome export parses back");
    }

    #[test]
    fn trace_store_evicts_oldest_and_replaces_by_job_id() {
        let store = TraceStore::new(2);
        let make = |job: &str| with_tracing(|| Tracer::forced(job, job).finish("job"));
        store.insert(make("a"));
        store.insert(make("b"));
        store.insert(make("c"));
        assert_eq!(store.len(), 2);
        assert!(store.get("a").is_none(), "oldest evicted");
        assert!(store.get("b").is_some());
        store.insert(make("b"));
        assert_eq!(store.len(), 2, "same job id replaces, not grows");
        let recent = store.recent();
        assert_eq!(recent[0].job_id, "b", "most recent first");
    }

    #[test]
    fn log_correlation_ids_follow_the_install_guard() {
        with_tracing(|| {
            assert!(current_ids().is_none());
            let tracer = Tracer::forced("trace-x", "job-x");
            {
                let _install = tracer.install(0);
                assert_eq!(
                    current_ids(),
                    Some(("trace-x".to_string(), "job-x".to_string()))
                );
            }
            assert!(current_ids().is_none());
        });
    }
}
