//! Named metric registration and Prometheus text rendering.
//!
//! A [`Registry`] is a plain value: the process shares one through
//! [`crate::global()`] for library-layer metrics, and `qsdd-server` owns a
//! private instance per server so integration tests can assert *exact*
//! counter values even when several servers run in one test process.
//!
//! Handles returned by the registration methods are `Arc`s; callers keep
//! them and update lock-free. The registry's own lock is touched only at
//! registration (get-or-create) and render time.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram};

/// One registered time series.
struct Entry {
    name: String,
    help: String,
    /// Rendered label pairs (`key="value",...`), empty for unlabelled
    /// series.
    labels: String,
    kind: Kind,
}

enum Kind {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Default)]
struct Inner {
    /// Series in registration order (render order is deterministic).
    entries: Vec<Entry>,
    /// `(name, labels)` → slot in `entries`.
    index: HashMap<(String, String), usize>,
}

/// A collection of named metrics, rendered as Prometheus text exposition.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("registry lock");
        f.debug_struct("Registry")
            .field("series", &inner.entries.len())
            .finish()
    }
}

/// Renders label pairs as `key="value",...` with Prometheus escaping.
fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        for c in value.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                other => out.push(other),
            }
        }
        out.push('"');
    }
    out
}

/// Formats a float the way Prometheus expects (`1`, `0.25`, `+Inf`).
fn render_f64(value: f64) -> String {
    if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == value.trunc() && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        let mut text = format!("{value}");
        if !text.contains('.') && !text.contains('e') {
            text.push_str(".0");
        }
        text
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> (Kind, Arc<T>),
        extract: impl FnOnce(&Kind) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let labels = render_labels(labels);
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(&slot) = inner.index.get(&(name.to_string(), labels.clone())) {
            return extract(&inner.entries[slot].kind)
                .unwrap_or_else(|| panic!("metric `{name}` re-registered with a different type"));
        }
        let (kind, handle) = make();
        let slot = inner.entries.len();
        inner.entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels.clone(),
            kind,
        });
        inner.index.insert((name.to_string(), labels), slot);
        handle
    }

    /// Registers (or fetches) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers (or fetches) a counter with label pairs.
    ///
    /// Label values are part of the series identity: each distinct
    /// combination is its own counter. Keep cardinality bounded (the
    /// server normalises request paths before labelling).
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            labels,
            || {
                let counter = Arc::new(Counter::new());
                (Kind::Counter(Arc::clone(&counter)), counter)
            },
            |kind| match kind {
                Kind::Counter(counter) => Some(Arc::clone(counter)),
                _ => None,
            },
        )
    }

    /// Registers (or fetches) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or fetches) a gauge with label pairs.
    ///
    /// As with [`counter_with`](Registry::counter_with), each distinct
    /// label combination is its own series; keep cardinality bounded.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            help,
            labels,
            || {
                let gauge = Arc::new(Gauge::new());
                (Kind::Gauge(Arc::clone(&gauge)), gauge)
            },
            |kind| match kind {
                Kind::Gauge(gauge) => Some(Arc::clone(gauge)),
                _ => None,
            },
        )
    }

    /// Registers (or fetches) an unlabelled histogram over `bounds`.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, &[], bounds)
    }

    /// Registers (or fetches) a histogram with label pairs.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            help,
            labels,
            || {
                let histogram = Arc::new(Histogram::new(bounds));
                (Kind::Histogram(Arc::clone(&histogram)), histogram)
            },
            |kind| match kind {
                Kind::Histogram(histogram) => Some(Arc::clone(histogram)),
                _ => None,
            },
        )
    }

    /// Renders every series in Prometheus text exposition format.
    ///
    /// Series render in registration order; `# HELP` / `# TYPE` headers
    /// are emitted once per metric name, before its first series.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("registry lock");
        let mut out = String::new();
        let mut described: Vec<&str> = Vec::new();
        for entry in &inner.entries {
            if !described.contains(&entry.name.as_str()) {
                described.push(&entry.name);
                let type_name = match entry.kind {
                    Kind::Counter(_) => "counter",
                    Kind::Gauge(_) => "gauge",
                    Kind::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# HELP {} {}\n", entry.name, entry.help));
                out.push_str(&format!("# TYPE {} {}\n", entry.name, type_name));
            }
            match &entry.kind {
                Kind::Counter(counter) => {
                    out.push_str(&series_line(&entry.name, &entry.labels, None));
                    out.push_str(&format!(" {}\n", counter.get()));
                }
                Kind::Gauge(gauge) => {
                    out.push_str(&series_line(&entry.name, &entry.labels, None));
                    out.push_str(&format!(" {}\n", gauge.get()));
                }
                Kind::Histogram(histogram) => {
                    let cumulative = histogram.cumulative_buckets();
                    for (bound, count) in histogram
                        .bounds()
                        .iter()
                        .copied()
                        .chain(std::iter::once(f64::INFINITY))
                        .zip(cumulative)
                    {
                        let le = render_f64(bound);
                        out.push_str(&series_line(
                            &format!("{}_bucket", entry.name),
                            &entry.labels,
                            Some(&format!("le=\"{le}\"")),
                        ));
                        out.push_str(&format!(" {count}\n"));
                    }
                    out.push_str(&series_line(
                        &format!("{}_sum", entry.name),
                        &entry.labels,
                        None,
                    ));
                    out.push_str(&format!(" {}\n", render_f64(histogram.sum())));
                    out.push_str(&series_line(
                        &format!("{}_count", entry.name),
                        &entry.labels,
                        None,
                    ));
                    out.push_str(&format!(" {}\n", histogram.count()));
                }
            }
        }
        out
    }
}

/// Renders `name{labels,extra}` (or bare `name` when both are empty).
fn series_line(name: &str, labels: &str, extra: Option<&str>) -> String {
    match (labels.is_empty(), extra) {
        (true, None) => name.to_string(),
        (true, Some(extra)) => format!("{name}{{{extra}}}"),
        (false, None) => format!("{name}{{{labels}}}"),
        (false, Some(extra)) => format!("{name}{{{labels},{extra}}}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_get_or_create() {
        let registry = Registry::new();
        let a = registry.counter("jobs_total", "jobs");
        let b = registry.counter("jobs_total", "jobs");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles must address one counter");
    }

    #[test]
    fn labelled_series_are_distinct() {
        let registry = Registry::new();
        let ok = registry.counter_with("req_total", "requests", &[("status", "200")]);
        let bad = registry.counter_with("req_total", "requests", &[("status", "429")]);
        ok.add(5);
        bad.inc();
        let text = registry.render();
        assert!(text.contains("req_total{status=\"200\"} 5\n"), "{text}");
        assert!(text.contains("req_total{status=\"429\"} 1\n"), "{text}");
        // One header for the shared name.
        assert_eq!(text.matches("# TYPE req_total counter").count(), 1);
    }

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let registry = Registry::new();
        registry.counter("c_total", "a counter").add(7);
        registry.gauge("depth", "a gauge").set(-3);
        let h = registry.histogram("latency_seconds", "a histogram", &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(20.0);
        let text = registry.render();
        assert!(text.contains("# HELP c_total a counter\n"));
        assert!(text.contains("# TYPE c_total counter\n"));
        assert!(text.contains("c_total 7\n"));
        assert!(text.contains("# TYPE depth gauge\n"));
        assert!(text.contains("depth -3\n"));
        assert!(text.contains("latency_seconds_bucket{le=\"0.1\"} 1\n"));
        assert!(text.contains("latency_seconds_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("latency_seconds_sum 20.55\n"));
        assert!(text.contains("latency_seconds_count 3\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry
            .counter_with("odd_total", "odd", &[("path", "a\"b\\c")])
            .inc();
        let text = registry.render();
        assert!(
            text.contains("odd_total{path=\"a\\\"b\\\\c\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn every_rendered_line_is_well_formed() {
        // A light structural validation of the exposition format: each
        // line is a comment or `name[{labels}] value`.
        let registry = Registry::new();
        registry.counter("a_total", "a").inc();
        registry
            .histogram_with("b_seconds", "b", &[("stage", "execute")], &[0.5])
            .observe(0.2);
        for line in registry.render().lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample lines carry a value");
            assert!(!series.is_empty());
            assert!(
                value == "+Inf" || value.parse::<f64>().is_ok(),
                "bad value `{value}`"
            );
        }
    }
}
