//! The metric primitives: counters, gauges and histograms.
//!
//! All three are plain atomic structures safe to update from any thread
//! without locking. Counters are **sharded** — increments land on one of a
//! small set of cache-line-padded cells chosen per thread — so concurrent
//! writers on different cores do not bounce a single line between caches;
//! reads sum the shards.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of counter shards. A small power of two: enough to spread the
/// server's handful of worker threads, cheap enough to sum on every read.
const SHARDS: usize = 8;

/// One cache line worth of counter so adjacent shards never share a line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// Returns this thread's shard slot, assigned round-robin on first use.
#[inline]
fn shard_index() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let mut index = slot.get();
        if index == usize::MAX {
            index = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            slot.set(index);
        }
        index
    })
}

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [PaddedCell; SHARDS],
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|cell| cell.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A signed instantaneous value (queue depths, active connections, peaks).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if it is currently lower (peak
    /// tracking).
    pub fn set_max(&self, value: i64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default latency buckets, in seconds: 100 µs up to one minute on a
/// roughly 1–2.5–5 ladder. Covers everything from a cached lookup to a
/// large simulation.
pub const LATENCY_BOUNDS: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0, 30.0, 60.0,
];

/// Default size buckets (node counts, queue lengths): powers of four.
pub const SIZE_BOUNDS: &[f64] = &[
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
];

/// A fixed-bucket histogram with a running sum and sample count.
///
/// Bucket counts are **non-cumulative** internally; the Prometheus
/// renderer accumulates them into the `le`-labelled cumulative form.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    /// Sum of all observed values, stored as `f64` bits (updated by CAS;
    /// observations happen per request or per job, never per shot).
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Creates a histogram over ascending `bounds` (plus an implicit
    /// `+Inf` bucket).
    pub fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must ascend"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(self.bounds.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Records a [`std::time::Duration`] in seconds.
    #[inline]
    pub fn observe_duration(&self, elapsed: std::time::Duration) {
        self.observe(elapsed.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The bucket upper bounds (without `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative bucket counts, one per bound plus the final `+Inf`
    /// entry (which equals [`Histogram::count`] up to racing updates).
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut total = 0u64;
        self.buckets
            .iter()
            .map(|bucket| {
                total += bucket.load(Ordering::Relaxed);
                total
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_sum_across_threads() {
        let counter = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 80_000);
        counter.add(5);
        assert_eq!(counter.get(), 80_005);
    }

    #[test]
    fn gauges_track_values_and_peaks() {
        let gauge = Gauge::new();
        gauge.set(3);
        gauge.add(-1);
        assert_eq!(gauge.get(), 2);
        gauge.set_max(10);
        gauge.set_max(7);
        assert_eq!(gauge.get(), 10);
    }

    #[test]
    fn histograms_bucket_sum_and_count() {
        let h = Histogram::new(&[1.0, 10.0]);
        for value in [0.5, 0.9, 5.0, 100.0] {
            h.observe(value);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 106.4).abs() < 1e-9);
        assert_eq!(h.cumulative_buckets(), vec![2, 3, 4]);
    }

    #[test]
    fn histogram_observations_are_thread_safe() {
        let h = Arc::new(Histogram::new(LATENCY_BOUNDS));
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let h = Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.observe((worker * 1000 + i) as f64 * 1e-6);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(*h.cumulative_buckets().last().unwrap(), 4000);
    }
}
