//! Dependency-free observability for the qsdd pipeline.
//!
//! Three small, orthogonal pieces:
//!
//! * **Metrics** ([`metrics`], [`registry`]) — sharded atomic counters,
//!   gauges and fixed-bucket histograms, registered by name in a
//!   [`Registry`] and rendered in Prometheus text exposition format.
//!   Registries are plain values: the server owns one per instance (so
//!   tests can assert exact counts), while library layers share the
//!   process-wide [`global()`] registry.
//! * **Spans** ([`spans`]) — a [`Stage`] vocabulary for the pipeline
//!   (parse → transpile → compile → presample → group → execute →
//!   aggregate, plus cache-lookup and queue-wait on the serving path), a
//!   [`SpanTimer`] that records elapsed time into the global registry's
//!   per-stage histograms, and a [`StageTimings`] accumulator for per-job
//!   breakdowns.
//! * **Logging** ([`log`]) — level-filtered `key=value` lines on stderr,
//!   controlled by the `QSDD_LOG` environment variable. Lines emitted
//!   inside a traced job automatically carry `trace_id`/`job_id`.
//! * **Tracing** ([`trace`]) — hierarchical per-job span trees
//!   (request lifecycle → trajectory groups → worker lanes) behind an
//!   independent gate with deterministic sampling, merged at job end
//!   into a [`trace::Trace`] that renders as Chrome trace-event JSON.
//!
//! # The enabled gate
//!
//! Recording into the *global* registry is gated on a process-wide flag
//! ([`enabled()`], default **off**) so the shot loop pays one relaxed
//! atomic load — nothing else — when nobody is watching. The server and
//! the CLI's `--profile` flag turn the gate on. Per-instance registries
//! (the server's request counters) are not gated: their updates happen
//! once per HTTP request, not per shot.
//!
//! The build environment is offline, so everything here is hand-rolled on
//! `std` — no `prometheus`, no `tracing`.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

pub mod log;
pub mod metrics;
pub mod registry;
pub mod spans;
pub mod trace;

pub use log::{log_enabled, log_kv, Level};
pub use metrics::{Counter, Gauge, Histogram, LATENCY_BOUNDS, SIZE_BOUNDS};
pub use registry::Registry;
pub use spans::{SpanTimer, Stage, StageTimings};
pub use trace::{
    set_trace_enabled, set_trace_sample_rate, trace_enabled, Trace, TraceStore, Tracer,
};

/// Process-wide switch for recording into the [`global()`] registry.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether global-registry recording is on (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns global-registry recording on or off.
///
/// The server and `qsdd_cli --profile` call this with `true`; everything
/// recorded before that is simply dropped.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The process-wide registry shared by the library layers (stage
/// histograms, decision-diagram table counters, batch-scheduler gauges).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_gate_defaults_off_and_toggles() {
        // Tests run in one process; restore the gate so ordering between
        // tests cannot leak state.
        let before = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(before);
    }

    #[test]
    fn the_global_registry_is_a_singleton() {
        let a = global() as *const Registry;
        let b = global() as *const Registry;
        assert_eq!(a, b);
    }
}
