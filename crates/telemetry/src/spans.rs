//! Pipeline stages, span timers and per-job timing breakdowns.
//!
//! The [`Stage`] enum is the shared vocabulary for "where did the time
//! go": the simulation layers time their phases against it, the server
//! adds its serving-path stages, and every consumer (the `/v1/jobs/<id>`
//! `timings` object, the CLI `--profile` table, the global
//! `qsdd_stage_seconds` histograms) renders the same names.

use std::time::{Duration, Instant};

use crate::metrics::LATENCY_BOUNDS;

/// One stage of the request/simulation pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Request / circuit parsing (QASM or JSON job body).
    Parse,
    /// Circuit transpilation (optimisation passes).
    Transpile,
    /// Back-end compilation (operator diagrams, no-error trajectory).
    Compile,
    /// Presampling every shot's error decisions.
    Presample,
    /// Grouping presampled shots by error pattern.
    Group,
    /// Shot / trajectory execution.
    Execute,
    /// Portion of execution spent with intra-shot parallelism engaged
    /// (fork-join diagram ops / chunked dense kernels on a worker pool).
    IntraExecute,
    /// Merging worker partials into the final outcome.
    Aggregate,
    /// Result-cache lookup on the serving path.
    CacheLookup,
    /// Time a job spent queued before a worker picked it up.
    QueueWait,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 10] = [
        Stage::Parse,
        Stage::Transpile,
        Stage::Compile,
        Stage::Presample,
        Stage::Group,
        Stage::Execute,
        Stage::IntraExecute,
        Stage::Aggregate,
        Stage::CacheLookup,
        Stage::QueueWait,
    ];

    /// The stage's stable snake_case name (label value and JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Transpile => "transpile",
            Stage::Compile => "compile",
            Stage::Presample => "presample",
            Stage::Group => "group",
            Stage::Execute => "execute",
            Stage::IntraExecute => "intra_execute",
            Stage::Aggregate => "aggregate",
            Stage::CacheLookup => "cache_lookup",
            Stage::QueueWait => "queue_wait",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Records `elapsed` into the global registry's per-stage latency
/// histogram (`qsdd_stage_seconds{stage=...}`) when telemetry is enabled.
pub fn record_stage(stage: Stage, elapsed: Duration) {
    if !crate::enabled() {
        return;
    }
    crate::global()
        .histogram_with(
            "qsdd_stage_seconds",
            "Time spent per pipeline stage",
            &[("stage", stage.name())],
            LATENCY_BOUNDS,
        )
        .observe_duration(elapsed);
}

/// A started span: measures from construction until [`SpanTimer::stop`]
/// (or drop), then records into the global stage histograms.
#[derive(Debug)]
pub struct SpanTimer {
    stage: Stage,
    started: Instant,
    stopped: bool,
}

impl SpanTimer {
    /// Starts timing `stage`.
    pub fn start(stage: Stage) -> Self {
        SpanTimer {
            stage,
            started: Instant::now(),
            stopped: false,
        }
    }

    /// Stops the span, records it, and returns the elapsed time.
    pub fn stop(mut self) -> Duration {
        self.stopped = true;
        let elapsed = self.started.elapsed();
        record_stage(self.stage, elapsed);
        elapsed
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if !self.stopped {
            record_stage(self.stage, self.started.elapsed());
        }
    }
}

/// A per-job stage-timing breakdown: one duration per [`Stage`].
///
/// Always-on (a handful of `Instant` reads per *job*, nothing per shot):
/// the simulation layers fill it into their outcome, the server copies it
/// into the job envelope, and `--profile` prints it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimings {
    nanos: [u64; Stage::ALL.len()],
}

impl StageTimings {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        StageTimings::default()
    }

    /// Adds `elapsed` to a stage.
    pub fn record(&mut self, stage: Stage, elapsed: Duration) {
        self.nanos[stage.index()] = self.nanos[stage.index()]
            .saturating_add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// The accumulated time of one stage.
    pub fn get(&self, stage: Stage) -> Duration {
        Duration::from_nanos(self.nanos[stage.index()])
    }

    /// Sum over all stages.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.iter().fold(0u64, |a, &b| a.saturating_add(b)))
    }

    /// Iterates `(stage, duration)` pairs in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, Duration)> + '_ {
        Stage::ALL
            .iter()
            .map(move |&stage| (stage, self.get(stage)))
    }

    /// Merges another breakdown into this one (per-stage addition).
    pub fn merge(&mut self, other: &StageTimings) {
        for (slot, &add) in self.nanos.iter_mut().zip(other.nanos.iter()) {
            *slot = slot.saturating_add(add);
        }
    }

    /// Records every stage of this breakdown into the global registry's
    /// stage histograms (no-op while telemetry is disabled).
    pub fn publish(&self) {
        if !crate::enabled() {
            return;
        }
        for (stage, elapsed) in self.iter() {
            if !elapsed.is_zero() {
                record_stage(stage, elapsed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_stable_and_distinct() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), 10);
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(Stage::CacheLookup.name(), "cache_lookup");
    }

    #[test]
    fn timings_accumulate_merge_and_total() {
        let mut t = StageTimings::new();
        t.record(Stage::Execute, Duration::from_millis(5));
        t.record(Stage::Execute, Duration::from_millis(5));
        t.record(Stage::Compile, Duration::from_millis(2));
        assert_eq!(t.get(Stage::Execute), Duration::from_millis(10));
        assert_eq!(t.total(), Duration::from_millis(12));
        let mut other = StageTimings::new();
        other.record(Stage::Compile, Duration::from_millis(1));
        t.merge(&other);
        assert_eq!(t.get(Stage::Compile), Duration::from_millis(3));
        assert_eq!(t.iter().count(), 10);
    }

    #[test]
    fn span_timers_record_into_the_global_registry_when_enabled() {
        let before_gate = crate::enabled();
        crate::set_enabled(true);
        let span = SpanTimer::start(Stage::Group);
        let elapsed = span.stop();
        crate::set_enabled(before_gate);
        assert!(elapsed >= Duration::ZERO);
        let text = crate::global().render();
        assert!(
            text.contains("qsdd_stage_seconds_count{stage=\"group\"}"),
            "{text}"
        );
    }

    #[test]
    fn disabled_spans_do_not_touch_the_registry() {
        let before_gate = crate::enabled();
        crate::set_enabled(false);
        // A stage nothing else records: its absence proves the gate held.
        record_stage(Stage::Parse, Duration::from_millis(1));
        crate::set_enabled(before_gate);
        // (Another test may have enabled-recorded Parse; only assert when
        // the registry has no parse series at all — the strong form of
        // this check lives in the bench overhead smoke.)
        let _ = crate::global().render();
    }
}
