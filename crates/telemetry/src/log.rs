//! A structured `key=value` logger on stderr, filtered by `QSDD_LOG`.
//!
//! `QSDD_LOG` holds a single level name (`error`, `warn`, `info`,
//! `debug`, `trace`; `off`/unset disables logging). Lines look like
//!
//! ```text
//! level=info target=server.accept id=j1f3a… queue=2
//! ```
//!
//! — one line per event, machine-splittable on spaces, written with a
//! single `eprintln!` so concurrent lines do not interleave mid-line.
//! Diagnostics go to **stderr** by design: stdout is reserved for
//! results throughout the qsdd tools.

use std::sync::OnceLock;

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or dropped work.
    Error,
    /// Suspicious but handled.
    Warn,
    /// Lifecycle events (accepted jobs, completed batches).
    Info,
    /// Per-request detail.
    Debug,
    /// Everything.
    Trace,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn parse(text: &str) -> Option<Level> {
        match text.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

/// The level threshold from `QSDD_LOG`, parsed once per process.
fn threshold() -> Option<Level> {
    static THRESHOLD: OnceLock<Option<Level>> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("QSDD_LOG")
            .ok()
            .as_deref()
            .and_then(Level::parse)
    })
}

/// Whether events at `level` would be emitted.
///
/// Use this to skip building expensive log values:
///
/// ```
/// use qsdd_telemetry::{log_enabled, log_kv, Level};
/// if log_enabled(Level::Debug) {
///     log_kv(Level::Debug, "doc.example", &[("answer", "42")]);
/// }
/// ```
#[inline]
pub fn log_enabled(level: Level) -> bool {
    threshold().is_some_and(|max| level <= max)
}

/// Emits one `key=value` line on stderr if `level` passes the `QSDD_LOG`
/// filter.
///
/// Values containing whitespace are quoted. `target` names the emitting
/// component (`server.accept`, `batch.round`, ...). When the calling
/// thread is inside a traced job, the line automatically carries
/// `trace_id=… job_id=…` right after the target, so logs correlate
/// with the job's span tree.
pub fn log_kv(level: Level, target: &str, pairs: &[(&str, &str)]) {
    if !log_enabled(level) {
        return;
    }
    let mut line = format!("level={} target={}", level.name(), target);
    if let Some((trace_id, job_id)) = crate::trace::current_ids() {
        line.push_str(" trace_id=");
        line.push_str(&trace_id);
        line.push_str(" job_id=");
        line.push_str(&job_id);
    }
    for (key, value) in pairs {
        line.push(' ');
        line.push_str(key);
        line.push('=');
        if value.contains(char::is_whitespace) || value.is_empty() {
            line.push('"');
            line.push_str(&value.replace('"', "'"));
            line.push('"');
        } else {
            line.push_str(value);
        }
    }
    eprintln!("{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
    }

    #[test]
    fn level_names_parse_round_trip() {
        for level in [
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
            Level::Trace,
        ] {
            assert_eq!(Level::parse(level.name()), Some(level));
        }
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn logging_without_qsdd_log_is_disabled() {
        // The test environment does not set QSDD_LOG (and the threshold is
        // latched per process, so setting it here would race other tests).
        if std::env::var("QSDD_LOG").is_err() {
            assert!(!log_enabled(Level::Error));
        }
        // Emitting is safe either way.
        log_kv(
            Level::Trace,
            "test",
            &[("key", "value"), ("two words", "a b")],
        );
    }
}
