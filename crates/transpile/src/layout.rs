//! Output-layout bookkeeping for elided trailing SWAP gates.
//!
//! When [`crate::passes::ElideFinalSwaps`] removes a SWAP it records the
//! relabeling in a *layout* permutation instead of applying the gate:
//! `layout[q] = j` means the value of original qubit `q` lives on qubit `j`
//! of the optimized circuit. The helpers here translate basis-state indices
//! and measurement outcomes between the two frames; `qsdd-core` uses them to
//! remap histograms and observables, `qsdd-statevector` applies the same
//! convention in [`StateVector::permute_qubits`](qsdd_statevector::StateVector::permute_qubits).

/// Returns `true` when the layout maps every qubit to itself.
pub fn is_identity_layout(layout: &[usize]) -> bool {
    layout.iter().enumerate().all(|(q, &j)| q == j)
}

/// Inverts a permutation: `inverse[layout[q]] == q`.
///
/// # Panics
///
/// Panics if `layout` is not a permutation of `0..layout.len()`.
pub fn inverse_layout(layout: &[usize]) -> Vec<usize> {
    let n = layout.len();
    let mut inverse = vec![usize::MAX; n];
    for (q, &j) in layout.iter().enumerate() {
        assert!(
            j < n && inverse[j] == usize::MAX,
            "layout is not a permutation"
        );
        inverse[j] = q;
    }
    inverse
}

/// Moves bit `q` of `index` to bit position `layout[q]`.
///
/// Bit positions follow the workspace convention: qubit 0 is the most
/// significant bit. For an original-frame basis index `b`, this returns the
/// optimized-frame index `b'` with the same amplitude, because original
/// qubit `q` is stored on optimized qubit `layout[q]`.
pub fn permute_index(index: u64, layout: &[usize]) -> u64 {
    let n = layout.len();
    let mut permuted = 0u64;
    for (q, &j) in layout.iter().enumerate() {
        if index >> (n - 1 - q) & 1 == 1 {
            permuted |= 1 << (n - 1 - j);
        }
    }
    permuted
}

/// Maps an optimized-frame measurement outcome back to the original frame
/// (original bit `q` = optimized bit `layout[q]`).
pub fn restore_outcome(outcome: u64, layout: &[usize]) -> u64 {
    let n = layout.len();
    let mut restored = 0u64;
    for (q, &j) in layout.iter().enumerate() {
        if outcome >> (n - 1 - j) & 1 == 1 {
            restored |= 1 << (n - 1 - q);
        }
    }
    restored
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_layout_is_detected() {
        assert!(is_identity_layout(&[0, 1, 2]));
        assert!(!is_identity_layout(&[1, 0, 2]));
        assert!(is_identity_layout(&[]));
    }

    #[test]
    fn inverse_undoes_the_permutation() {
        let layout = vec![2, 0, 1];
        let inverse = inverse_layout(&layout);
        for q in 0..layout.len() {
            assert_eq!(inverse[layout[q]], q);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn duplicate_entries_panic() {
        inverse_layout(&[0, 0]);
    }

    #[test]
    fn permute_and_restore_are_inverse_maps() {
        let layout = vec![1, 2, 0];
        for b in 0..8u64 {
            let forward = permute_index(b, &layout);
            assert_eq!(restore_outcome(forward, &layout), b);
        }
    }

    #[test]
    fn single_swap_layout_exchanges_bits() {
        // layout for one elided swap(0, 1) over 2 qubits.
        let layout = vec![1, 0];
        assert_eq!(permute_index(0b10, &layout), 0b01);
        assert_eq!(restore_outcome(0b01, &layout), 0b10);
        assert_eq!(permute_index(0b11, &layout), 0b11);
    }
}
