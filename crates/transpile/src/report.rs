//! Per-pass gate-count accounting.

use qsdd_circuit::CircuitStats;
use std::fmt;

/// What one pass execution did to the gate count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassRecord {
    /// Name of the pass.
    pub pass: &'static str,
    /// 1-based pipeline iteration this execution belongs to.
    pub iteration: usize,
    /// Unitary gate count before the pass ran.
    pub gates_before: usize,
    /// Unitary gate count after the pass ran.
    pub gates_after: usize,
}

impl PassRecord {
    /// Number of gates the pass removed (passes never add gates).
    pub fn removed(&self) -> usize {
        self.gates_before.saturating_sub(self.gates_after)
    }
}

/// Summary of a full transpilation: original/optimized statistics plus one
/// [`PassRecord`] per pass execution.
#[derive(Clone, Debug, Default)]
pub struct TranspileReport {
    /// Statistics of the input circuit.
    pub original: CircuitStats,
    /// Statistics of the optimized circuit.
    pub optimized: CircuitStats,
    /// Per-pass deltas, in execution order.
    pub passes: Vec<PassRecord>,
    /// Number of pipeline iterations performed.
    pub iterations: usize,
}

impl TranspileReport {
    /// Total number of gates removed across all passes.
    pub fn total_removed(&self) -> usize {
        self.original
            .gate_count
            .saturating_sub(self.optimized.gate_count)
    }

    /// Fraction of the original gate count that was removed (0 for an empty
    /// circuit).
    pub fn reduction(&self) -> f64 {
        if self.original.gate_count == 0 {
            0.0
        } else {
            self.total_removed() as f64 / self.original.gate_count as f64
        }
    }
}

impl fmt::Display for TranspileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "transpiled: {} -> {} gates ({:.1} % removed), depth {} -> {}, {} iteration(s)",
            self.original.gate_count,
            self.optimized.gate_count,
            100.0 * self.reduction(),
            self.original.depth,
            self.optimized.depth,
            self.iterations,
        )?;
        for record in &self.passes {
            if record.removed() > 0 {
                writeln!(
                    f,
                    "  [iter {}] {:<24} -{} gates ({} -> {})",
                    record.iteration,
                    record.pass,
                    record.removed(),
                    record.gates_before,
                    record.gates_after,
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_reports_removed_gates() {
        let record = PassRecord {
            pass: "probe",
            iteration: 1,
            gates_before: 10,
            gates_after: 7,
        };
        assert_eq!(record.removed(), 3);
    }

    #[test]
    fn report_totals_and_reduction() {
        let report = TranspileReport {
            original: CircuitStats {
                gate_count: 20,
                ..CircuitStats::default()
            },
            optimized: CircuitStats {
                gate_count: 15,
                ..CircuitStats::default()
            },
            passes: vec![],
            iterations: 2,
        };
        assert_eq!(report.total_removed(), 5);
        assert!((report.reduction() - 0.25).abs() < 1e-12);
        let text = report.to_string();
        assert!(text.contains("20 -> 15"));
    }

    #[test]
    fn empty_circuit_has_zero_reduction() {
        let report = TranspileReport::default();
        assert_eq!(report.reduction(), 0.0);
    }
}
