//! Equivalence checking of original vs. optimized circuits.
//!
//! Correctness of the pass pipeline is enforced by construction *and*
//! checked by simulation: the optimized circuit, with the recorded output
//! layout applied, must prepare the same statevector as the original (up to
//! global phase), i.e. fidelity ≈ 1. The check runs on the dense
//! `qsdd-statevector` back-end, so it is exact up to floating-point
//! round-off — but also exponential in the qubit count; keep it to circuits
//! of at most ~20 qubits (the test suite does).

use qsdd_circuit::Circuit;
use qsdd_statevector::run_noiseless;

use crate::manager::{transpile, TranspileResult};
use crate::pass::OptLevel;

/// Fidelity below which [`verify`] rejects a transpilation. A correct pass
/// pipeline stays within floating-point round-off of 1.
pub const DEFAULT_FIDELITY_TOLERANCE: f64 = 1e-9;

/// A transpilation that failed cross-checking.
#[derive(Clone, Debug, PartialEq)]
pub struct VerificationError {
    /// The measured fidelity between original and optimized circuit.
    pub fidelity: f64,
    /// The tolerance that was violated (`fidelity < 1 - tolerance`).
    pub tolerance: f64,
}

impl std::fmt::Display for VerificationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "optimized circuit diverges from the original: fidelity {} < 1 - {}",
            self.fidelity, self.tolerance
        )
    }
}

impl std::error::Error for VerificationError {}

/// Statevector fidelity `|<original|optimized>|²` between the original
/// circuit and a transpilation of it, with the output layout applied.
///
/// Measurements and resets are ignored (the unitary part is compared),
/// matching how the pass pipeline treats them as optimization fences.
///
/// # Panics
///
/// Panics if the circuit is wider than 30 qubits (dense statevector limit).
pub fn fidelity(original: &Circuit, result: &TranspileResult) -> f64 {
    let reference = run_noiseless(original);
    let optimized = run_noiseless(&result.circuit).permute_qubits(&result.output_layout);
    reference.fidelity(&optimized)
}

/// Cross-checks a transpilation, returning the measured fidelity or a
/// [`VerificationError`] when it falls below `1 - tolerance`.
pub fn verify(
    original: &Circuit,
    result: &TranspileResult,
    tolerance: f64,
) -> Result<f64, VerificationError> {
    let fidelity = fidelity(original, result);
    if fidelity < 1.0 - tolerance {
        Err(VerificationError {
            fidelity,
            tolerance,
        })
    } else {
        Ok(fidelity)
    }
}

/// Transpiles and cross-checks in one step: the optimized circuit is only
/// returned when its fidelity with the original is at least
/// `1 - `[`DEFAULT_FIDELITY_TOLERANCE`].
pub fn transpile_verified(
    circuit: &Circuit,
    level: OptLevel,
) -> Result<TranspileResult, VerificationError> {
    let result = transpile(circuit, level);
    verify(circuit, &result, DEFAULT_FIDELITY_TOLERANCE)?;
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::generators::{ghz, grover, qft, w_state};

    #[test]
    fn generators_verify_at_every_level() {
        for level in OptLevel::ALL {
            for circuit in [ghz(6), qft(8), grover(4, 9, None), w_state(5)] {
                let result = transpile(&circuit, level);
                let f = verify(&circuit, &result, DEFAULT_FIDELITY_TOLERANCE)
                    .unwrap_or_else(|e| panic!("{} at {level}: {e}", circuit.name()));
                assert!(f > 1.0 - 1e-9);
            }
        }
    }

    #[test]
    fn transpile_verified_returns_the_result() {
        let circuit = qft(6);
        let result = transpile_verified(&circuit, OptLevel::O2).unwrap();
        assert!(result.circuit.stats().gate_count < circuit.stats().gate_count);
    }

    #[test]
    fn a_wrong_transpilation_is_rejected() {
        let mut original = Circuit::new(2);
        original.h(0).cx(0, 1);
        let mut broken = transpile(&original, OptLevel::O0);
        broken.circuit.x(0); // corrupt the "optimized" circuit
        let err = verify(&original, &broken, DEFAULT_FIDELITY_TOLERANCE).unwrap_err();
        assert!(err.fidelity < 0.9);
        assert!(err.to_string().contains("diverges"));
    }
}
