//! # qsdd-transpile — circuit optimization for the stochastic hot path
//!
//! Stochastic quantum circuit simulation (Grurl, Kueng, Fuß, Wille, DATE
//! 2021) runs the *same* circuit thousands of times to form Monte-Carlo
//! estimates, so every gate removed from the circuit is saved once **per
//! shot**. This crate provides the pre-execution optimization pipeline:
//! a [`PassManager`] drives [`Pass`]es over a
//! [`Circuit`](qsdd_circuit::Circuit) at a chosen [`OptLevel`], reporting
//! per-pass gate-count deltas in a [`TranspileReport`].
//!
//! ## Passes
//!
//! | Pass | Effect |
//! |------|--------|
//! | [`passes::CancelInversePairs`] | adjacent gate/inverse pairs annihilate (`H·H`, `X·X`, `CX·CX`, `S·S†`, `T·T†`, `Swap·Swap`, ...) |
//! | [`passes::MergeRotations`] | adjacent same-axis `Rx`/`Ry`/`Rz`/`Phase` rotations sum their angles; near-zero sums drop |
//! | [`passes::FuseSingleQubitGates`] | runs of uncontrolled single-qubit gates collapse into one `U3` via [`Matrix2`](qsdd_dd::Matrix2) products |
//! | [`passes::RemoveIdentities`] | gates whose matrix is the identity disappear |
//! | [`passes::ElideFinalSwaps`] | trailing SWAPs become a recorded output relabeling ([`TranspileResult::output_layout`]) |
//!
//! ## Correctness
//!
//! Every pass preserves circuit semantics up to global phase; the
//! [`verify`] module cross-checks optimized against original circuits for
//! statevector fidelity ≈ 1 using `qsdd-statevector`, and the workspace
//! test suite runs this check over all circuit generators and random
//! circuits.
//!
//! ## Quick start
//!
//! ```
//! use qsdd_circuit::generators::qft;
//! use qsdd_transpile::{transpile, verify, OptLevel};
//!
//! let circuit = qft(10);
//! let result = transpile(&circuit, OptLevel::O2);
//!
//! // Fewer gates to execute on every one of the thousands of shots ...
//! assert!(result.circuit.stats().gate_count < circuit.stats().gate_count);
//! println!("{}", result.report);
//!
//! // ... and still exactly the same circuit semantics.
//! let fidelity = verify::fidelity(&circuit, &result);
//! assert!(fidelity > 1.0 - 1e-9);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod manager;
mod pass;
mod report;

pub mod layout;
pub mod passes;
pub mod verify;

pub use manager::{transpile, PassManager, TranspileResult};
pub use pass::{OptLevel, Pass, TranspileState};
pub use report::{PassRecord, TranspileReport};
pub use verify::{transpile_verified, VerificationError, DEFAULT_FIDELITY_TOLERANCE};
