//! The pass pipeline driver.

use qsdd_circuit::Circuit;

use crate::pass::{OptLevel, Pass, TranspileState};
use crate::passes::{
    CancelInversePairs, ElideFinalSwaps, FuseSingleQubitGates, MergeRotations, RemoveIdentities,
};
use crate::report::{PassRecord, TranspileReport};

/// Everything a transpilation produces: the optimized circuit, the output
/// layout left by SWAP elision, and the per-pass accounting.
#[derive(Clone, Debug)]
pub struct TranspileResult {
    /// The optimized circuit.
    pub circuit: Circuit,
    /// Output layout: the value of original qubit `q` lives on optimized
    /// qubit `layout[q]`. Identity unless trailing SWAPs were elided; see
    /// [`crate::layout`] for the remapping helpers.
    pub output_layout: Vec<usize>,
    /// Per-pass gate-count deltas.
    pub report: TranspileReport,
}

impl TranspileResult {
    /// Returns `true` when the output layout is the identity (no relabeling
    /// needed when interpreting outcomes).
    pub fn has_identity_layout(&self) -> bool {
        crate::layout::is_identity_layout(&self.output_layout)
    }
}

/// An ordered pipeline of [`Pass`]es, optionally iterated to a fixed point.
///
/// # Examples
///
/// ```
/// use qsdd_circuit::Circuit;
/// use qsdd_transpile::{OptLevel, PassManager};
///
/// let mut redundant = Circuit::new(2);
/// redundant.h(0).h(0).cx(0, 1).cx(0, 1).x(1);
///
/// let result = PassManager::for_level(OptLevel::O2).run(&redundant);
/// assert_eq!(result.circuit.stats().gate_count, 1);
/// assert_eq!(result.report.total_removed(), 4);
/// ```
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    max_iterations: usize,
}

impl PassManager {
    /// An empty pipeline (the identity transpilation).
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            max_iterations: 1,
        }
    }

    /// The standard pipeline for an optimization level.
    pub fn for_level(level: OptLevel) -> Self {
        let mut manager = PassManager::new();
        match level {
            OptLevel::O0 => {}
            OptLevel::O1 => {
                manager
                    .add_pass(Box::new(CancelInversePairs))
                    .add_pass(Box::new(MergeRotations::default()))
                    .add_pass(Box::new(RemoveIdentities::default()));
            }
            OptLevel::O2 => {
                manager
                    .add_pass(Box::new(CancelInversePairs))
                    .add_pass(Box::new(MergeRotations::default()))
                    .add_pass(Box::new(FuseSingleQubitGates::default()))
                    .add_pass(Box::new(RemoveIdentities::default()))
                    .add_pass(Box::new(ElideFinalSwaps));
                manager.max_iterations = 4;
            }
        }
        manager
    }

    /// Appends a pass to the pipeline.
    pub fn add_pass(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Sets how often the whole pipeline repeats (it stops early once an
    /// iteration removes no gate).
    pub fn with_max_iterations(mut self, iterations: usize) -> Self {
        self.max_iterations = iterations.max(1);
        self
    }

    /// Names of the passes in execution order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs the pipeline over a circuit.
    pub fn run(&self, circuit: &Circuit) -> TranspileResult {
        let mut state = TranspileState::from_circuit(circuit);
        let mut report = TranspileReport {
            original: circuit.stats(),
            ..TranspileReport::default()
        };
        for iteration in 1..=self.max_iterations {
            let at_start = state.gate_count();
            for pass in &self.passes {
                let gates_before = state.gate_count();
                pass.run(&mut state);
                let gates_after = state.gate_count();
                report.passes.push(PassRecord {
                    pass: pass.name(),
                    iteration,
                    gates_before,
                    gates_after,
                });
            }
            report.iterations = iteration;
            if state.gate_count() == at_start {
                break;
            }
        }
        let output_layout = state.layout.clone();
        let circuit = state.into_circuit();
        report.optimized = circuit.stats();
        TranspileResult {
            circuit,
            output_layout,
            report,
        }
    }
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager::new()
    }
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.pass_names())
            .field("max_iterations", &self.max_iterations)
            .finish()
    }
}

/// Transpiles a circuit at the given optimization level with the standard
/// pipeline.
///
/// # Examples
///
/// ```
/// use qsdd_circuit::generators::qft;
/// use qsdd_transpile::{transpile, OptLevel};
///
/// let result = transpile(&qft(10), OptLevel::O2);
/// // The QFT's trailing qubit-reversal swaps are elided.
/// assert!(result.circuit.stats().gate_count < qft(10).stats().gate_count);
/// assert!(!result.has_identity_layout());
/// ```
pub fn transpile(circuit: &Circuit, level: OptLevel) -> TranspileResult {
    PassManager::for_level(level).run(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::generators::{ghz, grover, qft};

    #[test]
    fn o0_is_the_identity_transpilation() {
        let circuit = qft(6);
        let result = transpile(&circuit, OptLevel::O0);
        assert_eq!(result.circuit, circuit);
        assert!(result.has_identity_layout());
        assert_eq!(result.report.total_removed(), 0);
    }

    #[test]
    fn pipeline_iterates_until_fixed_point() {
        // Fusing t·tdg-sandwiched Hadamards needs a second iteration:
        // the fusion pass first produces identities the cleanup removes,
        // re-exposing new cancellation opportunities.
        let mut c = Circuit::new(1);
        c.h(0).t(0).tdg(0).h(0);
        let result = transpile(&c, OptLevel::O2);
        assert_eq!(result.circuit.stats().gate_count, 0);
    }

    #[test]
    fn qft_reduces_at_o2() {
        let circuit = qft(10);
        let result = transpile(&circuit, OptLevel::O2);
        let before = circuit.stats().gate_count;
        let after = result.circuit.stats().gate_count;
        assert!(after < before, "no reduction: {before} -> {after}");
        // Exactly the 5 reversal swaps go away.
        assert_eq!(before - after, 5);
        assert_eq!(result.report.total_removed(), 5);
    }

    #[test]
    fn grover_reduces_at_o2() {
        let circuit = grover(5, 11, None);
        let result = transpile(&circuit, OptLevel::O2);
        let before = circuit.stats().gate_count;
        let after = result.circuit.stats().gate_count;
        assert!(after < before, "no reduction: {before} -> {after}");
    }

    #[test]
    fn ghz_is_already_minimal() {
        let circuit = ghz(8);
        let result = transpile(&circuit, OptLevel::O2);
        assert_eq!(
            result.circuit.stats().gate_count,
            circuit.stats().gate_count
        );
    }

    #[test]
    fn report_names_every_pass_execution() {
        let result = transpile(&qft(4), OptLevel::O1);
        let names: Vec<_> = result.report.passes.iter().map(|r| r.pass).collect();
        assert_eq!(
            names,
            vec![
                "cancel-inverse-pairs",
                "merge-rotations",
                "remove-identities"
            ]
        );
        assert_eq!(result.report.iterations, 1);
    }

    #[test]
    fn gate_count_never_increases() {
        for level in OptLevel::ALL {
            for circuit in [ghz(6), qft(7), grover(4, 3, Some(2))] {
                let result = transpile(&circuit, level);
                assert!(
                    result.circuit.stats().gate_count <= circuit.stats().gate_count,
                    "{level} increased gates on {}",
                    circuit.name()
                );
            }
        }
    }
}
