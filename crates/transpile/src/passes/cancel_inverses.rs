//! Cancellation of adjacent gate/inverse pairs.

use qsdd_circuit::Operation;

use crate::pass::{last_conflict, same_controls, Pass, TranspileState};

/// Cancels adjacent inverse pairs: `H·H`, `X·X`, `Y·Y`, `Z·Z`, `CX·CX`,
/// `S·S†`, `T·T†`, `Rz(θ)·Rz(−θ)`, `Swap·Swap`, and every other pair where
/// the second gate is the inverse of the first on the same target and
/// control set.
///
/// [`Gate::inverse`](qsdd_circuit::Gate::inverse) is only guaranteed up to
/// a *global* phase (e.g. `Sx.inverse()` is `e^{iπ/4}·Sx†`). A global phase
/// is harmless for uncontrolled pairs, but controls turn it into a relative
/// phase, so controlled pairs additionally require the product of the two
/// matrices to be the exact identity before they cancel.
///
/// The scan looks through operations on disjoint qubits (they commute), so
/// `H(0) X(1) H(0)` still cancels the Hadamards. Cancellation cascades
/// within a single sweep: `H X X H` reduces to nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct CancelInversePairs;

/// Whether dropping the pair `prev; gate` (same target and controls) is
/// semantics-preserving.
fn cancels_exactly(prev: &qsdd_circuit::Gate, gate: &qsdd_circuit::Gate, controlled: bool) -> bool {
    if prev.inverse() != *gate {
        return false;
    }
    if !controlled {
        return true;
    }
    match (prev.matrix(), gate.matrix()) {
        // Controlled pair: the product must be the identity exactly, not
        // just up to phase.
        (Some(prev_matrix), Some(matrix)) => matrix.matmul(&prev_matrix).is_identity(1e-10),
        _ => false,
    }
}

impl Pass for CancelInversePairs {
    fn name(&self) -> &'static str {
        "cancel-inverse-pairs"
    }

    fn run(&self, state: &mut TranspileState) {
        let mut out: Vec<Operation> = Vec::with_capacity(state.ops.len());
        for op in state.ops.drain(..) {
            let cancelled = match &op {
                Operation::Gate {
                    gate,
                    target,
                    controls,
                } => last_conflict(&out, &op.qubits()).is_some_and(|idx| {
                    let matches = matches!(
                        &out[idx],
                        Operation::Gate {
                            gate: prev_gate,
                            target: prev_target,
                            controls: prev_controls,
                        } if prev_target == target
                            && same_controls(prev_controls, controls)
                            && cancels_exactly(prev_gate, gate, !controls.is_empty())
                    );
                    if matches {
                        out.remove(idx);
                    }
                    matches
                }),
                Operation::Swap { a, b } => last_conflict(&out, &[*a, *b]).is_some_and(|idx| {
                    let matches = matches!(
                        &out[idx],
                        Operation::Swap { a: pa, b: pb }
                            if (pa, pb) == (a, b) || (pb, pa) == (a, b)
                    );
                    if matches {
                        out.remove(idx);
                    }
                    matches
                }),
                _ => false,
            };
            if !cancelled {
                out.push(op);
            }
        }
        state.ops = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::{Circuit, Gate};

    fn run(circuit: &Circuit) -> Vec<Operation> {
        let mut state = TranspileState::from_circuit(circuit);
        CancelInversePairs.run(&mut state);
        state.ops
    }

    #[test]
    fn self_inverse_pairs_annihilate() {
        let mut c = Circuit::new(2);
        c.h(0)
            .h(0)
            .x(1)
            .x(1)
            .cx(0, 1)
            .cx(0, 1)
            .swap(0, 1)
            .swap(1, 0);
        assert!(run(&c).is_empty());
    }

    #[test]
    fn adjoint_pairs_annihilate() {
        let mut c = Circuit::new(1);
        c.s(0).sdg(0).t(0).tdg(0).rz(0.7, 0).rz(-0.7, 0);
        assert!(run(&c).is_empty());
    }

    #[test]
    fn cancellation_cascades() {
        let mut c = Circuit::new(1);
        c.h(0).x(0).x(0).h(0);
        assert!(run(&c).is_empty());
    }

    #[test]
    fn disjoint_qubits_are_looked_through() {
        let mut c = Circuit::new(2);
        c.h(0).x(1).h(0);
        let ops = run(&c);
        assert_eq!(ops.len(), 1);
        assert!(matches!(
            &ops[0],
            Operation::Gate {
                gate: Gate::X,
                target: 1,
                ..
            }
        ));
    }

    #[test]
    fn intervening_entangler_blocks_cancellation() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0);
        assert_eq!(run(&c).len(), 3);
    }

    #[test]
    fn phase_inexact_inverse_cancels_only_uncontrolled() {
        // Sx.inverse() is Sx† only up to the global phase e^{iπ/4}: fine to
        // drop without controls, wrong (a relative phase) with controls.
        let inverse = Gate::Sx.inverse();
        let mut uncontrolled = Circuit::new(1);
        uncontrolled.sx(0).gate(inverse, 0);
        assert!(run(&uncontrolled).is_empty());

        let mut controlled = Circuit::new(2);
        controlled
            .controlled_gate(Gate::Sx, &[0], 1)
            .controlled_gate(inverse, &[0], 1);
        assert_eq!(run(&controlled).len(), 2);
    }

    #[test]
    fn exact_controlled_inverses_still_cancel() {
        let mut c = Circuit::new(2);
        c.crz(0.7, 0, 1)
            .crz(-0.7, 0, 1)
            .cp(0.3, 0, 1)
            .cp(-0.3, 0, 1);
        assert!(run(&c).is_empty());
    }

    #[test]
    fn different_control_sets_do_not_cancel() {
        let mut c = Circuit::new(3);
        c.cx(0, 2).ccx(0, 1, 2);
        assert_eq!(run(&c).len(), 2);
    }

    #[test]
    fn barrier_blocks_cancellation() {
        let mut c = Circuit::new(1);
        c.h(0).barrier().h(0);
        assert_eq!(run(&c).len(), 3);
    }

    #[test]
    fn measurement_blocks_cancellation() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0, 0).h(0);
        assert_eq!(run(&c).len(), 3);
    }
}
