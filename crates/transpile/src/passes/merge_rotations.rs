//! Merging of adjacent same-axis rotations.

use std::f64::consts::TAU;

use qsdd_circuit::{Gate, Operation};

use crate::pass::{last_conflict, same_controls, Pass, TranspileState};

/// The rotation families the pass merges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Axis {
    Rx,
    Ry,
    Rz,
    Phase,
}

fn axis_of(gate: &Gate) -> Option<(Axis, f64)> {
    match *gate {
        Gate::Rx(theta) => Some((Axis::Rx, theta)),
        Gate::Ry(theta) => Some((Axis::Ry, theta)),
        Gate::Rz(theta) => Some((Axis::Rz, theta)),
        Gate::Phase(lambda) => Some((Axis::Phase, lambda)),
        _ => None,
    }
}

fn gate_of(axis: Axis, angle: f64) -> Gate {
    match axis {
        Axis::Rx => Gate::Rx(angle),
        Axis::Ry => Gate::Ry(angle),
        Axis::Rz => Gate::Rz(angle),
        Axis::Phase => Gate::Phase(angle),
    }
}

/// Merges adjacent `Rx`/`Ry`/`Rz`/`Phase` gates on the same qubit with the
/// same control set by summing their angles (`Rz(a)·Rz(b) = Rz(a+b)`
/// exactly). Sums that are a no-op drop entirely.
///
/// Dropping is phase-aware: a `Phase` gate drops when its angle is `0 mod
/// 2π`; an uncontrolled rotation drops when its angle is `0 mod 2π` (at
/// `2π` the rotation is `−I`, a global phase); a *controlled* rotation
/// needs `0 mod 4π`, because the `−1` at `2π` is a relative phase there.
#[derive(Clone, Copy, Debug)]
pub struct MergeRotations {
    /// Angles closer to a no-op than this drop. The fidelity error of a
    /// drop is `O(eps²)`, so the default `1e-9` stays far below the
    /// verification tolerance.
    pub eps: f64,
}

impl Default for MergeRotations {
    fn default() -> Self {
        MergeRotations { eps: 1e-9 }
    }
}

impl MergeRotations {
    fn is_noop(&self, axis: Axis, angle: f64, controlled: bool) -> bool {
        let period = match axis {
            Axis::Phase => TAU,
            _ if controlled => 2.0 * TAU,
            _ => TAU,
        };
        let remainder = angle.rem_euclid(period);
        remainder < self.eps || period - remainder < self.eps
    }
}

impl Pass for MergeRotations {
    fn name(&self) -> &'static str {
        "merge-rotations"
    }

    fn run(&self, state: &mut TranspileState) {
        let mut out: Vec<Operation> = Vec::with_capacity(state.ops.len());
        for op in state.ops.drain(..) {
            let Operation::Gate {
                gate,
                target,
                controls,
            } = &op
            else {
                out.push(op);
                continue;
            };
            let Some((axis, angle)) = axis_of(gate) else {
                out.push(op);
                continue;
            };
            let mut merged_angle = angle;
            if let Some(idx) = last_conflict(&out, &op.qubits()) {
                if let Operation::Gate {
                    gate: prev_gate,
                    target: prev_target,
                    controls: prev_controls,
                } = &out[idx]
                {
                    if prev_target == target && same_controls(prev_controls, controls) {
                        if let Some((prev_axis, prev_angle)) = axis_of(prev_gate) {
                            if prev_axis == axis {
                                merged_angle += prev_angle;
                                out.remove(idx);
                            }
                        }
                    }
                }
            }
            if !self.is_noop(axis, merged_angle, !controls.is_empty()) {
                out.push(Operation::Gate {
                    gate: gate_of(axis, merged_angle),
                    target: *target,
                    controls: controls.clone(),
                });
            }
        }
        state.ops = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::Circuit;
    use std::f64::consts::PI;

    fn run(circuit: &Circuit) -> Vec<Operation> {
        let mut state = TranspileState::from_circuit(circuit);
        MergeRotations::default().run(&mut state);
        state.ops
    }

    fn angle_of(op: &Operation) -> f64 {
        match op {
            Operation::Gate { gate, .. } => axis_of(gate).expect("rotation").1,
            other => panic!("not a rotation: {other:?}"),
        }
    }

    #[test]
    fn same_axis_angles_sum() {
        let mut c = Circuit::new(1);
        c.rz(0.3, 0).rz(0.4, 0);
        let ops = run(&c);
        assert_eq!(ops.len(), 1);
        assert!((angle_of(&ops[0]) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn merging_cascades_over_runs() {
        let mut c = Circuit::new(1);
        c.rx(0.1, 0).rx(0.2, 0).rx(0.3, 0);
        let ops = run(&c);
        assert_eq!(ops.len(), 1);
        assert!((angle_of(&ops[0]) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn opposite_angles_drop() {
        let mut c = Circuit::new(1);
        c.ry(1.2, 0).ry(-1.2, 0).p(0.8, 0).p(-0.8, 0);
        assert!(run(&c).is_empty());
    }

    #[test]
    fn different_axes_do_not_merge() {
        let mut c = Circuit::new(1);
        c.rx(0.3, 0).rz(0.3, 0);
        assert_eq!(run(&c).len(), 2);
    }

    #[test]
    fn disjoint_qubits_are_looked_through() {
        let mut c = Circuit::new(2);
        c.rz(0.2, 0).x(1).rz(0.5, 0);
        let ops = run(&c);
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn uncontrolled_two_pi_rotation_drops_but_controlled_survives() {
        let mut c = Circuit::new(2);
        c.rz(PI, 0).rz(PI, 0); // 2π: global phase −1, droppable
        c.crz(PI, 0, 1);
        c.crz(PI, 0, 1); // controlled 2π: relative phase, must stay
        let ops = run(&c);
        assert_eq!(ops.len(), 1);
        assert!((angle_of(&ops[0]) - TAU).abs() < 1e-12);
        assert!(matches!(
            &ops[0],
            Operation::Gate { controls, .. } if controls.len() == 1
        ));
    }

    #[test]
    fn controlled_four_pi_rotation_drops() {
        let mut c = Circuit::new(2);
        c.crz(TAU, 0, 1).crz(TAU, 0, 1);
        assert!(run(&c).is_empty());
    }

    #[test]
    fn phase_two_pi_drops_even_controlled() {
        let mut c = Circuit::new(2);
        c.cp(PI, 0, 1).cp(PI, 0, 1);
        assert!(run(&c).is_empty());
    }

    #[test]
    fn mismatched_controls_do_not_merge() {
        let mut c = Circuit::new(2);
        c.rz(0.3, 1).crz(0.4, 0, 1);
        assert_eq!(run(&c).len(), 2);
    }
}
