//! The optimization passes.
//!
//! Every pass is a peephole rewrite over the operation list that preserves
//! circuit semantics (checked by [`crate::verify`]):
//!
//! * [`CancelInversePairs`] — adjacent gate/inverse pairs annihilate
//!   (`H·H`, `X·X`, `CX·CX`, `S·S†`, `T·T†`, `Swap·Swap`, ...),
//! * [`MergeRotations`] — adjacent rotations about the same axis on the
//!   same qubit sum their angles; near-zero sums drop,
//! * [`FuseSingleQubitGates`] — runs of uncontrolled single-qubit gates
//!   collapse into one `U3` via dense 2x2 matrix products,
//! * [`RemoveIdentities`] — gates whose matrix is the identity (identity
//!   gates, zero-angle rotations) disappear,
//! * [`ElideFinalSwaps`] — trailing SWAP gates become a recorded output
//!   relabeling instead of executed gates.
//!
//! "Adjacent" always means adjacent *on the involved qubits*: operations on
//! disjoint qubits commute and are looked through, while barriers fence off
//! all optimization.

mod cancel_inverses;
mod elide_final_swaps;
mod fuse_single_qubit;
mod merge_rotations;
mod remove_identities;

pub use cancel_inverses::CancelInversePairs;
pub use elide_final_swaps::ElideFinalSwaps;
pub use fuse_single_qubit::FuseSingleQubitGates;
pub use merge_rotations::MergeRotations;
pub use remove_identities::RemoveIdentities;
