//! Fusion of single-qubit gate runs into one `U3`.

use std::f64::consts::PI;

use qsdd_circuit::{Gate, Operation};
use qsdd_dd::Matrix2;

use crate::pass::{last_conflict, Pass, TranspileState};

/// Collapses runs of uncontrolled single-qubit gates on one qubit into a
/// single gate by multiplying their dense 2x2 matrices ([`Matrix2`]) and
/// re-synthesising the product as `U3(θ, φ, λ)` (or `Phase(λ)` when the
/// product is diagonal, or nothing when it is the identity up to a global
/// phase).
///
/// Only uncontrolled gates fuse: dropping the global phase of the product
/// is safe exactly when no control ever turns it into a relative phase.
/// Operations on other qubits are looked through; entanglers, measurements
/// and barriers end a run.
#[derive(Clone, Copy, Debug)]
pub struct FuseSingleQubitGates {
    /// Tolerance for recognising diagonal/identity products.
    pub eps: f64,
}

impl Default for FuseSingleQubitGates {
    fn default() -> Self {
        FuseSingleQubitGates { eps: 1e-10 }
    }
}

/// Re-synthesises a unitary 2x2 matrix as a gate, up to global phase.
/// Returns `None` when the matrix is the identity up to phase.
pub(crate) fn matrix_to_gate(m: &Matrix2, eps: f64) -> Option<Gate> {
    if m.is_identity_up_to_phase(eps) {
        return None;
    }
    let c = m.entry(0, 0).abs();
    let s = m.entry(1, 0).abs();
    if s < eps {
        // Diagonal: a pure relative phase diag(1, e^{iλ}) up to global phase.
        let lambda = wrap_angle(m.entry(1, 1).arg() - m.entry(0, 0).arg());
        if lambda.abs() < eps {
            return None;
        }
        return Some(Gate::Phase(lambda));
    }
    if c < eps {
        // Anti-diagonal: U3(π, 0, λ) = [[0, −e^{iλ}], [1, 0]] up to phase.
        let alpha = m.entry(1, 0).arg();
        let lambda = wrap_angle((-m.entry(0, 1)).arg() - alpha);
        return Some(Gate::U3(PI, 0.0, lambda));
    }
    // General case: factor out the phase of m00 so the U3 form
    // [[cos, −e^{iλ}sin], [e^{iφ}sin, e^{i(φ+λ)}cos]] applies.
    let alpha = m.entry(0, 0).arg();
    let theta = 2.0 * s.atan2(c);
    let phi = wrap_angle(m.entry(1, 0).arg() - alpha);
    let lambda = wrap_angle((-m.entry(0, 1)).arg() - alpha);
    Some(Gate::U3(theta, phi, lambda))
}

/// Wraps an angle into `(-π, π]`.
fn wrap_angle(angle: f64) -> f64 {
    let wrapped = angle.rem_euclid(2.0 * PI);
    if wrapped > PI {
        wrapped - 2.0 * PI
    } else {
        wrapped
    }
}

impl Pass for FuseSingleQubitGates {
    fn name(&self) -> &'static str {
        "fuse-single-qubit"
    }

    fn run(&self, state: &mut TranspileState) {
        let mut out: Vec<Operation> = Vec::with_capacity(state.ops.len());
        for op in state.ops.drain(..) {
            let Operation::Gate {
                gate,
                target,
                controls,
            } = &op
            else {
                out.push(op);
                continue;
            };
            if !controls.is_empty() || gate.arity() != 1 {
                out.push(op);
                continue;
            }
            let matrix = gate.matrix().expect("single-qubit gates have a matrix");
            let prev_matrix = last_conflict(&out, &[*target]).and_then(|idx| match &out[idx] {
                Operation::Gate {
                    gate: prev_gate,
                    target: prev_target,
                    controls: prev_controls,
                } if prev_target == target
                    && prev_controls.is_empty()
                    && prev_gate.arity() == 1 =>
                {
                    let m = prev_gate.matrix().expect("single-qubit gate");
                    out.remove(idx);
                    Some(m)
                }
                _ => None,
            });
            let Some(prev_matrix) = prev_matrix else {
                out.push(op);
                continue;
            };
            // Circuit order: prev first, then the current gate.
            let product = matrix.matmul(&prev_matrix);
            if let Some(fused) = matrix_to_gate(&product, self.eps) {
                out.push(Operation::Gate {
                    gate: fused,
                    target: *target,
                    controls: Vec::new(),
                });
            }
        }
        state.ops = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::Circuit;
    use qsdd_dd::Complex;

    fn run(circuit: &Circuit) -> Vec<Operation> {
        let mut state = TranspileState::from_circuit(circuit);
        FuseSingleQubitGates::default().run(&mut state);
        state.ops
    }

    /// The fused circuit must implement the same single-qubit unitary as
    /// the original sequence, up to global phase.
    fn assert_same_unitary(original: &[Gate], fused: &[Operation]) {
        let product = |gates: &[Matrix2]| {
            gates
                .iter()
                .fold(Matrix2::identity(), |acc, m| m.matmul(&acc))
        };
        let lhs = product(
            &original
                .iter()
                .map(|g| g.matrix().unwrap())
                .collect::<Vec<_>>(),
        );
        let rhs = product(
            &fused
                .iter()
                .map(|op| match op {
                    Operation::Gate { gate, .. } => gate.matrix().unwrap(),
                    other => panic!("unexpected op {other:?}"),
                })
                .collect::<Vec<_>>(),
        );
        // Compare up to global phase by aligning the largest entry.
        let phase = align_phase(&lhs, &rhs);
        assert!(
            lhs.approx_eq(&rhs.scale(phase), 1e-9),
            "unitaries differ:\n{lhs:?}\nvs\n{rhs:?}"
        );
    }

    fn align_phase(a: &Matrix2, b: &Matrix2) -> Complex {
        for r in 0..2 {
            for c in 0..2 {
                if b.entry(r, c).abs() > 0.5 {
                    return a.entry(r, c) * b.entry(r, c).recip();
                }
            }
        }
        Complex::ONE
    }

    #[test]
    fn run_of_gates_becomes_one_gate() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).h(0).s(0).x(0);
        let ops = run(&c);
        assert_eq!(ops.len(), 1);
        assert_same_unitary(&[Gate::H, Gate::T, Gate::H, Gate::S, Gate::X], &ops);
    }

    #[test]
    fn identity_products_vanish() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        assert!(run(&c).is_empty());
        let mut c = Circuit::new(1);
        c.x(0).y(0).z(0); // = iI, global phase only
        assert!(run(&c).is_empty());
    }

    #[test]
    fn diagonal_products_become_a_phase_gate() {
        let mut c = Circuit::new(1);
        c.t(0).t(0);
        let ops = run(&c);
        assert_eq!(ops.len(), 1);
        assert!(matches!(
            &ops[0],
            Operation::Gate { gate: Gate::Phase(l), .. } if (l - std::f64::consts::FRAC_PI_2).abs() < 1e-12
        ));
    }

    #[test]
    fn single_gates_are_left_alone() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(1);
        let ops = run(&c);
        assert_eq!(ops.len(), 3);
        assert!(matches!(&ops[0], Operation::Gate { gate: Gate::H, .. }));
    }

    #[test]
    fn entangler_ends_a_run() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0);
        assert_eq!(run(&c).len(), 3);
    }

    #[test]
    fn runs_fuse_across_disjoint_qubits() {
        let mut c = Circuit::new(2);
        c.h(0).x(1).t(0);
        let ops = run(&c);
        // h(0) and t(0) fuse despite the interleaved x(1).
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn anti_diagonal_products_round_trip() {
        let gates = [Gate::X, Gate::Phase(0.4)];
        let mut c = Circuit::new(1);
        for g in gates {
            c.gate(g, 0);
        }
        let ops = run(&c);
        assert_eq!(ops.len(), 1);
        assert_same_unitary(&gates, &ops);
    }

    #[test]
    fn matrix_to_gate_reconstructs_random_unitaries() {
        for (i, (theta, phi, lambda)) in [
            (0.3f64, 0.8, -0.2),
            (2.9, -1.4, 0.6),
            (PI, 0.3, 0.9),
            (0.0, 0.0, 1.1),
            (1.5607, 2.2, -2.9),
        ]
        .into_iter()
        .enumerate()
        {
            let m = Matrix2::u3(theta, phi, lambda);
            let gate = matrix_to_gate(&m, 1e-10).unwrap_or(Gate::I);
            let back = gate.matrix().unwrap();
            let phase = align_phase(&m, &back);
            assert!(
                m.approx_eq(&back.scale(phase), 1e-9),
                "case {i}: u3({theta},{phi},{lambda}) not reconstructed"
            );
        }
    }
}
