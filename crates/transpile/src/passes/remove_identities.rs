//! Elimination of gates that act as the identity.

use qsdd_circuit::{Gate, Operation};

use crate::pass::{Pass, TranspileState};

/// Drops operations whose matrix is the identity: explicit `id` gates,
/// zero-angle rotations (`Rx(0)`, `Rz(0)`, `Phase(0)`, `U3(0,0,0)`), and —
/// for uncontrolled gates only — matrices that are the identity up to a
/// global phase (controls turn a global phase into a relative one, so
/// controlled phase-identities are kept).
#[derive(Clone, Copy, Debug)]
pub struct RemoveIdentities {
    /// Matrix-entry tolerance for identity recognition.
    pub eps: f64,
}

impl Default for RemoveIdentities {
    fn default() -> Self {
        RemoveIdentities { eps: 1e-10 }
    }
}

impl Pass for RemoveIdentities {
    fn name(&self) -> &'static str {
        "remove-identities"
    }

    fn run(&self, state: &mut TranspileState) {
        let eps = self.eps;
        state.ops.retain(|op| {
            let Operation::Gate { gate, controls, .. } = op else {
                return true;
            };
            if matches!(gate, Gate::I) {
                return false;
            }
            let Some(matrix) = gate.matrix() else {
                return true;
            };
            if matrix.is_identity(eps) {
                return false;
            }
            if controls.is_empty() && matrix.is_identity_up_to_phase(eps) {
                return false;
            }
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::Circuit;

    fn run(circuit: &Circuit) -> Vec<Operation> {
        let mut state = TranspileState::from_circuit(circuit);
        RemoveIdentities::default().run(&mut state);
        state.ops
    }

    #[test]
    fn identity_gates_and_zero_rotations_drop() {
        let mut c = Circuit::new(2);
        c.gate(Gate::I, 0)
            .rx(0.0, 0)
            .rz(0.0, 1)
            .p(0.0, 0)
            .u3(0.0, 0.0, 0.0, 1)
            .controlled_gate(Gate::I, &[0], 1)
            .controlled_gate(Gate::Rz(0.0), &[0], 1);
        assert!(run(&c).is_empty());
    }

    #[test]
    fn real_gates_survive() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(0.1, 1).swap(0, 1).measure_all();
        assert_eq!(run(&c).len(), c.operations().len());
    }

    #[test]
    fn uncontrolled_global_phase_identity_drops_controlled_stays() {
        use std::f64::consts::TAU;
        let mut c = Circuit::new(2);
        c.rz(TAU, 0); // −I: global phase, droppable
        c.crz(TAU, 0, 1); // controlled −I: relative phase, must stay
        let ops = run(&c);
        assert_eq!(ops.len(), 1);
        assert!(matches!(
            &ops[0],
            Operation::Gate { controls, .. } if !controls.is_empty()
        ));
    }

    #[test]
    fn barriers_and_measurements_are_untouched() {
        let mut c = Circuit::new(1);
        c.barrier().measure(0, 0).reset(0);
        assert_eq!(run(&c).len(), 3);
    }
}
