//! Elision of trailing SWAP gates into an output relabeling.

use qsdd_circuit::Operation;

use crate::pass::{Pass, TranspileState};

/// Removes SWAP gates that are followed by no further operation on either
/// qubit, recording the exchange in the state's output layout instead of
/// executing it.
///
/// A trailing SWAP only relabels which wire carries which value — the
/// classic example is the reversal network ending a QFT circuit. Running
/// the circuit without the SWAP and permuting sampled outcomes through the
/// layout gives bit-identical results while saving the gate *every shot*.
///
/// The pass is deliberately conservative: it only fires on circuits with no
/// `Measure`/`Reset` operations (there the outcome is a full-register
/// sample, which `qsdd-core` remaps through the layout; with explicit
/// measurements the classical register would need rewriting as well).
#[derive(Clone, Copy, Debug, Default)]
pub struct ElideFinalSwaps;

impl Pass for ElideFinalSwaps {
    fn name(&self) -> &'static str {
        "elide-final-swaps"
    }

    fn run(&self, state: &mut TranspileState) {
        if state
            .ops
            .iter()
            .any(|op| matches!(op, Operation::Measure { .. } | Operation::Reset { .. }))
        {
            return;
        }
        // Backward scan: a SWAP is elidable while both its qubits are still
        // untouched by any later (non-elided) operation.
        let mut dirty = vec![false; state.num_qubits()];
        let mut elide = vec![false; state.ops.len()];
        for (i, op) in state.ops.iter().enumerate().rev() {
            match op {
                Operation::Swap { a, b } if !dirty[*a] && !dirty[*b] => {
                    elide[i] = true;
                }
                Operation::Barrier => {}
                other => {
                    for q in other.qubits() {
                        dirty[q] = true;
                    }
                }
            }
        }
        if !elide.contains(&true) {
            return;
        }
        // Compose the elided swaps (in forward circuit order) into the
        // layout: original bit q = optimized bit layout[q].
        let mut elided_layout: Vec<usize> = (0..state.num_qubits()).collect();
        let mut index = 0;
        state.ops.retain(|op| {
            let keep = !elide[index];
            if !keep {
                if let Operation::Swap { a, b } = op {
                    elided_layout.swap(*a, *b);
                }
            }
            index += 1;
            keep
        });
        for entry in state.layout.iter_mut() {
            *entry = elided_layout[*entry];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pass::TranspileState;
    use qsdd_circuit::Circuit;

    fn run(circuit: &Circuit) -> TranspileState {
        let mut state = TranspileState::from_circuit(circuit);
        ElideFinalSwaps.run(&mut state);
        state
    }

    #[test]
    fn trailing_swap_becomes_a_layout_entry() {
        let mut c = Circuit::new(2);
        c.h(0).swap(0, 1);
        let state = run(&c);
        assert_eq!(state.ops.len(), 1);
        assert_eq!(state.layout, vec![1, 0]);
    }

    #[test]
    fn chained_trailing_swaps_compose() {
        let mut c = Circuit::new(3);
        c.h(0).swap(0, 1).swap(1, 2);
        let state = run(&c);
        assert_eq!(state.ops.len(), 1);
        // After swap(0,1); swap(1,2): original q0 holds old q1's wire, etc.
        assert_eq!(state.layout, vec![1, 2, 0]);
    }

    #[test]
    fn swap_followed_by_a_gate_stays() {
        let mut c = Circuit::new(2);
        c.swap(0, 1).h(0);
        let state = run(&c);
        assert_eq!(state.ops.len(), 2);
        assert_eq!(state.layout, vec![0, 1]);
    }

    #[test]
    fn swap_followed_by_gate_on_other_qubits_is_elided() {
        let mut c = Circuit::new(3);
        c.swap(0, 1).h(2);
        let state = run(&c);
        assert_eq!(state.ops.len(), 1);
        assert_eq!(state.layout, vec![1, 0, 2]);
    }

    #[test]
    fn measurements_disable_the_pass() {
        let mut c = Circuit::new(2);
        c.h(0).swap(0, 1).measure_all();
        let state = run(&c);
        assert_eq!(state.ops.len(), 4);
        assert_eq!(state.layout, vec![0, 1]);
    }

    #[test]
    fn qft_reversal_network_is_fully_elided() {
        let c = qsdd_circuit::generators::qft(6);
        let before = c.stats().gate_count;
        let state = run(&c);
        assert_eq!(state.gate_count(), before - 3);
        assert_eq!(state.layout, vec![5, 4, 3, 2, 1, 0]);
    }
}
