//! The pass abstraction: optimization levels, the [`Pass`] trait and the
//! mutable [`TranspileState`] passes rewrite.

use qsdd_circuit::{Circuit, Operation};

/// How aggressively the transpiler optimizes.
///
/// * [`OptLevel::O0`] — no optimization; the circuit passes through
///   untouched.
/// * [`OptLevel::O1`] — one sweep of the cheap peephole passes
///   (inverse-pair cancellation, rotation merging, identity elimination).
/// * [`OptLevel::O2`] — the full pipeline including single-qubit gate
///   fusion and trailing-SWAP elision, iterated to a fixed point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OptLevel {
    /// No optimization.
    #[default]
    O0,
    /// Cheap single-sweep peephole optimizations.
    O1,
    /// Full pipeline, iterated to a fixed point.
    O2,
}

impl OptLevel {
    /// All levels, in increasing aggressiveness.
    pub const ALL: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptLevel::O0 => write!(f, "O0"),
            OptLevel::O1 => write!(f, "O1"),
            OptLevel::O2 => write!(f, "O2"),
        }
    }
}

impl std::str::FromStr for OptLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "0" | "O0" | "o0" => Ok(OptLevel::O0),
            "1" | "O1" | "o1" => Ok(OptLevel::O1),
            "2" | "O2" | "o2" => Ok(OptLevel::O2),
            other => Err(format!("unknown optimization level `{other}`")),
        }
    }
}

/// The mutable circuit representation passes operate on.
///
/// Besides the operation list this carries the *output layout*: a
/// permutation recording how measured qubit values of the original circuit
/// map onto qubits of the optimized circuit (see
/// [`crate::passes::ElideFinalSwaps`]). `layout[q] = j` means the value of
/// original qubit `q` is found on optimized qubit `j`.
#[derive(Clone, Debug)]
pub struct TranspileState {
    name: String,
    num_qubits: usize,
    num_clbits: usize,
    /// The working operation list.
    pub ops: Vec<Operation>,
    /// Output layout accumulated by swap elision (identity when untouched).
    pub layout: Vec<usize>,
}

impl TranspileState {
    /// Captures a circuit into a mutable pass state.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        TranspileState {
            name: circuit.name().to_string(),
            num_qubits: circuit.num_qubits(),
            num_clbits: circuit.num_clbits(),
            ops: circuit.operations().to_vec(),
            layout: (0..circuit.num_qubits()).collect(),
        }
    }

    /// Number of qubits of the circuit being optimized.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of unitary gate operations currently in the list.
    pub fn gate_count(&self) -> usize {
        self.ops.iter().filter(|op| op.is_unitary()).count()
    }

    /// Materialises the state back into a validated circuit.
    pub fn into_circuit(self) -> Circuit {
        Circuit::from_parts(&self.name, self.num_qubits, self.num_clbits, self.ops)
    }
}

/// One rewrite of the operation list.
///
/// Passes must preserve circuit semantics: the optimized circuit, with the
/// recorded output layout applied, must prepare the same state (up to global
/// phase) as the original. [`crate::verify`] checks exactly this.
pub trait Pass: Send + Sync {
    /// Short name used in [`crate::TranspileReport`] entries.
    fn name(&self) -> &'static str;

    /// Rewrites the state in place.
    fn run(&self, state: &mut TranspileState);
}

/// Index of the last operation in `ops` that acts on any of `qubits`, if
/// any. Barriers conflict with everything (they are optimization fences).
pub(crate) fn last_conflict(ops: &[Operation], qubits: &[usize]) -> Option<usize> {
    ops.iter().rposition(|op| match op {
        Operation::Barrier => true,
        other => other.qubits().iter().any(|q| qubits.contains(q)),
    })
}

/// Whether two control lists describe the same control set (order ignored).
pub(crate) fn same_controls(a: &[usize], b: &[usize]) -> bool {
    a.len() == b.len() && a.iter().all(|c| b.contains(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_level_round_trips_through_strings() {
        for level in OptLevel::ALL {
            let parsed: OptLevel = level.to_string().parse().unwrap();
            assert_eq!(parsed, level);
        }
        assert_eq!("1".parse::<OptLevel>().unwrap(), OptLevel::O1);
        assert!("3".parse::<OptLevel>().is_err());
    }

    #[test]
    fn state_round_trips_a_circuit() {
        let mut c = Circuit::with_name(3, "probe");
        c.h(0).cx(0, 1).swap(1, 2).measure_all();
        let state = TranspileState::from_circuit(&c);
        assert_eq!(state.gate_count(), 3);
        assert_eq!(state.layout, vec![0, 1, 2]);
        let back = state.into_circuit();
        assert_eq!(back, c);
    }

    #[test]
    fn last_conflict_finds_the_latest_toucher() {
        let mut c = Circuit::new(3);
        c.h(0).x(1).cx(0, 2);
        let ops = c.operations();
        assert_eq!(last_conflict(ops, &[0]), Some(2));
        assert_eq!(last_conflict(ops, &[1]), Some(1));
        assert_eq!(last_conflict(&ops[..2], &[2]), None);
    }

    #[test]
    fn barriers_conflict_with_every_qubit() {
        let mut c = Circuit::new(2);
        c.h(0).barrier();
        assert_eq!(last_conflict(c.operations(), &[1]), Some(1));
    }

    #[test]
    fn control_sets_ignore_order() {
        assert!(same_controls(&[1, 2], &[2, 1]));
        assert!(!same_controls(&[1], &[2]));
        assert!(!same_controls(&[1, 2], &[1]));
    }
}
