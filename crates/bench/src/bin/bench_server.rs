//! `bench_server` — loopback load generator for the HTTP service.
//!
//! Boots `qsdd-server` in-process on an ephemeral port, hammers it with
//! many concurrent keep-alive clients over real TCP, and reports
//! throughput and latency split into the cold (uncached simulation) and
//! hot (content-addressed cache hit) paths.
//!
//! ```text
//! bench_server [--test-mode] [--clients <N>] [--requests <N>]
//!              [--distinct <N>] [--shots <N>] [--server-threads <N>]
//! ```
//!
//! `--test-mode` shrinks every knob so the run finishes in well under a
//! second; CI uses it to keep the whole client/server/cache path exercised
//! on every push. Exits non-zero when any response is dropped or
//! incorrect.

use std::process::ExitCode;

use qsdd_bench::server_load::{run_load, run_warm_restart, LoadConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Resolve the baseline first so explicit flags always win, regardless
    // of where --test-mode appears on the command line.
    let mut config = if args.iter().any(|flag| flag == "--test-mode") {
        LoadConfig::test_mode()
    } else {
        LoadConfig::default_load()
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<usize, String> {
            iter.next()
                .ok_or_else(|| format!("flag {name} requires a value"))?
                .parse()
                .map_err(|_| format!("flag {name} requires an integer"))
        };
        let result = match flag.as_str() {
            "--test-mode" => Ok(()), // already applied above
            "--clients" => value("--clients").map(|v| config.clients = v.max(1)),
            "--requests" => value("--requests").map(|v| config.requests_per_client = v.max(1)),
            "--distinct" => value("--distinct").map(|v| config.distinct_jobs = v.max(1)),
            "--shots" => value("--shots").map(|v| config.shots = v.max(1)),
            "--server-threads" => value("--server-threads").map(|v| config.server_threads = v),
            other => Err(format!("unknown flag `{other}`")),
        };
        if let Err(message) = result {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "bench_server: {} clients x {} requests over {} distinct ghz-12 jobs ({} shots each)",
        config.clients, config.requests_per_client, config.distinct_jobs, config.shots
    );
    let report = run_load(&config);
    println!(
        "cold (uncached) latency : {:>10.3} ms/job",
        report.cold_latency.as_secs_f64() * 1e3
    );
    println!(
        "cache-hit latency       : {:>10.3} ms/request ({:.1}x faster than cold)",
        report.hit_latency.as_secs_f64() * 1e3,
        report.hit_speedup()
    );
    println!(
        "throughput              : {:>10.1} requests/s ({} requests in {:.3} s)",
        report.throughput_rps,
        report.requests,
        report.wall.as_secs_f64()
    );
    if report.errors > 0 {
        eprintln!("error: {} dropped or incorrect responses", report.errors);
        return ExitCode::FAILURE;
    }
    println!("0 dropped responses");

    // The durability scenario: what the result store buys across a
    // process restart (store-warmed GETs instead of re-simulating).
    let warm = run_warm_restart(&config);
    println!(
        "warm-restart hit latency: {:>10.3} ms/request ({:.1}x faster than a cold re-run)",
        warm.warm_hit_latency.as_secs_f64() * 1e3,
        warm.warm_speedup()
    );
    if !warm.byte_identical || warm.errors > 0 {
        eprintln!(
            "error: warm restart broke the durability contract ({} errors, byte_identical={})",
            warm.errors, warm.byte_identical
        );
        return ExitCode::FAILURE;
    }
    println!("restart preserved every byte");
    ExitCode::SUCCESS
}
