//! Empirical check of Theorem 1: for several accuracy targets, run the
//! number of samples prescribed by the bound and compare the worst observed
//! estimation error against epsilon.
//!
//! Usage: `cargo run --release -p qsdd-bench --bin theorem1`

use qsdd_circuit::generators::ghz;
use qsdd_core::{sampling, Observable, StochasticSimulator};
use qsdd_noise::NoiseModel;

fn main() {
    let qubits = 4;
    let circuit = ghz(qubits);
    let noise = NoiseModel::new(0.01, 0.02, 0.01);
    let delta = 0.05;

    // Exact reference values from the density-matrix simulator.
    let exact = qsdd_density::simulate(&circuit, &noise);
    let populations = exact.populations();
    let all_ones = (1u64 << qubits) - 1;
    let observables = vec![
        Observable::BasisProbability(0),
        Observable::BasisProbability(all_ones),
        Observable::QubitExcitation(0),
        Observable::QubitExcitation(qubits - 1),
    ];
    let exact_values = [
        populations[0],
        populations[all_ones as usize],
        exact.probability_one(0),
        exact.probability_one(qubits - 1),
    ];

    println!(
        "Theorem 1 validation on noisy GHZ({qubits}), L = {} properties, delta = {delta}\n",
        observables.len()
    );
    println!(
        "{:>8} {:>10} {:>16} {:>14}",
        "epsilon", "M (bound)", "max |error|", "within bound"
    );
    for epsilon in [0.1, 0.05, 0.02] {
        let shots = sampling::required_samples(observables.len(), epsilon, delta);
        let result = StochasticSimulator::new()
            .with_shots(shots)
            .with_noise(noise)
            .with_seed(7)
            .run_with_observables(&circuit, &observables);
        let max_error = result
            .observable_estimates
            .iter()
            .zip(&exact_values)
            .map(|(estimate, exact)| (estimate - exact).abs())
            .fold(0.0f64, f64::max);
        println!(
            "{epsilon:>8} {shots:>10} {max_error:>16.5} {:>14}",
            if max_error <= epsilon { "yes" } else { "NO" }
        );
    }
}
