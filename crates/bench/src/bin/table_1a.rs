//! Regenerates Table Ia of the paper: stochastic noisy simulation of the
//! entanglement (GHZ) circuits with increasing qubit counts.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p qsdd-bench --bin table_1a
//! QSDD_SHOTS=1000 QSDD_BUDGET_SECS=120 cargo run --release -p qsdd-bench --bin table_1a
//! ```
//!
//! The dense baseline stands in for the Qiskit and QLM columns; beyond
//! `QSDD_DENSE_LIMIT` qubits it is skipped (in the paper those cells hit the
//! one-hour timeout). The proposed decision-diagram simulator runs every row
//! up to 64 qubits.

use qsdd_bench::{print_header, print_row, HarnessConfig};
use qsdd_circuit::generators::ghz;

fn main() {
    let config = HarnessConfig::from_env();
    println!(
        "Table Ia — Entanglement (GHZ) circuits, {} shots per cell, budget {:?} per cell",
        config.shots, config.budget
    );
    println!(
        "noise: depolarizing {:.3} %, T1 {:.3} %, T2 {:.3} %\n",
        config.noise.depolarizing_prob() * 100.0,
        config.noise.amplitude_damping_prob() * 100.0,
        config.noise.phase_flip_prob() * 100.0
    );
    print_header("qubits n");
    // The paper lists n = 21..29 and 63, 64; smaller rows are added so the
    // dense baseline produces finite numbers for the shape comparison.
    for n in [8usize, 12, 16, 20, 21, 22, 23, 27, 28, 29, 48, 63, 64] {
        let circuit = ghz(n);
        print_row(&n.to_string(), &circuit, &config);
    }
}
