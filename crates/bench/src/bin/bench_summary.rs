//! `bench_summary` — machine-readable summary of the perf-trajectory
//! benchmarks.
//!
//! Runs the trajectory-deduplication and context-reuse workloads directly
//! (no criterion harness) plus the HTTP-server load scenario, and writes
//! `BENCH_<SCHEMA_VERSION + 3>.json` (so schema 7 writes `BENCH_10.json`
//! — the name tracks the schema instead of being pinned by hand): one
//! entry per benchmark with the optimized and naive
//! mean per-shot cost in nanoseconds and the resulting speedup, a
//! `weighted` section racing the weighted trajectory-enumeration driver
//! against both the dedup and per-shot paths on GHZ-16 under the paper's
//! mixed noise (the case where dedup alone only reached ~1.3x), an
//! `intra` section racing intra-shot fork-join execution against serial
//! on a 22-qubit dense workload and a deep decision-diagram workload
//! (interleaved min-of-reps, outcomes cross-checked bit for bit), a
//! `server` section with the service's throughput and cold-vs-cache-hit
//! latency, a `warm_restart` section comparing a cold boot's simulation
//! cost against store-warmed GETs after a restart (byte-identity is
//! hard-gated), a `metrics_overhead` row measuring what the disabled-mode
//! telemetry hooks cost the context-reuse hot loop, and a
//! `tracing_overhead` row doing the same for the span hooks with the
//! trace gate off (per-shot `trace::span` + `trace::attr` calls — far
//! denser than the real per-group instrumentation — must also stay
//! within 2 %). The JSON is parsed
//! back before the process exits, so a malformed writer fails loudly (CI
//! runs the binary in `--test-mode` with tiny shot counts on every push;
//! test mode also hard-gates the weighted row — it must beat dedup and be
//! at least 3x over per-shot — and the intra row, with a core-count-aware
//! dense-speedup floor: ≥ 2.0x on 8+ cores, ≥ 1.3x on 4–7, correctness
//! only below that).
//!
//! ```text
//! bench_summary [--test-mode] [--out <path>]
//! ```
//!
//! * `--test-mode` shrinks shots and repetitions so the run finishes in
//!   seconds — the timings are then meaningless (except the overhead rows,
//!   which keep enough shots to stay meaningful and are asserted ≤ 2 %),
//!   but the whole pipeline (workloads, cross-checks, server round trips,
//!   JSON writer) is exercised.
//! * `--out` overrides the output path (default derived from the schema
//!   version, `BENCH_10.json` today, i.e. the repo root when invoked from
//!   there).

use std::process::ExitCode;
use std::time::Instant;

use qsdd_batch::json::{self, Value};
use qsdd_bench::server_load::{run_load, run_warm_restart, LoadConfig};
use qsdd_circuit::generators::{ghz, qft};
use qsdd_core::{
    run_engine, run_engine_dedup, run_engine_in, run_engine_weighted_in, BackendKind, DdSimulator,
    OptLevel, ShotEngine, StochasticBackend, WeightedOptions,
};
use qsdd_noise::NoiseModel;
use qsdd_telemetry::{Stage, StageTimings};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Version of the summary's JSON schema. Bumped whenever the document
/// gains or changes a section; the default output name derives from it
/// (`BENCH_{SCHEMA_VERSION + 3}.json` — the offset keeps continuity with
/// the historical hand-numbered files).
const SCHEMA_VERSION: u32 = 7;

/// The default output path, derived from [`SCHEMA_VERSION`] so a schema
/// bump can never silently overwrite the previous schema's artifact.
fn default_out() -> String {
    format!("BENCH_{}.json", SCHEMA_VERSION + 3)
}

/// One benchmark row of the summary.
struct Row {
    name: &'static str,
    shots: usize,
    naive_ns: f64,
    optimized_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.naive_ns / self.optimized_ns
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut test_mode = false;
    let mut out = default_out();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--test-mode" => test_mode = true,
            "--out" => match iter.next() {
                Some(path) => out = path.clone(),
                None => {
                    eprintln!("error: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown flag `{other}` (expected --test-mode / --out)");
                return ExitCode::FAILURE;
            }
        }
    }

    let (shots, reps, reuse_shots) = if test_mode {
        (200, 2, 8)
    } else {
        (10_000, 7, 200)
    };
    let rows = vec![
        dedup_row(
            "dedup_ghz16_depol_1e-3",
            {
                ShotEngine::new(
                    &ghz(16),
                    BackendKind::DecisionDiagram,
                    NoiseModel::noiseless().with_depolarizing(0.001),
                    7,
                    OptLevel::O0,
                )
            },
            shots,
            reps,
        ),
        dedup_row(
            "dedup_ghz16_paper_noise",
            {
                ShotEngine::new(
                    &ghz(16),
                    BackendKind::DecisionDiagram,
                    NoiseModel::paper_defaults(),
                    7,
                    OptLevel::O0,
                )
            },
            shots,
            reps,
        ),
        context_reuse_row(reuse_shots, reps),
    ];

    for row in &rows {
        println!(
            "{:<28} naive {:>12.1} ns/shot | optimized {:>12.1} ns/shot | speedup {:>6.2}x",
            row.name,
            row.naive_ns,
            row.optimized_ns,
            row.speedup()
        );
    }

    // The headline of this summary: the weighted-enumeration driver on the
    // very workload where dedup alone plateaued (GHZ-16 under the paper's
    // mixed noise, where amplitude damping keeps almost every sampled
    // trajectory distinct). Measured at a higher shot count than the dedup
    // rows: the weighted driver's cost is (nearly) shot-independent, so the
    // speedup is a function of the shot budget it replaces, and 200 shots
    // would mostly measure the tail-sample floor.
    let weighted_shots = if test_mode { 2_000 } else { shots };
    let weighted = weighted_row(weighted_shots, reps);
    println!(
        "{:<28} per-shot {:>8.1} ns | dedup {:>8.1} ns | weighted {:>8.1} ns | {:>5.2}x vs per-shot, {:>5.2}x vs dedup",
        weighted.name,
        weighted.per_shot_ns,
        weighted.dedup_ns,
        weighted.weighted_ns,
        weighted.speedup_vs_per_shot(),
        weighted.speedup_vs_dedup(),
    );
    println!(
        "{:<28} {} trajectories enumerated covering {:.4} of the mass, {} tail shots",
        "", weighted.enumerated_trajectories, weighted.covered_mass, weighted.tail_shots
    );
    if test_mode {
        // Hard gates (CI): the weighted driver must beat the dedup path it
        // cross-checks against, and clear 3x over per-shot execution.
        if weighted.speedup_vs_dedup() <= 1.0 {
            eprintln!(
                "error: weighted driver ({:.1} ns) does not beat dedup ({:.1} ns)",
                weighted.weighted_ns, weighted.dedup_ns
            );
            return ExitCode::FAILURE;
        }
        if weighted.speedup_vs_per_shot() < 3.0 {
            eprintln!(
                "error: weighted speedup {:.2}x vs per-shot is below the 3x floor",
                weighted.speedup_vs_per_shot()
            );
            return ExitCode::FAILURE;
        }
    }

    // The telemetry overhead smoke: the disabled-mode hooks must stay
    // within 2 % of the bare context-reuse loop. Enough shots to make the
    // comparison meaningful even in test mode, where it is a hard gate.
    let (overhead_shots, overhead_reps) = if test_mode { (2_000, 9) } else { (20_000, 7) };
    let overhead = metrics_overhead_row(overhead_shots, overhead_reps);
    println!(
        "{:<28} bare {:>13.1} ns/shot | instrumented {:>10.1} ns/shot | overhead {:>5.2} %",
        overhead.name, overhead.baseline_ns, overhead.instrumented_ns, overhead.overhead_percent
    );
    if test_mode && overhead.overhead_percent > 2.0 {
        eprintln!(
            "error: disabled-mode telemetry overhead {:.2} % exceeds the 2 % budget",
            overhead.overhead_percent
        );
        return ExitCode::FAILURE;
    }

    // Same budget for the tracing layer: span hooks with the trace gate
    // off, at a per-shot density the real drivers never reach.
    let tracing = tracing_overhead_row(overhead_shots, overhead_reps);
    println!(
        "{:<28} bare {:>13.1} ns/shot | instrumented {:>10.1} ns/shot | overhead {:>5.2} %",
        tracing.name, tracing.baseline_ns, tracing.instrumented_ns, tracing.overhead_percent
    );
    if test_mode && tracing.overhead_percent > 2.0 {
        eprintln!(
            "error: tracing-off span-hook overhead {:.2} % exceeds the 2 % budget",
            tracing.overhead_percent
        );
        return ExitCode::FAILURE;
    }

    // The intra-shot fork-join comparison: serial vs parallel execution of
    // the same engines, interleaved min-of-reps, outcomes cross-checked
    // bit for bit (the determinism contract makes the cross-check exact).
    let intra = intra_row(test_mode);
    for workload in [&intra.dense, &intra.dd] {
        println!(
            "{:<28} serial {:>12.1} ns/shot | intra({}) {:>10.1} ns/shot | speedup {:>6.2}x",
            workload.name,
            workload.serial_ns,
            intra.width,
            workload.parallel_ns,
            workload.speedup()
        );
    }
    if test_mode {
        // Core-count-aware hard gate on the dense workload: the flat
        // chunk-partitioned kernels must actually scale where the machine
        // has room, and small/virtualized runners degrade to a pure
        // correctness check (the cross-check above already ran).
        let floor = match intra.cores {
            cores if cores >= 8 => Some(2.0),
            cores if cores >= 4 => Some(1.3),
            _ => None,
        };
        if let Some(floor) = floor {
            if intra.dense.speedup() < floor {
                eprintln!(
                    "error: intra-shot dense speedup {:.2}x is below the {:.1}x floor \
                     ({} cores, width {})",
                    intra.dense.speedup(),
                    floor,
                    intra.cores,
                    intra.width
                );
                return ExitCode::FAILURE;
            }
        }
    }

    // The HTTP service scenario: cold (uncached simulation) latency vs the
    // content-addressed cache-hit path, plus raw request throughput.
    let load_config = if test_mode {
        LoadConfig::test_mode()
    } else {
        LoadConfig::default_load()
    };
    let load = run_load(&load_config);
    println!(
        "{:<28} cold {:>13.3} ms | cache hit {:>12.3} ms | speedup {:>6.2}x | {:>8.1} req/s",
        "server_ghz12_cache",
        load.cold_latency.as_secs_f64() * 1e3,
        load.hit_latency.as_secs_f64() * 1e3,
        load.hit_speedup(),
        load.throughput_rps,
    );
    if load.errors > 0 {
        eprintln!("error: server load run dropped {} responses", load.errors);
        return ExitCode::FAILURE;
    }

    // The durability scenario: cold boot (every job simulated) vs a
    // store-warmed restart (every GET answered from the replayed log).
    let warm = run_warm_restart(&load_config);
    println!(
        "{:<28} cold {:>13.3} ms | warm GET   {:>12.3} ms | speedup {:>6.2}x | byte-identical: {}",
        "server_warm_restart",
        warm.cold_latency.as_secs_f64() * 1e3,
        warm.warm_hit_latency.as_secs_f64() * 1e3,
        warm.warm_speedup(),
        warm.byte_identical,
    );
    // Byte identity across restart is a correctness gate, not a timing:
    // it holds at any shot count, so enforce it in test mode too.
    if !warm.byte_identical || warm.errors > 0 {
        eprintln!(
            "error: warm restart broke the durability contract ({} errors, byte_identical={})",
            warm.errors, warm.byte_identical
        );
        return ExitCode::FAILURE;
    }

    let document = Value::object(vec![
        (
            "format".to_string(),
            Value::from(format!("qsdd-bench-summary/{SCHEMA_VERSION}").as_str()),
        ),
        ("test_mode".to_string(), Value::from(test_mode)),
        (
            "benchmarks".to_string(),
            Value::Array(
                rows.iter()
                    .map(|row| {
                        Value::object(vec![
                            ("name".to_string(), Value::from(row.name)),
                            ("shots".to_string(), Value::from(row.shots)),
                            ("naive_mean_ns".to_string(), Value::from(row.naive_ns)),
                            ("mean_ns".to_string(), Value::from(row.optimized_ns)),
                            ("speedup".to_string(), Value::from(row.speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "weighted".to_string(),
            Value::object(vec![
                ("name".to_string(), Value::from(weighted.name)),
                ("shots".to_string(), Value::from(weighted.shots)),
                (
                    "per_shot_mean_ns".to_string(),
                    Value::from(weighted.per_shot_ns),
                ),
                ("dedup_mean_ns".to_string(), Value::from(weighted.dedup_ns)),
                ("mean_ns".to_string(), Value::from(weighted.weighted_ns)),
                (
                    "speedup_vs_per_shot".to_string(),
                    Value::from(weighted.speedup_vs_per_shot()),
                ),
                (
                    "speedup_vs_dedup".to_string(),
                    Value::from(weighted.speedup_vs_dedup()),
                ),
                (
                    "covered_mass".to_string(),
                    Value::from(weighted.covered_mass),
                ),
                (
                    "enumerated_trajectories".to_string(),
                    Value::from(weighted.enumerated_trajectories),
                ),
                ("tail_shots".to_string(), Value::from(weighted.tail_shots)),
            ]),
        ),
        (
            "intra".to_string(),
            Value::object(vec![
                ("cores".to_string(), Value::from(intra.cores)),
                ("width".to_string(), Value::from(intra.width)),
                ("dense".to_string(), intra_workload_json(&intra.dense)),
                ("dd".to_string(), intra_workload_json(&intra.dd)),
            ]),
        ),
        (
            "server".to_string(),
            Value::object(vec![
                ("name".to_string(), Value::from("server_ghz12_cache")),
                ("clients".to_string(), Value::from(load_config.clients)),
                ("requests".to_string(), Value::from(load.requests)),
                (
                    "throughput_rps".to_string(),
                    Value::from(load.throughput_rps),
                ),
                (
                    "cold_latency_ms".to_string(),
                    Value::from(load.cold_latency.as_secs_f64() * 1e3),
                ),
                (
                    "hit_latency_ms".to_string(),
                    Value::from(load.hit_latency.as_secs_f64() * 1e3),
                ),
                ("hit_speedup".to_string(), Value::from(load.hit_speedup())),
                ("errors".to_string(), Value::from(load.errors)),
            ]),
        ),
        (
            "warm_restart".to_string(),
            Value::object(vec![
                ("name".to_string(), Value::from("server_warm_restart")),
                ("jobs".to_string(), Value::from(warm.jobs)),
                (
                    "cold_latency_ms".to_string(),
                    Value::from(warm.cold_latency.as_secs_f64() * 1e3),
                ),
                (
                    "warm_hit_latency_ms".to_string(),
                    Value::from(warm.warm_hit_latency.as_secs_f64() * 1e3),
                ),
                ("warm_speedup".to_string(), Value::from(warm.warm_speedup())),
                (
                    "byte_identical".to_string(),
                    Value::from(warm.byte_identical),
                ),
                ("errors".to_string(), Value::from(warm.errors)),
            ]),
        ),
        (
            "metrics_overhead".to_string(),
            Value::object(vec![
                ("name".to_string(), Value::from(overhead.name)),
                ("shots".to_string(), Value::from(overhead.shots)),
                ("baseline_ns".to_string(), Value::from(overhead.baseline_ns)),
                (
                    "instrumented_ns".to_string(),
                    Value::from(overhead.instrumented_ns),
                ),
                (
                    "overhead_percent".to_string(),
                    Value::from(overhead.overhead_percent),
                ),
                ("budget_percent".to_string(), Value::from(2.0)),
            ]),
        ),
        (
            "tracing_overhead".to_string(),
            Value::object(vec![
                ("name".to_string(), Value::from(tracing.name)),
                ("shots".to_string(), Value::from(tracing.shots)),
                ("baseline_ns".to_string(), Value::from(tracing.baseline_ns)),
                (
                    "instrumented_ns".to_string(),
                    Value::from(tracing.instrumented_ns),
                ),
                (
                    "overhead_percent".to_string(),
                    Value::from(tracing.overhead_percent),
                ),
                ("budget_percent".to_string(), Value::from(2.0)),
            ]),
        ),
    ]);
    let text = document.to_pretty_string();
    // The writer must stay parseable: round-trip before touching the disk.
    let parsed = match json::parse(&text) {
        Ok(parsed) => parsed,
        Err(error) => {
            eprintln!("error: summary JSON does not parse back: {error}");
            return ExitCode::FAILURE;
        }
    };
    // And the weighted row must survive the round trip field-for-field —
    // this is what downstream tooling (and CI) reads.
    let weighted_ok = parsed
        .get("weighted")
        .map(|row| {
            row.get("name").and_then(Value::as_str) == Some(weighted.name)
                && row
                    .get("speedup_vs_per_shot")
                    .and_then(Value::as_f64)
                    .is_some()
                && row
                    .get("speedup_vs_dedup")
                    .and_then(Value::as_f64)
                    .is_some()
                && row.get("covered_mass").and_then(Value::as_f64).is_some()
                && row
                    .get("enumerated_trajectories")
                    .and_then(Value::as_u64)
                    .is_some()
        })
        .unwrap_or(false);
    if !weighted_ok {
        eprintln!("error: weighted row missing or malformed in the summary JSON");
        return ExitCode::FAILURE;
    }
    if let Err(error) = std::fs::write(&out, &text) {
        eprintln!("error: cannot write `{out}`: {error}");
        return ExitCode::FAILURE;
    }
    println!("summary written to `{out}`");
    ExitCode::SUCCESS
}

/// Times the deduplicating runner against the per-shot path on one engine
/// (interleaved repetitions, minimum per path) and cross-checks that both
/// produce identical results.
fn dedup_row(name: &'static str, engine: ShotEngine, shots: usize, reps: usize) -> Row {
    let mut best_dedup = f64::INFINITY;
    let mut best_per_shot = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        let dedup = run_engine_dedup(&engine, shots, 1, &[]);
        best_dedup = best_dedup.min(started.elapsed().as_secs_f64());
        let started = Instant::now();
        let per_shot = run_engine(&engine, shots, 1, &[]);
        best_per_shot = best_per_shot.min(started.elapsed().as_secs_f64());
        assert_eq!(dedup.counts, per_shot.counts, "{name}: histogram mismatch");
        assert_eq!(dedup.error_events, per_shot.error_events, "{name}");
    }
    Row {
        name,
        shots,
        naive_ns: best_per_shot * 1e9 / shots as f64,
        optimized_ns: best_dedup * 1e9 / shots as f64,
    }
}

/// The three-way weighted-enumeration comparison row.
struct WeightedRow {
    name: &'static str,
    shots: usize,
    per_shot_ns: f64,
    dedup_ns: f64,
    weighted_ns: f64,
    covered_mass: f64,
    enumerated_trajectories: u64,
    tail_shots: u64,
}

impl WeightedRow {
    fn speedup_vs_per_shot(&self) -> f64 {
        self.per_shot_ns / self.weighted_ns
    }

    fn speedup_vs_dedup(&self) -> f64 {
        self.dedup_ns / self.weighted_ns
    }
}

/// Races the weighted trajectory-enumeration driver against the dedup and
/// per-shot paths on GHZ-16 under the paper's mixed noise model — the
/// workload where amplitude damping defeats exact-pattern sharing (dedup
/// barely reaches ~1.3x) but enumeration still pays: the no-error
/// trajectory alone covers ~89 % of the probability mass, so only the
/// ~11 % residual needs tail shots.
///
/// All three paths run serially through one long-lived, pre-warmed
/// [`ExecContext`] (the steady-state serving configuration), so the row
/// compares the drivers themselves, not one-off context construction.
/// Repetitions interleave the three paths and each takes its minimum.
/// Cross-checks per repetition: dedup stays byte-identical to per-shot
/// (the existing oracle), and the weighted histogram accounts for every
/// requested shot with sane coverage statistics.
fn weighted_row(shots: usize, reps: usize) -> WeightedRow {
    let engine = ShotEngine::new(
        &ghz(16),
        BackendKind::DecisionDiagram,
        NoiseModel::paper_defaults(),
        7,
        OptLevel::O0,
    );
    let options = WeightedOptions::default();
    let mut ctx = engine.new_context();
    // Warm the context (program seating, operator caches) off the clock.
    let _ = run_engine_in(&engine, &mut ctx, 1, &[], false);
    let mut best_per_shot = f64::INFINITY;
    let mut best_dedup = f64::INFINITY;
    let mut best_weighted = f64::INFINITY;
    let mut coverage = (0.0, 0, 0);
    for _ in 0..reps {
        let started = Instant::now();
        let per_shot = run_engine_in(&engine, &mut ctx, shots, &[], false);
        best_per_shot = best_per_shot.min(started.elapsed().as_secs_f64());
        let started = Instant::now();
        let dedup = run_engine_in(&engine, &mut ctx, shots, &[], true);
        best_dedup = best_dedup.min(started.elapsed().as_secs_f64());
        let started = Instant::now();
        let weighted = run_engine_weighted_in(&engine, &mut ctx, shots, &[], &options);
        best_weighted = best_weighted.min(started.elapsed().as_secs_f64());

        assert_eq!(dedup.counts, per_shot.counts, "dedup oracle mismatch");
        let stats = weighted
            .weighted
            .as_ref()
            .expect("GHZ-16 supports weighted enumeration");
        assert_eq!(
            weighted.counts.values().sum::<u64>(),
            shots as u64,
            "weighted histogram must account for every requested shot"
        );
        assert!(stats.covered_mass > 0.5 && stats.covered_mass <= 1.0 + 1e-12);
        assert!(stats.enumerated_trajectories > 0);
        coverage = (
            stats.covered_mass,
            stats.enumerated_trajectories,
            stats.tail_shots,
        );
    }
    WeightedRow {
        name: "weighted_ghz16_paper_noise",
        shots,
        per_shot_ns: best_per_shot * 1e9 / shots as f64,
        dedup_ns: best_dedup * 1e9 / shots as f64,
        weighted_ns: best_weighted * 1e9 / shots as f64,
        covered_mass: coverage.0,
        enumerated_trajectories: coverage.1,
        tail_shots: coverage.2,
    }
}

/// The telemetry-overhead measurement of the context-reuse hot loop.
struct OverheadRow {
    name: &'static str,
    shots: usize,
    baseline_ns: f64,
    instrumented_ns: f64,
    overhead_percent: f64,
}

/// Times the context-reuse shot loop bare against the same loop carrying
/// the per-job telemetry hooks the engine layer added (a stage-timings
/// span around the loop plus the enabled-gated publish), with telemetry
/// disabled — exactly the serving-path configuration the ≤ 2 % budget
/// protects. Repetitions interleave the two sides and each takes its
/// minimum, so scheduler noise hits both equally.
fn metrics_overhead_row(shots: usize, reps: usize) -> OverheadRow {
    qsdd_telemetry::set_enabled(false);
    let backend = DdSimulator::new();
    let circuit = ghz(16);
    let noise = NoiseModel::paper_defaults();
    let program = backend.compile(&circuit, &noise);
    let mut ctx = backend.new_context();
    let mut best_bare = f64::INFINITY;
    let mut best_hooked = f64::INFINITY;
    let mut bare_acc = 0u64;
    let mut hooked_acc = 0u64;
    for _ in 0..reps {
        let started = Instant::now();
        for shot in 0..shots as u64 {
            let mut rng = StdRng::seed_from_u64(shot);
            bare_acc ^= backend.run_shot(&program, &mut ctx, &mut rng).outcome;
        }
        best_bare = best_bare.min(started.elapsed().as_secs_f64());

        let started = Instant::now();
        let mut timings = StageTimings::new();
        let span = Instant::now();
        for shot in 0..shots as u64 {
            let mut rng = StdRng::seed_from_u64(shot);
            hooked_acc ^= backend.run_shot(&program, &mut ctx, &mut rng).outcome;
        }
        timings.record(Stage::Execute, span.elapsed());
        timings.publish();
        best_hooked = best_hooked.min(started.elapsed().as_secs_f64());
    }
    assert_eq!(bare_acc, hooked_acc, "telemetry hooks changed outcomes");
    let baseline_ns = best_bare * 1e9 / shots as f64;
    let instrumented_ns = best_hooked * 1e9 / shots as f64;
    OverheadRow {
        name: "telemetry_off_ghz16",
        shots,
        baseline_ns,
        instrumented_ns,
        overhead_percent: 100.0 * (instrumented_ns - baseline_ns) / baseline_ns,
    }
}

/// Times the context-reuse shot loop bare against the same loop opening a
/// trace span (plus one attribute probe) around *every shot*, with the
/// trace gate off — a far denser span rate than the real drivers use
/// (they trace per trajectory group / scheduler chunk), so the ≤ 2 %
/// budget bounds the worst case. With the gate off and no tracer
/// installed, `span` returns a no-op guard after one relaxed atomic load
/// and `attr` bails on the TLS check. Interleaved min-of-reps, outcomes
/// cross-checked by xor accumulator.
fn tracing_overhead_row(shots: usize, reps: usize) -> OverheadRow {
    use qsdd_telemetry::trace;
    trace::set_trace_enabled(false);
    let backend = DdSimulator::new();
    let circuit = ghz(16);
    let noise = NoiseModel::paper_defaults();
    let program = backend.compile(&circuit, &noise);
    let mut ctx = backend.new_context();
    let mut best_bare = f64::INFINITY;
    let mut best_hooked = f64::INFINITY;
    let mut bare_acc = 0u64;
    let mut hooked_acc = 0u64;
    for _ in 0..reps {
        let started = Instant::now();
        for shot in 0..shots as u64 {
            let mut rng = StdRng::seed_from_u64(shot);
            bare_acc ^= backend.run_shot(&program, &mut ctx, &mut rng).outcome;
        }
        best_bare = best_bare.min(started.elapsed().as_secs_f64());

        let started = Instant::now();
        for shot in 0..shots as u64 {
            let _span = trace::span("shots");
            let mut rng = StdRng::seed_from_u64(shot);
            let outcome = backend.run_shot(&program, &mut ctx, &mut rng).outcome;
            trace::attr("outcome", outcome);
            hooked_acc ^= outcome;
        }
        best_hooked = best_hooked.min(started.elapsed().as_secs_f64());
    }
    assert_eq!(bare_acc, hooked_acc, "span hooks changed outcomes");
    let baseline_ns = best_bare * 1e9 / shots as f64;
    let instrumented_ns = best_hooked * 1e9 / shots as f64;
    OverheadRow {
        name: "tracing_off_ghz16",
        shots,
        baseline_ns,
        instrumented_ns,
        overhead_percent: 100.0 * (instrumented_ns - baseline_ns) / baseline_ns,
    }
}

/// One serial-vs-fork-join comparison of the intra row.
struct IntraWorkload {
    name: &'static str,
    shots: usize,
    serial_ns: f64,
    parallel_ns: f64,
}

impl IntraWorkload {
    fn speedup(&self) -> f64 {
        self.serial_ns / self.parallel_ns
    }
}

/// The intra-shot fork-join comparison: both workloads plus the machine
/// shape the gate decisions are based on.
struct IntraRow {
    cores: usize,
    width: usize,
    dense: IntraWorkload,
    dd: IntraWorkload,
}

fn intra_workload_json(workload: &IntraWorkload) -> Value {
    Value::object(vec![
        ("name".to_string(), Value::from(workload.name)),
        ("shots".to_string(), Value::from(workload.shots)),
        ("serial_ns".to_string(), Value::from(workload.serial_ns)),
        ("mean_ns".to_string(), Value::from(workload.parallel_ns)),
        ("speedup".to_string(), Value::from(workload.speedup())),
    ])
}

/// Interleaved min-of-reps race of one engine at intra width 1 vs `width`,
/// on a single shot-worker (a single worker's intra request is honoured
/// as-is; several workers would clamp against `cores / workers`). Every
/// repetition cross-checks the parallel outcome against the serial one bit
/// for bit — the determinism contract says nothing may move.
fn intra_workload(
    name: &'static str,
    mut engine: ShotEngine,
    width: usize,
    shots: usize,
    reps: usize,
) -> IntraWorkload {
    let mut best_serial = f64::INFINITY;
    let mut best_parallel = f64::INFINITY;
    for _ in 0..reps {
        engine.set_intra_threads(1);
        let started = Instant::now();
        let serial = run_engine(&engine, shots, 1, &[]);
        best_serial = best_serial.min(started.elapsed().as_secs_f64());

        engine.set_intra_threads(width);
        let started = Instant::now();
        let parallel = run_engine(&engine, shots, 1, &[]);
        best_parallel = best_parallel.min(started.elapsed().as_secs_f64());

        assert_eq!(parallel.counts, serial.counts, "{name}: histogram moved");
        assert_eq!(parallel.error_events, serial.error_events, "{name}");
        assert_eq!(parallel.dd_nodes_peak, serial.dd_nodes_peak, "{name}");
    }
    IntraWorkload {
        name,
        shots,
        serial_ns: best_serial * 1e9 / shots as f64,
        parallel_ns: best_parallel * 1e9 / shots as f64,
    }
}

/// Races intra-shot fork-join execution against serial on the two shapes
/// it targets: a 22-qubit dense statevector workload (the flat
/// chunk-partitioned kernels) and a deep decision-diagram workload (QFT-16
/// under the paper's noise, where cofactor fork-join engages above the
/// level cutoff). The fork-join width adapts to the machine — `cores`
/// clamped into 2..=8 — so the row is meaningful on big runners and still
/// exercises the parallel code paths (as pure correctness evidence) on
/// small ones.
fn intra_row(test_mode: bool) -> IntraRow {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let width = cores.clamp(2, 8);
    let (dense_shots, dd_shots, reps) = if test_mode { (2, 8, 2) } else { (6, 200, 5) };
    let dense = intra_workload(
        "intra_dense_ghz22",
        ShotEngine::new(
            &ghz(22),
            BackendKind::Statevector,
            NoiseModel::noiseless().with_depolarizing(0.001),
            7,
            OptLevel::O0,
        ),
        width,
        dense_shots,
        reps,
    );
    let dd = intra_workload(
        "intra_dd_qft16_paper_noise",
        ShotEngine::new(
            &qft(16),
            BackendKind::DecisionDiagram,
            NoiseModel::paper_defaults(),
            7,
            OptLevel::O0,
        ),
        width,
        dd_shots,
        reps,
    );
    IntraRow {
        cores,
        width,
        dense,
        dd,
    }
}

/// Times compiled-program context reuse against the naive one-off path
/// (compile + fresh context per shot, the pre-refactor cost model).
fn context_reuse_row(shots: usize, reps: usize) -> Row {
    let backend = DdSimulator::new();
    let circuit = ghz(16);
    let noise = NoiseModel::paper_defaults();
    let mut best_naive = f64::INFINITY;
    let mut best_reused = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        let mut acc = 0u64;
        for shot in 0..shots as u64 {
            let mut rng = StdRng::seed_from_u64(shot);
            acc ^= backend.run_once(&circuit, &noise, &mut rng).outcome;
        }
        best_naive = best_naive.min(started.elapsed().as_secs_f64());

        let program = backend.compile(&circuit, &noise);
        let mut ctx = backend.new_context();
        let started = Instant::now();
        let mut reused_acc = 0u64;
        for shot in 0..shots as u64 {
            let mut rng = StdRng::seed_from_u64(shot);
            reused_acc ^= backend.run_shot(&program, &mut ctx, &mut rng).outcome;
        }
        best_reused = best_reused.min(started.elapsed().as_secs_f64());
        assert_eq!(acc, reused_acc, "context reuse changed outcomes");
    }
    Row {
        name: "context_reuse_ghz16_paper_noise",
        shots,
        naive_ns: best_naive * 1e9 / shots as f64,
        optimized_ns: best_reused * 1e9 / shots as f64,
    }
}
