//! `bench_summary` — machine-readable summary of the perf-trajectory
//! benchmarks.
//!
//! Runs the trajectory-deduplication and context-reuse workloads directly
//! (no criterion harness) plus the HTTP-server load scenario, and writes
//! `BENCH_6.json`: one entry per benchmark with the optimized and naive
//! mean per-shot cost in nanoseconds and the resulting speedup, a
//! `server` section with the service's throughput and cold-vs-cache-hit
//! latency, and a `metrics_overhead` row measuring what the disabled-mode
//! telemetry hooks cost the context-reuse hot loop. The JSON is parsed
//! back before the process exits, so a malformed writer fails loudly (CI
//! runs the binary in `--test-mode` with tiny shot counts on every push).
//!
//! ```text
//! bench_summary [--test-mode] [--out <path>]
//! ```
//!
//! * `--test-mode` shrinks shots and repetitions so the run finishes in
//!   seconds — the timings are then meaningless (except the overhead row,
//!   which keeps enough shots to stay meaningful and is asserted ≤ 2 %),
//!   but the whole pipeline (workloads, cross-checks, server round trips,
//!   JSON writer) is exercised.
//! * `--out` overrides the output path (default `BENCH_6.json`, i.e. the
//!   repo root when invoked from there).

use std::process::ExitCode;
use std::time::Instant;

use qsdd_batch::json::{self, Value};
use qsdd_bench::server_load::{run_load, LoadConfig};
use qsdd_circuit::generators::ghz;
use qsdd_core::{
    run_engine, run_engine_dedup, BackendKind, DdSimulator, OptLevel, ShotEngine, StochasticBackend,
};
use qsdd_noise::NoiseModel;
use qsdd_telemetry::{Stage, StageTimings};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One benchmark row of the summary.
struct Row {
    name: &'static str,
    shots: usize,
    naive_ns: f64,
    optimized_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.naive_ns / self.optimized_ns
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut test_mode = false;
    let mut out = "BENCH_6.json".to_string();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--test-mode" => test_mode = true,
            "--out" => match iter.next() {
                Some(path) => out = path.clone(),
                None => {
                    eprintln!("error: --out requires a path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("error: unknown flag `{other}` (expected --test-mode / --out)");
                return ExitCode::FAILURE;
            }
        }
    }

    let (shots, reps, reuse_shots) = if test_mode {
        (200, 2, 8)
    } else {
        (10_000, 7, 200)
    };
    let rows = vec![
        dedup_row(
            "dedup_ghz16_depol_1e-3",
            {
                ShotEngine::new(
                    &ghz(16),
                    BackendKind::DecisionDiagram,
                    NoiseModel::noiseless().with_depolarizing(0.001),
                    7,
                    OptLevel::O0,
                )
            },
            shots,
            reps,
        ),
        dedup_row(
            "dedup_ghz16_paper_noise",
            {
                ShotEngine::new(
                    &ghz(16),
                    BackendKind::DecisionDiagram,
                    NoiseModel::paper_defaults(),
                    7,
                    OptLevel::O0,
                )
            },
            shots,
            reps,
        ),
        context_reuse_row(reuse_shots, reps),
    ];

    for row in &rows {
        println!(
            "{:<28} naive {:>12.1} ns/shot | optimized {:>12.1} ns/shot | speedup {:>6.2}x",
            row.name,
            row.naive_ns,
            row.optimized_ns,
            row.speedup()
        );
    }

    // The telemetry overhead smoke: the disabled-mode hooks must stay
    // within 2 % of the bare context-reuse loop. Enough shots to make the
    // comparison meaningful even in test mode, where it is a hard gate.
    let (overhead_shots, overhead_reps) = if test_mode { (2_000, 9) } else { (20_000, 7) };
    let overhead = metrics_overhead_row(overhead_shots, overhead_reps);
    println!(
        "{:<28} bare {:>13.1} ns/shot | instrumented {:>10.1} ns/shot | overhead {:>5.2} %",
        overhead.name, overhead.baseline_ns, overhead.instrumented_ns, overhead.overhead_percent
    );
    if test_mode && overhead.overhead_percent > 2.0 {
        eprintln!(
            "error: disabled-mode telemetry overhead {:.2} % exceeds the 2 % budget",
            overhead.overhead_percent
        );
        return ExitCode::FAILURE;
    }

    // The HTTP service scenario: cold (uncached simulation) latency vs the
    // content-addressed cache-hit path, plus raw request throughput.
    let load_config = if test_mode {
        LoadConfig::test_mode()
    } else {
        LoadConfig::default_load()
    };
    let load = run_load(&load_config);
    println!(
        "{:<28} cold {:>13.3} ms | cache hit {:>12.3} ms | speedup {:>6.2}x | {:>8.1} req/s",
        "server_ghz12_cache",
        load.cold_latency.as_secs_f64() * 1e3,
        load.hit_latency.as_secs_f64() * 1e3,
        load.hit_speedup(),
        load.throughput_rps,
    );
    if load.errors > 0 {
        eprintln!("error: server load run dropped {} responses", load.errors);
        return ExitCode::FAILURE;
    }

    let document = Value::object(vec![
        ("format".to_string(), Value::from("qsdd-bench-summary/3")),
        ("test_mode".to_string(), Value::from(test_mode)),
        (
            "benchmarks".to_string(),
            Value::Array(
                rows.iter()
                    .map(|row| {
                        Value::object(vec![
                            ("name".to_string(), Value::from(row.name)),
                            ("shots".to_string(), Value::from(row.shots)),
                            ("naive_mean_ns".to_string(), Value::from(row.naive_ns)),
                            ("mean_ns".to_string(), Value::from(row.optimized_ns)),
                            ("speedup".to_string(), Value::from(row.speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "server".to_string(),
            Value::object(vec![
                ("name".to_string(), Value::from("server_ghz12_cache")),
                ("clients".to_string(), Value::from(load_config.clients)),
                ("requests".to_string(), Value::from(load.requests)),
                (
                    "throughput_rps".to_string(),
                    Value::from(load.throughput_rps),
                ),
                (
                    "cold_latency_ms".to_string(),
                    Value::from(load.cold_latency.as_secs_f64() * 1e3),
                ),
                (
                    "hit_latency_ms".to_string(),
                    Value::from(load.hit_latency.as_secs_f64() * 1e3),
                ),
                ("hit_speedup".to_string(), Value::from(load.hit_speedup())),
                ("errors".to_string(), Value::from(load.errors)),
            ]),
        ),
        (
            "metrics_overhead".to_string(),
            Value::object(vec![
                ("name".to_string(), Value::from(overhead.name)),
                ("shots".to_string(), Value::from(overhead.shots)),
                ("baseline_ns".to_string(), Value::from(overhead.baseline_ns)),
                (
                    "instrumented_ns".to_string(),
                    Value::from(overhead.instrumented_ns),
                ),
                (
                    "overhead_percent".to_string(),
                    Value::from(overhead.overhead_percent),
                ),
                ("budget_percent".to_string(), Value::from(2.0)),
            ]),
        ),
    ]);
    let text = document.to_pretty_string();
    // The writer must stay parseable: round-trip before touching the disk.
    if let Err(error) = json::parse(&text) {
        eprintln!("error: summary JSON does not parse back: {error}");
        return ExitCode::FAILURE;
    }
    if let Err(error) = std::fs::write(&out, &text) {
        eprintln!("error: cannot write `{out}`: {error}");
        return ExitCode::FAILURE;
    }
    println!("summary written to `{out}`");
    ExitCode::SUCCESS
}

/// Times the deduplicating runner against the per-shot path on one engine
/// (interleaved repetitions, minimum per path) and cross-checks that both
/// produce identical results.
fn dedup_row(name: &'static str, engine: ShotEngine, shots: usize, reps: usize) -> Row {
    let mut best_dedup = f64::INFINITY;
    let mut best_per_shot = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        let dedup = run_engine_dedup(&engine, shots, 1, &[]);
        best_dedup = best_dedup.min(started.elapsed().as_secs_f64());
        let started = Instant::now();
        let per_shot = run_engine(&engine, shots, 1, &[]);
        best_per_shot = best_per_shot.min(started.elapsed().as_secs_f64());
        assert_eq!(dedup.counts, per_shot.counts, "{name}: histogram mismatch");
        assert_eq!(dedup.error_events, per_shot.error_events, "{name}");
    }
    Row {
        name,
        shots,
        naive_ns: best_per_shot * 1e9 / shots as f64,
        optimized_ns: best_dedup * 1e9 / shots as f64,
    }
}

/// The telemetry-overhead measurement of the context-reuse hot loop.
struct OverheadRow {
    name: &'static str,
    shots: usize,
    baseline_ns: f64,
    instrumented_ns: f64,
    overhead_percent: f64,
}

/// Times the context-reuse shot loop bare against the same loop carrying
/// the per-job telemetry hooks the engine layer added (a stage-timings
/// span around the loop plus the enabled-gated publish), with telemetry
/// disabled — exactly the serving-path configuration the ≤ 2 % budget
/// protects. Repetitions interleave the two sides and each takes its
/// minimum, so scheduler noise hits both equally.
fn metrics_overhead_row(shots: usize, reps: usize) -> OverheadRow {
    qsdd_telemetry::set_enabled(false);
    let backend = DdSimulator::new();
    let circuit = ghz(16);
    let noise = NoiseModel::paper_defaults();
    let program = backend.compile(&circuit, &noise);
    let mut ctx = backend.new_context();
    let mut best_bare = f64::INFINITY;
    let mut best_hooked = f64::INFINITY;
    let mut bare_acc = 0u64;
    let mut hooked_acc = 0u64;
    for _ in 0..reps {
        let started = Instant::now();
        for shot in 0..shots as u64 {
            let mut rng = StdRng::seed_from_u64(shot);
            bare_acc ^= backend.run_shot(&program, &mut ctx, &mut rng).outcome;
        }
        best_bare = best_bare.min(started.elapsed().as_secs_f64());

        let started = Instant::now();
        let mut timings = StageTimings::new();
        let span = Instant::now();
        for shot in 0..shots as u64 {
            let mut rng = StdRng::seed_from_u64(shot);
            hooked_acc ^= backend.run_shot(&program, &mut ctx, &mut rng).outcome;
        }
        timings.record(Stage::Execute, span.elapsed());
        timings.publish();
        best_hooked = best_hooked.min(started.elapsed().as_secs_f64());
    }
    assert_eq!(bare_acc, hooked_acc, "telemetry hooks changed outcomes");
    let baseline_ns = best_bare * 1e9 / shots as f64;
    let instrumented_ns = best_hooked * 1e9 / shots as f64;
    OverheadRow {
        name: "telemetry_off_ghz16",
        shots,
        baseline_ns,
        instrumented_ns,
        overhead_percent: 100.0 * (instrumented_ns - baseline_ns) / baseline_ns,
    }
}

/// Times compiled-program context reuse against the naive one-off path
/// (compile + fresh context per shot, the pre-refactor cost model).
fn context_reuse_row(shots: usize, reps: usize) -> Row {
    let backend = DdSimulator::new();
    let circuit = ghz(16);
    let noise = NoiseModel::paper_defaults();
    let mut best_naive = f64::INFINITY;
    let mut best_reused = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        let mut acc = 0u64;
        for shot in 0..shots as u64 {
            let mut rng = StdRng::seed_from_u64(shot);
            acc ^= backend.run_once(&circuit, &noise, &mut rng).outcome;
        }
        best_naive = best_naive.min(started.elapsed().as_secs_f64());

        let program = backend.compile(&circuit, &noise);
        let mut ctx = backend.new_context();
        let started = Instant::now();
        let mut reused_acc = 0u64;
        for shot in 0..shots as u64 {
            let mut rng = StdRng::seed_from_u64(shot);
            reused_acc ^= backend.run_shot(&program, &mut ctx, &mut rng).outcome;
        }
        best_reused = best_reused.min(started.elapsed().as_secs_f64());
        assert_eq!(acc, reused_acc, "context reuse changed outcomes");
    }
    Row {
        name: "context_reuse_ghz16_paper_noise",
        shots,
        naive_ns: best_naive * 1e9 / shots as f64,
        optimized_ns: best_reused * 1e9 / shots as f64,
    }
}
