//! Ablation A1: how much does concurrency across simulation runs help?
//!
//! Runs a fixed stochastic workload with 1, 2, 4, ... worker threads and
//! reports wall-clock time and speedup — the "concurrency across different
//! simulation runs" claim of Section IV-C.
//!
//! Usage: `cargo run --release -p qsdd-bench --bin ablation_threads`

use std::time::Instant;

use qsdd_circuit::generators::{ghz, qft};
use qsdd_core::{BackendKind, StochasticSimulator};
use qsdd_noise::NoiseModel;

fn main() {
    let shots = std::env::var("QSDD_SHOTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000usize);
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let noise = NoiseModel::paper_defaults();

    for (name, circuit) in [("GHZ(20)", ghz(20)), ("QFT(16)", qft(16))] {
        println!("\n{name}: {shots} stochastic runs, decision-diagram back-end");
        println!("{:>8} {:>12} {:>10}", "threads", "time [s]", "speedup");
        let mut baseline = None;
        let mut threads = 1usize;
        while threads <= max_threads {
            let simulator = StochasticSimulator::new()
                .with_backend(BackendKind::DecisionDiagram)
                .with_shots(shots)
                .with_noise(noise)
                .with_threads(threads)
                .with_seed(1);
            let started = Instant::now();
            let _ = simulator.run(&circuit);
            let elapsed = started.elapsed().as_secs_f64();
            let speedup = baseline.map(|b: f64| b / elapsed).unwrap_or(1.0);
            if baseline.is_none() {
                baseline = Some(elapsed);
            }
            println!("{threads:>8} {elapsed:>12.3} {speedup:>9.2}x");
            threads *= 2;
        }
    }
}
