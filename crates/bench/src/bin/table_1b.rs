//! Regenerates Table Ib of the paper: stochastic noisy simulation of Quantum
//! Fourier Transform circuits with increasing qubit counts.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p qsdd-bench --bin table_1b
//! QSDD_SHOTS=1000 QSDD_BUDGET_SECS=120 cargo run --release -p qsdd-bench --bin table_1b
//! ```

use qsdd_bench::{print_header, print_row, HarnessConfig};
use qsdd_circuit::generators::qft;

fn main() {
    let config = HarnessConfig::from_env();
    println!(
        "Table Ib — QFT circuits, {} shots per cell, budget {:?} per cell",
        config.shots, config.budget
    );
    println!(
        "noise: depolarizing {:.3} %, T1 {:.3} %, T2 {:.3} %\n",
        config.noise.depolarizing_prob() * 100.0,
        config.noise.amplitude_damping_prob() * 100.0,
        config.noise.phase_flip_prob() * 100.0
    );
    print_header("qubits n");
    // The paper lists n = 12..19 and 63, 64.
    for n in [8usize, 12, 13, 14, 17, 18, 19, 32, 48, 63, 64] {
        let circuit = qft(n);
        print_row(&n.to_string(), &circuit, &config);
    }
}
