//! Support library for the benchmark harness.
//!
//! The binaries in `src/bin/` regenerate the tables of the paper's
//! evaluation section (Table Ia, Ib, Ic plus the Theorem 1 and ablation
//! experiments); the Criterion benchmarks in `benches/` provide
//! statistically robust micro-measurements of the same workloads. This
//! library holds the shared machinery: per-cell execution with a wall-clock
//! budget, the baseline/proposed pairing, and table formatting.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod server_load;

use std::time::{Duration, Instant};

use qsdd_circuit::Circuit;
use qsdd_core::{run_stochastic, DdSimulator, DenseSimulator, StochasticBackend, StochasticConfig};
use qsdd_noise::NoiseModel;

/// Which engine a table cell is measured with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// The dense statevector baseline (the "Qiskit"/"QLM" columns).
    Dense,
    /// The decision-diagram simulator (the "Proposed" column).
    DecisionDiagram,
}

impl Engine {
    /// Column label used in the printed tables.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Dense => "Dense baseline [s]",
            Engine::DecisionDiagram => "Proposed (DD) [s]",
        }
    }
}

/// The result of measuring one table cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CellOutcome {
    /// Completed within the budget; wall-clock seconds for the full shot
    /// count.
    Seconds(f64),
    /// Aborted: the run exceeded the wall-clock budget (seconds shown are
    /// the budget, mirroring the ">3600" entries of the paper).
    TimedOut(f64),
    /// Not attempted (e.g. the dense representation would not fit in
    /// memory).
    Skipped,
}

impl CellOutcome {
    /// Formats the cell like the paper's tables (`12.34`, `>60`, `-`).
    pub fn format(&self) -> String {
        match self {
            CellOutcome::Seconds(s) => format!("{s:.2}"),
            CellOutcome::TimedOut(budget) => format!(">{budget:.0}"),
            CellOutcome::Skipped => "-".to_string(),
        }
    }

    /// The measured seconds, if the cell completed.
    pub fn seconds(&self) -> Option<f64> {
        match self {
            CellOutcome::Seconds(s) => Some(*s),
            _ => None,
        }
    }
}

/// Configuration of a table regeneration run.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Stochastic runs per cell. The paper uses 30 000; the default here is
    /// far smaller so the tables regenerate in minutes — runtime scales
    /// linearly in this value (Section III), so the comparison shape is
    /// unchanged.
    pub shots: usize,
    /// Per-cell wall-clock budget.
    pub budget: Duration,
    /// Worker threads for the proposed simulator (0 = all cores).
    pub threads: usize,
    /// Largest qubit count attempted with the dense baseline.
    pub dense_limit: usize,
    /// Noise model applied after every gate.
    pub noise: NoiseModel,
    /// Master seed.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            shots: 200,
            budget: Duration::from_secs(30),
            threads: 0,
            dense_limit: 22,
            noise: NoiseModel::paper_defaults(),
            seed: 2021,
        }
    }
}

impl HarnessConfig {
    /// Reads overrides from environment variables (`QSDD_SHOTS`,
    /// `QSDD_BUDGET_SECS`, `QSDD_THREADS`, `QSDD_DENSE_LIMIT`).
    pub fn from_env() -> Self {
        let mut config = HarnessConfig::default();
        if let Some(shots) = read_env("QSDD_SHOTS") {
            config.shots = shots;
        }
        if let Some(budget) = read_env("QSDD_BUDGET_SECS") {
            config.budget = Duration::from_secs(budget as u64);
        }
        if let Some(threads) = read_env("QSDD_THREADS") {
            config.threads = threads;
        }
        if let Some(limit) = read_env("QSDD_DENSE_LIMIT") {
            config.dense_limit = limit;
        }
        config
    }
}

fn read_env(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Measures one table cell: `shots` stochastic runs of `circuit` with the
/// selected engine, aborting once the wall-clock budget is exceeded.
///
/// The budget is checked between chunks of shots, so the reported timeout is
/// conservative (like the 1-hour limit in the paper).
pub fn run_cell(engine: Engine, circuit: &Circuit, config: &HarnessConfig) -> CellOutcome {
    if engine == Engine::Dense && circuit.num_qubits() > config.dense_limit {
        return CellOutcome::Skipped;
    }
    match engine {
        Engine::Dense => run_cell_with(&DenseSimulator::new(), circuit, config, 1),
        Engine::DecisionDiagram => {
            run_cell_with(&DdSimulator::new(), circuit, config, config.threads)
        }
    }
}

fn run_cell_with<B: StochasticBackend>(
    backend: &B,
    circuit: &Circuit,
    config: &HarnessConfig,
    threads: usize,
) -> CellOutcome {
    let started = Instant::now();
    let chunk = (config.shots / 20).max(1);
    let mut done = 0usize;
    while done < config.shots {
        let this_chunk = chunk.min(config.shots - done);
        let run_config = StochasticConfig {
            shots: this_chunk,
            threads,
            seed: config.seed.wrapping_add(done as u64),
            noise: config.noise,
            dedup: true,
            weighted: None,
            intra_threads: 1,
        };
        let _ = run_stochastic(backend, circuit, &run_config, &[]);
        done += this_chunk;
        if started.elapsed() > config.budget {
            return CellOutcome::TimedOut(config.budget.as_secs_f64());
        }
    }
    CellOutcome::Seconds(started.elapsed().as_secs_f64())
}

/// Prints a table header with the standard columns.
pub fn print_header(first_column: &str) {
    println!(
        "{first_column:>16} {:>20} {:>20} {:>10}",
        Engine::Dense.label(),
        Engine::DecisionDiagram.label(),
        "speedup"
    );
}

/// Prints one table row and returns the (baseline, proposed) outcomes.
pub fn print_row(
    label: &str,
    circuit: &Circuit,
    config: &HarnessConfig,
) -> (CellOutcome, CellOutcome) {
    let dense = run_cell(Engine::Dense, circuit, config);
    let proposed = run_cell(Engine::DecisionDiagram, circuit, config);
    let speedup = match (dense.seconds(), proposed.seconds()) {
        (Some(a), Some(b)) if b > 0.0 => format!("{:.1}x", a / b),
        (None, Some(_)) => ">limit".to_string(),
        _ => "-".to_string(),
    };
    println!(
        "{label:>16} {:>20} {:>20} {:>10}",
        dense.format(),
        proposed.format(),
        speedup
    );
    (dense, proposed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::generators::ghz;

    #[test]
    fn cell_outcome_formatting() {
        assert_eq!(CellOutcome::Seconds(1.234).format(), "1.23");
        assert_eq!(CellOutcome::TimedOut(60.0).format(), ">60");
        assert_eq!(CellOutcome::Skipped.format(), "-");
        assert_eq!(CellOutcome::Seconds(2.0).seconds(), Some(2.0));
        assert_eq!(CellOutcome::Skipped.seconds(), None);
    }

    #[test]
    fn dense_cells_above_the_limit_are_skipped() {
        let config = HarnessConfig {
            shots: 1,
            dense_limit: 10,
            ..HarnessConfig::default()
        };
        let outcome = run_cell(Engine::Dense, &ghz(12), &config);
        assert_eq!(outcome, CellOutcome::Skipped);
    }

    #[test]
    fn small_cells_complete_within_budget() {
        let config = HarnessConfig {
            shots: 5,
            budget: Duration::from_secs(20),
            ..HarnessConfig::default()
        };
        let outcome = run_cell(Engine::DecisionDiagram, &ghz(8), &config);
        assert!(matches!(outcome, CellOutcome::Seconds(_)));
    }

    #[test]
    fn tiny_budget_reports_timeout() {
        let config = HarnessConfig {
            shots: 2000,
            budget: Duration::from_millis(1),
            ..HarnessConfig::default()
        };
        let outcome = run_cell(Engine::DecisionDiagram, &ghz(20), &config);
        assert!(matches!(outcome, CellOutcome::TimedOut(_)));
    }
}
