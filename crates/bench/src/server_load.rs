//! Loopback load generator for the `qsdd-server` HTTP service.
//!
//! Boots a server in-process on an ephemeral port and drives it with many
//! concurrent keep-alive clients, separating the two costs that matter for
//! the service deployment shape:
//!
//! * **cold latency** — submit → poll-to-completion of an uncached job
//!   (one full simulation through the worker pool), and
//! * **hit latency / throughput** — the steady-state cost of a request
//!   served by the content-addressed result cache.
//!
//! Used by the `bench_server` binary (human-readable report) and by
//! `bench_summary` (the `BENCH_5.json` server row); both run it with tiny
//! parameters in `--test-mode` so CI exercises the whole path on every
//! push.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use qsdd_json::{self as json, Value};
use qsdd_server::{client, Server, ServerConfig};

/// Knobs of one load run.
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Concurrent client threads in the hot phase.
    pub clients: usize,
    /// Requests each client issues in the hot phase.
    pub requests_per_client: usize,
    /// Distinct jobs in the working set (cycled through by every client).
    pub distinct_jobs: usize,
    /// Shots per job.
    pub shots: usize,
    /// Simulation worker threads of the server (`0` = all cores).
    pub server_threads: usize,
}

impl LoadConfig {
    /// The full-size configuration of the benchmark report.
    pub fn default_load() -> Self {
        LoadConfig {
            clients: 64,
            requests_per_client: 50,
            distinct_jobs: 8,
            shots: 2000,
            server_threads: 0,
        }
    }

    /// A tiny configuration that finishes in well under a second (CI).
    pub fn test_mode() -> Self {
        LoadConfig {
            clients: 8,
            requests_per_client: 4,
            distinct_jobs: 2,
            shots: 50,
            server_threads: 2,
        }
    }
}

/// Aggregate results of one load run.
#[derive(Clone, Copy, Debug)]
pub struct LoadReport {
    /// Total cache-phase requests completed successfully.
    pub requests: usize,
    /// Wall time of the cache phase.
    pub wall: Duration,
    /// Cache-phase requests per second (all clients together).
    pub throughput_rps: f64,
    /// Mean submit → completed latency of an uncached job (sequential,
    /// unloaded server).
    pub cold_latency: Duration,
    /// Mean latency of a cache-served request, measured like the cold
    /// latency: one client, sequential requests, unloaded server (so the
    /// two numbers are comparable; the concurrent phase measures
    /// throughput, not latency).
    pub hit_latency: Duration,
    /// Dropped or incorrect responses (must be zero).
    pub errors: usize,
}

impl LoadReport {
    /// Cold-to-hit latency ratio (how much the result cache buys).
    pub fn hit_speedup(&self) -> f64 {
        self.cold_latency.as_secs_f64() / self.hit_latency.as_secs_f64().max(1e-9)
    }
}

fn job_body(seed: usize, shots: usize) -> String {
    format!(r#"{{"circuit":{{"generator":"ghz","qubits":12}},"shots":{shots},"seed":{seed}}}"#)
}

/// Submits one job and polls it to completion; returns the job id.
fn submit_and_wait(session: &mut client::Client, body: &str) -> Result<String, String> {
    let (status, response) = session
        .request("POST", "/v1/jobs", Some(body))
        .map_err(|e| e.to_string())?;
    if status != 200 && status != 202 {
        return Err(format!("submit returned {status}: {response}"));
    }
    let id = json::parse(&response)
        .map_err(|e| e.to_string())?
        .get("id")
        .and_then(Value::as_str)
        .ok_or("submission response carries no id")?
        .to_string();
    loop {
        let (status, response) = session
            .request("GET", &format!("/v1/jobs/{id}"), None)
            .map_err(|e| e.to_string())?;
        if status != 200 {
            return Err(format!("poll returned {status}"));
        }
        match json::parse(&response)
            .map_err(|e| e.to_string())?
            .get("status")
            .and_then(Value::as_str)
        {
            Some("completed") => return Ok(id),
            Some("failed") => return Err("job failed".to_string()),
            _ => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Runs the whole load scenario against a freshly booted server.
///
/// # Panics
///
/// Panics when the server cannot bind the loopback address.
pub fn run_load(config: &LoadConfig) -> LoadReport {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: config.server_threads,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.addr();

    // Cold phase: every distinct job once, sequentially, timed end to end.
    let mut session = client::Client::connect(addr).expect("connect");
    let mut cold_total = Duration::ZERO;
    for seed in 0..config.distinct_jobs {
        let started = Instant::now();
        submit_and_wait(&mut session, &job_body(seed, config.shots)).expect("cold job");
        cold_total += started.elapsed();
    }
    let cold_latency = cold_total / config.distinct_jobs.max(1) as u32;

    // Unloaded cache-hit latency: same measurement shape as the cold
    // phase — one client, sequential — so the two are comparable.
    let hit_samples = (config.distinct_jobs * 4).max(16);
    let started = Instant::now();
    for sample in 0..hit_samples {
        submit_and_wait(
            &mut session,
            &job_body(sample % config.distinct_jobs, config.shots),
        )
        .expect("cache-hit job");
    }
    let hit_latency = started.elapsed() / hit_samples as u32;

    // Hot phase: every request lands in the result cache; many concurrent
    // clients measure aggregate throughput.
    let errors = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client_index in 0..config.clients {
            let errors = &errors;
            let completed = &completed;
            scope.spawn(move || {
                let Ok(mut session) = client::Client::connect(addr) else {
                    errors.fetch_add(config.requests_per_client, Ordering::Relaxed);
                    return;
                };
                for request in 0..config.requests_per_client {
                    let seed = (client_index + request) % config.distinct_jobs;
                    match submit_and_wait(&mut session, &job_body(seed, config.shots)) {
                        Ok(_) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall = started.elapsed();
    let requests = completed.load(Ordering::Relaxed);
    server.shutdown_and_join();

    LoadReport {
        requests,
        wall,
        throughput_rps: requests as f64 / wall.as_secs_f64().max(1e-9),
        cold_latency,
        hit_latency,
        errors: errors.load(Ordering::Relaxed),
    }
}
