//! Loopback load generator for the `qsdd-server` HTTP service.
//!
//! Boots a server in-process on an ephemeral port and drives it with many
//! concurrent keep-alive clients, separating the two costs that matter for
//! the service deployment shape:
//!
//! * **cold latency** — submit → poll-to-completion of an uncached job
//!   (one full simulation through the worker pool), and
//! * **hit latency / throughput** — the steady-state cost of a request
//!   served by the content-addressed result cache.
//!
//! Used by the `bench_server` binary (human-readable report) and by
//! `bench_summary` (the `BENCH_5.json` server row); both run it with tiny
//! parameters in `--test-mode` so CI exercises the whole path on every
//! push.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use qsdd_json::{self as json, Value};
use qsdd_server::{client, Server, ServerConfig};

/// Knobs of one load run.
#[derive(Clone, Copy, Debug)]
pub struct LoadConfig {
    /// Concurrent client threads in the hot phase.
    pub clients: usize,
    /// Requests each client issues in the hot phase.
    pub requests_per_client: usize,
    /// Distinct jobs in the working set (cycled through by every client).
    pub distinct_jobs: usize,
    /// Shots per job.
    pub shots: usize,
    /// Simulation worker threads of the server (`0` = all cores).
    pub server_threads: usize,
}

impl LoadConfig {
    /// The full-size configuration of the benchmark report.
    pub fn default_load() -> Self {
        LoadConfig {
            clients: 64,
            requests_per_client: 50,
            distinct_jobs: 8,
            shots: 2000,
            server_threads: 0,
        }
    }

    /// A tiny configuration that finishes in well under a second (CI).
    pub fn test_mode() -> Self {
        LoadConfig {
            clients: 8,
            requests_per_client: 4,
            distinct_jobs: 2,
            shots: 50,
            server_threads: 2,
        }
    }
}

/// Aggregate results of one load run.
#[derive(Clone, Copy, Debug)]
pub struct LoadReport {
    /// Total cache-phase requests completed successfully.
    pub requests: usize,
    /// Wall time of the cache phase.
    pub wall: Duration,
    /// Cache-phase requests per second (all clients together).
    pub throughput_rps: f64,
    /// Mean submit → completed latency of an uncached job (sequential,
    /// unloaded server).
    pub cold_latency: Duration,
    /// Mean latency of a cache-served request, measured like the cold
    /// latency: one client, sequential requests, unloaded server (so the
    /// two numbers are comparable; the concurrent phase measures
    /// throughput, not latency).
    pub hit_latency: Duration,
    /// Dropped or incorrect responses (must be zero).
    pub errors: usize,
}

impl LoadReport {
    /// Cold-to-hit latency ratio (how much the result cache buys).
    pub fn hit_speedup(&self) -> f64 {
        self.cold_latency.as_secs_f64() / self.hit_latency.as_secs_f64().max(1e-9)
    }
}

fn job_body(seed: usize, shots: usize) -> String {
    format!(r#"{{"circuit":{{"generator":"ghz","qubits":12}},"shots":{shots},"seed":{seed}}}"#)
}

/// Submits one job and polls it to completion; returns the job id.
///
/// Submission goes through [`client::with_retry`]: under heavy concurrency
/// the queue can transiently fill, and a 429 is an invitation to retry
/// with backoff, not a dropped response.
fn submit_and_wait(session: &mut client::Client, body: &str) -> Result<String, String> {
    let (status, _, response) = client::with_retry(4, Duration::from_millis(5), 0x9d, || {
        session.request_with_headers("POST", "/v1/jobs", Some(body))
    })
    .map_err(|e| e.to_string())?;
    if status != 200 && status != 202 {
        return Err(format!("submit returned {status}: {response}"));
    }
    let id = json::parse(&response)
        .map_err(|e| e.to_string())?
        .get("id")
        .and_then(Value::as_str)
        .ok_or("submission response carries no id")?
        .to_string();
    loop {
        let (status, response) = session
            .request("GET", &format!("/v1/jobs/{id}"), None)
            .map_err(|e| e.to_string())?;
        if status != 200 {
            return Err(format!("poll returned {status}"));
        }
        match json::parse(&response)
            .map_err(|e| e.to_string())?
            .get("status")
            .and_then(Value::as_str)
        {
            Some("completed") => return Ok(id),
            Some("failed") => return Err("job failed".to_string()),
            _ => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Runs the whole load scenario against a freshly booted server.
///
/// # Panics
///
/// Panics when the server cannot bind the loopback address.
pub fn run_load(config: &LoadConfig) -> LoadReport {
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: config.server_threads,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.addr();

    // Cold phase: every distinct job once, sequentially, timed end to end.
    let mut session = client::Client::connect(addr).expect("connect");
    let mut cold_total = Duration::ZERO;
    for seed in 0..config.distinct_jobs {
        let started = Instant::now();
        submit_and_wait(&mut session, &job_body(seed, config.shots)).expect("cold job");
        cold_total += started.elapsed();
    }
    let cold_latency = cold_total / config.distinct_jobs.max(1) as u32;

    // Unloaded cache-hit latency: same measurement shape as the cold
    // phase — one client, sequential — so the two are comparable.
    let hit_samples = (config.distinct_jobs * 4).max(16);
    let started = Instant::now();
    for sample in 0..hit_samples {
        submit_and_wait(
            &mut session,
            &job_body(sample % config.distinct_jobs, config.shots),
        )
        .expect("cache-hit job");
    }
    let hit_latency = started.elapsed() / hit_samples as u32;

    // Hot phase: every request lands in the result cache; many concurrent
    // clients measure aggregate throughput.
    let errors = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client_index in 0..config.clients {
            let errors = &errors;
            let completed = &completed;
            scope.spawn(move || {
                let Ok(mut session) = client::Client::connect(addr) else {
                    errors.fetch_add(config.requests_per_client, Ordering::Relaxed);
                    return;
                };
                for request in 0..config.requests_per_client {
                    let seed = (client_index + request) % config.distinct_jobs;
                    match submit_and_wait(&mut session, &job_body(seed, config.shots)) {
                        Ok(_) => {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall = started.elapsed();
    let requests = completed.load(Ordering::Relaxed);
    server.shutdown_and_join();

    LoadReport {
        requests,
        wall,
        throughput_rps: requests as f64 / wall.as_secs_f64().max(1e-9),
        cold_latency,
        hit_latency,
        errors: errors.load(Ordering::Relaxed),
    }
}

/// Results of the warm-restart scenario: what the durable result store
/// buys across a process restart.
#[derive(Clone, Copy, Debug)]
pub struct WarmRestartReport {
    /// Jobs completed (and persisted) in the first server life.
    pub jobs: usize,
    /// Mean submit → completed latency of an uncached job in life one
    /// (the cost a restart without a store would pay again).
    pub cold_latency: Duration,
    /// Mean GET latency against the store-warmed cache after the restart
    /// (no simulation runs; the store replayed every record at boot).
    pub warm_hit_latency: Duration,
    /// Whether every post-restart response was byte-identical to its
    /// pre-restart counterpart (must be true — the durability invariant).
    pub byte_identical: bool,
    /// Dropped or failed requests across both lives (must be zero).
    pub errors: usize,
}

impl WarmRestartReport {
    /// Cold-to-warm latency ratio (what the store saves on restart).
    pub fn warm_speedup(&self) -> f64 {
        self.cold_latency.as_secs_f64() / self.warm_hit_latency.as_secs_f64().max(1e-9)
    }
}

/// Runs the warm-restart scenario: complete the working set against a
/// store-backed server, shut it down, boot a second server on the same
/// store directory, and measure how fast (and how faithfully) the restored
/// cache answers.
///
/// # Panics
///
/// Panics when the server cannot bind the loopback address or the scratch
/// store directory cannot be created.
pub fn run_warm_restart(config: &LoadConfig) -> WarmRestartReport {
    let store_dir =
        std::env::temp_dir().join(format!("qsdd-bench-warm-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let boot = |dir: &std::path::Path| {
        Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: config.server_threads,
            store_dir: Some(dir.to_string_lossy().into_owned()),
            ..ServerConfig::default()
        })
        .expect("bind loopback")
    };

    // Life one: run every distinct job cold and capture the exact bytes
    // each GET answers with.
    let server = boot(&store_dir);
    let mut session = client::Client::connect(server.addr()).expect("connect");
    let mut errors = 0usize;
    let mut cold_total = Duration::ZERO;
    let mut served: Vec<(String, String)> = Vec::new();
    for seed in 0..config.distinct_jobs {
        let started = Instant::now();
        match submit_and_wait(&mut session, &job_body(seed, config.shots)) {
            Ok(id) => {
                cold_total += started.elapsed();
                match session.request("GET", &format!("/v1/jobs/{id}"), None) {
                    Ok((200, body)) => served.push((id, body)),
                    _ => errors += 1,
                }
            }
            Err(_) => errors += 1,
        }
    }
    let cold_latency = cold_total / config.distinct_jobs.max(1) as u32;
    server.shutdown_and_join();

    // Life two: same directory. The store replays every record into the
    // cache at boot; GETs must be fast and byte-identical.
    let server = boot(&store_dir);
    let mut session = client::Client::connect(server.addr()).expect("connect");
    let mut byte_identical = !served.is_empty();
    let samples = 4;
    let started = Instant::now();
    for _ in 0..samples {
        for (id, before) in &served {
            match session.request("GET", &format!("/v1/jobs/{id}"), None) {
                Ok((200, body)) => byte_identical &= &body == before,
                _ => errors += 1,
            }
        }
    }
    let warm_hit_latency = started.elapsed() / (samples * served.len().max(1)) as u32;
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&store_dir);

    WarmRestartReport {
        jobs: served.len(),
        cold_latency,
        warm_hit_latency,
        byte_identical,
        errors,
    }
}
