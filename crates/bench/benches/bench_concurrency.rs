//! Ablation A1 (Criterion variant): Monte-Carlo throughput with 1, 2 and 4
//! worker threads — the "concurrency across simulation runs" design choice.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsdd_circuit::generators::ghz;
use qsdd_core::{run_stochastic, DdSimulator, StochasticConfig};
use qsdd_noise::NoiseModel;

fn bench_concurrency(c: &mut Criterion) {
    let mut group = c.benchmark_group("concurrency");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let circuit = ghz(20);
    let backend = DdSimulator::new();
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("ghz20_128shots", threads),
            &threads,
            |b, &threads| {
                let config = StochasticConfig {
                    shots: 128,
                    threads,
                    seed: 5,
                    noise: NoiseModel::paper_defaults(),
                    dedup: true,
                    weighted: None,
                    intra_threads: 1,
                };
                b.iter(|| run_stochastic(&backend, &circuit, &config, &[]));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_concurrency);
criterion_main!(benches);
