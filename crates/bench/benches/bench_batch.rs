//! Criterion benchmark for the `qsdd-batch` scheduler: batched (one shared
//! worker pool interleaving every job's shots) versus sequential (the same
//! jobs run one after another, each with its own pool) on a mixed
//! GHZ / QFT / Grover job set.
//!
//! The batched mode wins on ragged workloads because the pool never drains:
//! while a sequential driver waits for the last straggler shots of job *k*
//! before starting job *k+1*, the interleaving scheduler keeps every worker
//! busy with chunks of whichever jobs still have shots outstanding.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsdd_batch::{jobfile::CircuitSource, run_batch, BatchOptions, JobSpec};

const THREADS: usize = 4;

/// A deliberately ragged mix: one wide job, one deep job, one small job.
fn mixed_jobs(shots_scale: u64) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (index, (name, kind, qubits, shots)) in [
        ("ghz-wide", "ghz", 14usize, 8 * shots_scale),
        ("qft-deep", "qft", 8, 4 * shots_scale),
        ("grover-small", "grover", 6, shots_scale),
    ]
    .into_iter()
    .enumerate()
    {
        let mut spec = JobSpec::new(
            name,
            CircuitSource::Generator {
                kind: kind.to_string(),
                qubits,
            },
            index,
        );
        spec.shots = shots;
        spec.seed = 1 + index as u64;
        jobs.push(spec);
    }
    jobs
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    for shots_scale in [16u64, 64] {
        let jobs = mixed_jobs(shots_scale);
        let total_shots: u64 = jobs.iter().map(|j| j.shots).sum();
        group.bench_with_input(
            BenchmarkId::new("interleaved", total_shots),
            &jobs,
            |b, jobs| {
                b.iter(|| run_batch(jobs, &BatchOptions::with_threads(THREADS)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sequential", total_shots),
            &jobs,
            |b, jobs| {
                b.iter(|| {
                    // One job at a time, each with the full worker pool: the
                    // per-job drain is what the interleaved mode avoids.
                    jobs.iter()
                        .map(|job| {
                            run_batch(
                                std::slice::from_ref(job),
                                &BatchOptions::with_threads(THREADS),
                            )
                        })
                        .collect::<Vec<_>>()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
