//! Ablation A3: effect of the operation caches (compute tables) inside the
//! decision diagram package on simulation cost.
//!
//! Each iteration goes through `run_once` (compile + one shot), so the
//! comparison covers the caches' effect on both operator construction and
//! live shot evolution.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsdd_circuit::generators::{grover, qft};
use qsdd_core::{DdSimulator, StochasticBackend};
use qsdd_noise::NoiseModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_compute_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_table");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let noise = NoiseModel::paper_defaults();
    let workloads = [("qft_14", qft(14)), ("grover_8", grover(8, 5, Some(3)))];
    for (name, circuit) in &workloads {
        group.bench_with_input(BenchmarkId::new("cached", name), circuit, |b, circuit| {
            let backend = DdSimulator::new();
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                backend.run_once(circuit, &noise, &mut rng)
            });
        });
        group.bench_with_input(BenchmarkId::new("uncached", name), circuit, |b, circuit| {
            let backend = DdSimulator::without_caching();
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                backend.run_once(circuit, &noise, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compute_table);
criterion_main!(benches);
