//! Criterion benchmark for Table Ib (QFT circuits): stochastic noisy
//! simulation cost per batch of runs, decision diagram vs. dense baseline.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsdd_circuit::generators::qft;
use qsdd_core::{run_stochastic, DdSimulator, DenseSimulator, StochasticConfig};
use qsdd_noise::NoiseModel;

const SHOTS: usize = 5;

fn config() -> StochasticConfig {
    StochasticConfig {
        shots: SHOTS,
        threads: 1,
        seed: 1,
        noise: NoiseModel::paper_defaults(),
        dedup: true,
        weighted: None,
        intra_threads: 1,
    }
}

fn bench_qft(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1b_qft");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for n in [8usize, 12, 16, 20, 24] {
        let circuit = qft(n);
        group.bench_with_input(
            BenchmarkId::new("proposed_dd", n),
            &circuit,
            |b, circuit| {
                let backend = DdSimulator::new();
                b.iter(|| run_stochastic(&backend, circuit, &config(), &[]));
            },
        );
        if n <= 12 {
            group.bench_with_input(
                BenchmarkId::new("dense_baseline", n),
                &circuit,
                |b, circuit| {
                    let backend = DenseSimulator::new();
                    b.iter(|| run_stochastic(&backend, circuit, &config(), &[]));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_qft);
criterion_main!(benches);
