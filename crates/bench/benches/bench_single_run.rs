//! Ablation A2: cost of a *single* stochastic run, decision diagram vs.
//! dense statevector, isolating the per-run data-structure advantage from
//! the Monte-Carlo parallelism.
//!
//! Each backend's program is compiled once outside the measurement and the
//! iterations execute single shots against a pre-seated context, so the
//! numbers reflect the steady-state per-run cost (what a shot loop
//! actually pays), not the one-off compile phase. Compile-inclusive
//! fresh-package cost is measured by `bench_context_reuse`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsdd_circuit::generators::{ghz, qft};
use qsdd_core::{DdSimulator, DenseSimulator, StochasticBackend};
use qsdd_noise::NoiseModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_single_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_run");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let noise = NoiseModel::paper_defaults();
    let workloads = [("ghz_14", ghz(14)), ("qft_12", qft(12))];
    for (name, circuit) in &workloads {
        group.bench_with_input(BenchmarkId::new("dd", name), circuit, |b, circuit| {
            let backend = DdSimulator::new();
            let program = backend.compile(circuit, &noise);
            let mut ctx = backend.new_context();
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                backend.run_shot(&program, &mut ctx, &mut rng)
            });
        });
        group.bench_with_input(BenchmarkId::new("dense", name), circuit, |b, circuit| {
            let backend = DenseSimulator::new();
            let program = backend.compile(circuit, &noise);
            let mut ctx = backend.new_context();
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                backend.run_shot(&program, &mut ctx, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_run);
criterion_main!(benches);
