//! Criterion benchmark for Table Ic (QASMBench-style circuits): stochastic
//! noisy simulation cost per batch of runs for a selection of the suite.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsdd_circuit::generators::qasmbench_suite;
use qsdd_core::{run_stochastic, DdSimulator, DenseSimulator, StochasticConfig};
use qsdd_noise::NoiseModel;

const SHOTS: usize = 5;

fn config() -> StochasticConfig {
    StochasticConfig {
        shots: SHOTS,
        threads: 1,
        seed: 1,
        noise: NoiseModel::paper_defaults(),
        dedup: true,
        weighted: None,
        intra_threads: 1,
    }
}

fn bench_qasmbench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1c_qasmbench");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // A fast-to-measure selection of the suite: one structured circuit that
    // favours decision diagrams (bv), one arithmetic circuit (multiplier) and
    // one gate-dense circuit that favours the dense baseline (vqe ansatz).
    let selected = ["bv_19", "multiplier_15", "vqe_uccsd_6", "seca_11"];
    for entry in qasmbench_suite() {
        if !selected.contains(&entry.name) {
            continue;
        }
        group.bench_with_input(
            BenchmarkId::new("proposed_dd", entry.name),
            &entry.circuit,
            |b, circuit| {
                let backend = DdSimulator::new();
                b.iter(|| run_stochastic(&backend, circuit, &config(), &[]));
            },
        );
        if entry.num_qubits <= 12 {
            group.bench_with_input(
                BenchmarkId::new("dense_baseline", entry.name),
                &entry.circuit,
                |b, circuit| {
                    let backend = DenseSimulator::new();
                    b.iter(|| run_stochastic(&backend, circuit, &config(), &[]));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_qasmbench);
criterion_main!(benches);
