//! Criterion benchmark for the compile/execute refactor: per-shot cost of
//! the **fresh-package baseline** (a faithful replica of the historical
//! `run_once`: a brand-new `DdPackage` per shot, every operator diagram
//! re-hash-consed per gate occurrence, error operators built only when an
//! error fires) versus the **compiled program with a reused context**
//! (compile once, rewind the same context between shots) on the mixed
//! GHZ / QFT / Grover set under the paper's noise model.
//!
//! Besides the usual per-benchmark timings, the run prints explicit
//! `speedup` lines (`reuse ≥ 2×` is the acceptance bar for the refactor)
//! computed over the identical shot workload, per circuit and for the
//! mixed set as a whole, plus an outcome cross-check between the two
//! paths (both consume the per-shot random stream identically).

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qsdd_circuit::generators::{ghz, grover, qft};
use qsdd_circuit::{Circuit, Operation};
use qsdd_core::{DdSimulator, StochasticBackend};
use qsdd_dd::{DdPackage, Matrix2};
use qsdd_noise::{NoiseModel, StochasticAction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SHOTS: u64 = 10;

/// The mixed benchmark set: one entanglement, one transform, one search
/// circuit (the workload families of Tables Ia-Ic).
fn mixed_set() -> Vec<(&'static str, Circuit)> {
    vec![
        ("ghz_16", ghz(16)),
        ("qft_12", qft(12)),
        ("grover_6", grover(6, 1, None)),
    ]
}

/// One shot exactly the way the pre-refactor `DdSimulator::run_once` did
/// it: fresh package, operators hash-consed per gate occurrence, stochastic
/// error operators built lazily when an error fires.
fn legacy_fresh_shot(circuit: &Circuit, noise: &NoiseModel, rng: &mut StdRng) -> u64 {
    let n = circuit.num_qubits();
    let mut dd = DdPackage::new();
    let mut state = dd.zero_state(n);
    let mut clbits = vec![false; circuit.num_clbits()];
    let mut measured_any = false;
    let channels = noise.channels();
    for op in circuit {
        match op {
            Operation::Gate {
                gate,
                target,
                controls,
            } => {
                let m = gate.matrix().expect("non-swap gates provide a matrix");
                let op_dd = dd.controlled_op(n, *target, controls, m);
                state = dd.mat_vec_mul(op_dd, state);
            }
            Operation::Swap { a, b } => {
                let op_dd = dd.swap_op(n, *a, *b);
                state = dd.mat_vec_mul(op_dd, state);
            }
            Operation::Measure { qubit, clbit } => {
                let (outcome, collapsed) = dd.measure_qubit(state, *qubit, rng);
                state = collapsed;
                clbits[*clbit] = outcome;
                measured_any = true;
                continue;
            }
            Operation::Reset { qubit } => {
                let (outcome, collapsed) = dd.measure_qubit(state, *qubit, rng);
                state = collapsed;
                if outcome {
                    let x = dd.single_qubit_op(n, *qubit, Matrix2::pauli_x());
                    state = dd.mat_vec_mul(x, state);
                }
                continue;
            }
            Operation::Barrier => continue,
        }
        for qubit in op.qubits() {
            for channel in &channels {
                match channel.sample_action(rng) {
                    StochasticAction::None => {}
                    StochasticAction::Unitary(m) => {
                        let err = dd.single_qubit_op(n, qubit, m);
                        state = dd.mat_vec_mul(err, state);
                    }
                    StochasticAction::Kraus(branches) => {
                        let decay = dd.single_qubit_op(n, qubit, branches[0]);
                        let (p_decay, decayed) = dd.apply_kraus(decay, state);
                        if rng.gen::<f64>() < p_decay {
                            state = decayed;
                        } else {
                            let keep = dd.single_qubit_op(n, qubit, branches[1]);
                            let (_, kept) = dd.apply_kraus(keep, state);
                            state = kept;
                        }
                    }
                }
            }
        }
    }
    if measured_any {
        clbits
            .iter()
            .fold(0u64, |acc, &bit| (acc << 1) | u64::from(bit))
    } else {
        dd.sample_measurement(state, n, rng)
    }
}

fn run_legacy(circuit: &Circuit, noise: &NoiseModel, shots: u64) -> u64 {
    let mut acc = 0u64;
    for shot in 0..shots {
        let mut rng = StdRng::seed_from_u64(shot);
        acc ^= legacy_fresh_shot(circuit, noise, &mut rng);
    }
    acc
}

/// Runs `shots` shots the compiled way: the program is prepared once by the
/// caller and the worker context is rewound between shots.
fn run_reused(
    backend: &DdSimulator,
    program: &<DdSimulator as StochasticBackend>::Program,
    ctx: &mut <DdSimulator as StochasticBackend>::Context,
    shots: u64,
) -> u64 {
    let mut acc = 0u64;
    for shot in 0..shots {
        let mut rng = StdRng::seed_from_u64(shot);
        acc ^= backend.run_shot(program, ctx, &mut rng).outcome;
    }
    acc
}

fn bench_context_reuse(c: &mut Criterion) {
    let noise = NoiseModel::paper_defaults();
    let backend = DdSimulator::new();
    let mut group = c.benchmark_group("context_reuse");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for (name, circuit) in &mixed_set() {
        group.bench_with_input(
            BenchmarkId::new("fresh_package", name),
            circuit,
            |b, circuit| {
                b.iter(|| black_box(run_legacy(circuit, &noise, SHOTS)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reused_context", name),
            circuit,
            |b, circuit| {
                let program = backend.compile(circuit, &noise);
                let mut ctx = backend.new_context();
                b.iter(|| black_box(run_reused(&backend, &program, &mut ctx, SHOTS)));
            },
        );
    }
    group.finish();

    // Explicit speedup report over an identical, larger workload: the
    // headline number of the compile/execute refactor. Outcomes of both
    // paths are cross-checked shot by shot along the way (both consume the
    // per-shot generator identically).
    let report_shots = 200u64;
    let mut fresh_total = Duration::ZERO;
    let mut reused_total = Duration::ZERO;
    let mut mismatches = 0u64;
    println!("## context_reuse speedup ({report_shots} shots per circuit)");
    for (name, circuit) in &mixed_set() {
        let started = Instant::now();
        black_box(run_legacy(circuit, &noise, report_shots));
        let fresh = started.elapsed();

        let program = backend.compile(circuit, &noise);
        let mut ctx = backend.new_context();
        // Seat the context once outside the measurement, mirroring a warm
        // worker; the first rewind is identical to every later one.
        black_box(run_reused(&backend, &program, &mut ctx, 1));
        let started = Instant::now();
        black_box(run_reused(&backend, &program, &mut ctx, report_shots));
        let reused = started.elapsed();

        for shot in 0..32u64 {
            let mut rng_a = StdRng::seed_from_u64(shot);
            let mut rng_b = StdRng::seed_from_u64(shot);
            let legacy = legacy_fresh_shot(circuit, &noise, &mut rng_a);
            let compiled = backend.run_shot(&program, &mut ctx, &mut rng_b).outcome;
            if legacy != compiled {
                mismatches += 1;
            }
        }

        fresh_total += fresh;
        reused_total += reused;
        println!(
            "speedup/{name}: fresh {:.3} ms, reused {:.3} ms, speedup {:.2}x",
            fresh.as_secs_f64() * 1e3,
            reused.as_secs_f64() * 1e3,
            fresh.as_secs_f64() / reused.as_secs_f64()
        );
    }
    println!(
        "speedup/mixed_total: fresh {:.3} ms, reused {:.3} ms, speedup {:.2}x",
        fresh_total.as_secs_f64() * 1e3,
        reused_total.as_secs_f64() * 1e3,
        fresh_total.as_secs_f64() / reused_total.as_secs_f64()
    );
    println!("outcome cross-check: {mismatches} mismatches in 96 paired shots");
}

criterion_group!(benches, bench_context_reuse);
criterion_main!(benches);
