//! Criterion benchmark for the `qsdd-transpile` pipeline: stochastic
//! simulation throughput at `O0` vs `O2` on the GHZ, QFT and Grover
//! generators, plus the cost of transpilation itself.
//!
//! Because the Monte-Carlo runner executes the same circuit once per shot,
//! every gate the transpiler removes is saved `shots` times — the gate-count
//! report printed before the timings quantifies the expected advantage.
//!
//! Both engines are measured because they profit differently: the dense
//! baseline's cost is strictly proportional to the gate count, so the
//! speedup tracks the reduction. The decision-diagram engine profits on
//! QFT-style circuits (elided SWAPs are expensive DD permutations), but
//! single-qubit fusion can *hurt* it under amplitude damping: fused `U3`
//! gates produce generic amplitudes that miss the tolerance-interned
//! complex table, making each per-gate Kraus application dearer than the
//! gates saved (observed on Grover; noiseless DD runs profit as expected).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsdd_circuit::generators::{ghz, grover, qft};
use qsdd_circuit::Circuit;
use qsdd_core::{run_stochastic, DdSimulator, DenseSimulator, StochasticBackend, StochasticConfig};
use qsdd_noise::NoiseModel;
use qsdd_transpile::{transpile, OptLevel};

const SHOTS: usize = 16;

fn config() -> StochasticConfig {
    StochasticConfig {
        shots: SHOTS,
        threads: 1,
        seed: 1,
        noise: NoiseModel::paper_defaults(),
        dedup: true,
        weighted: None,
        intra_threads: 1,
    }
}

fn workloads() -> Vec<Circuit> {
    vec![ghz(16), qft(10), grover(6, 5, None)]
}

fn bench_engine<B: StochasticBackend>(
    group: &mut criterion::BenchmarkGroup,
    backend: B,
    engine: &str,
    name: &str,
    original: &Circuit,
    optimized: &Circuit,
) {
    group.bench_with_input(
        BenchmarkId::new(format!("{engine}_o0"), name),
        original,
        |b, circuit| {
            b.iter(|| run_stochastic(&backend, circuit, &config(), &[]));
        },
    );
    group.bench_with_input(
        BenchmarkId::new(format!("{engine}_o2"), name),
        optimized,
        |b, circuit| {
            b.iter(|| run_stochastic(&backend, circuit, &config(), &[]));
        },
    );
}

fn bench_shot_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile_shots");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for circuit in workloads() {
        let name = circuit.name().to_string();
        let optimized = transpile(&circuit, OptLevel::O2);
        println!(
            "{name}: O0 {} gates, O2 {} gates ({:.1} % removed)",
            circuit.stats().gate_count,
            optimized.circuit.stats().gate_count,
            100.0 * optimized.report.reduction(),
        );
        bench_engine(
            &mut group,
            DdSimulator::new(),
            "dd",
            &name,
            &circuit,
            &optimized.circuit,
        );
        bench_engine(
            &mut group,
            DenseSimulator::new(),
            "dense",
            &name,
            &circuit,
            &optimized.circuit,
        );
    }
    group.finish();
}

fn bench_transpile_cost(c: &mut Criterion) {
    // The transpiler runs once per simulation, not once per shot; this
    // group shows that its cost is amortised away by any realistic shot
    // count.
    let mut group = c.benchmark_group("transpile_cost");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for circuit in workloads() {
        let name = circuit.name().to_string();
        group.bench_with_input(BenchmarkId::new("o2", &name), &circuit, |b, circuit| {
            b.iter(|| transpile(circuit, OptLevel::O2));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shot_throughput, bench_transpile_cost);
criterion_main!(benches);
