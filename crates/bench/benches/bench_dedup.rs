//! Criterion benchmark for trajectory deduplication: the per-shot compiled
//! pipeline of the compile/execute refactor (**the baseline this PR starts
//! from**) versus the presample → group → replay path that simulates each
//! distinct error pattern once.
//!
//! Besides the usual per-benchmark timings, the run prints explicit
//! `speedup` lines computed over interleaved repetitions of the identical
//! workload (`dedup ≥ 5×` on GHZ-16 at depolarizing `p = 0.001` with 10k
//! shots is the acceptance bar), plus a byte-level outcome cross-check:
//! deduplicated histograms, error counts and node peaks must equal the
//! per-shot path exactly, for every `(seed, thread-count)` pair tried.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qsdd_circuit::generators::ghz;
use qsdd_core::{run_engine, run_engine_dedup, BackendKind, OptLevel, ShotEngine};
use qsdd_noise::NoiseModel;

const BENCH_SHOTS: usize = 2_000;
const REPORT_SHOTS: usize = 10_000;
const REPORT_REPS: usize = 7;

/// The workloads of the speedup report: the acceptance workload first.
fn workloads() -> Vec<(&'static str, ShotEngine)> {
    vec![
        (
            "ghz16_depol_1e-3",
            ShotEngine::new(
                &ghz(16),
                BackendKind::DecisionDiagram,
                NoiseModel::noiseless().with_depolarizing(0.001),
                7,
                OptLevel::O0,
            ),
        ),
        (
            "ghz16_paper_noise",
            ShotEngine::new(
                &ghz(16),
                BackendKind::DecisionDiagram,
                NoiseModel::paper_defaults(),
                7,
                OptLevel::O0,
            ),
        ),
    ]
}

fn bench_dedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("dedup");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for (name, engine) in &workloads() {
        group.bench_with_input(BenchmarkId::new("per_shot", name), engine, |b, engine| {
            b.iter(|| black_box(run_engine(engine, BENCH_SHOTS, 1, &[]).error_events));
        });
        group.bench_with_input(BenchmarkId::new("dedup", name), engine, |b, engine| {
            b.iter(|| black_box(run_engine_dedup(engine, BENCH_SHOTS, 1, &[]).error_events));
        });
    }
    group.finish();

    // Explicit speedup report over the acceptance workload: interleaved
    // repetitions, minimum per path (the noise-robust estimator), plus the
    // byte-level cross-check over every (seed, thread-count) pair.
    println!("## dedup speedup ({REPORT_SHOTS} shots, min of {REPORT_REPS} interleaved reps)");
    let mut mismatches = 0u64;
    for (name, engine) in &workloads() {
        let mut best_dedup = f64::INFINITY;
        let mut best_per_shot = f64::INFINITY;
        let mut stats = None;
        for _ in 0..REPORT_REPS {
            let started = Instant::now();
            let dedup = run_engine_dedup(engine, REPORT_SHOTS, 1, &[]);
            best_dedup = best_dedup.min(started.elapsed().as_secs_f64());
            let started = Instant::now();
            let per_shot = run_engine(engine, REPORT_SHOTS, 1, &[]);
            best_per_shot = best_per_shot.min(started.elapsed().as_secs_f64());
            if dedup.counts != per_shot.counts
                || dedup.error_events != per_shot.error_events
                || dedup.dd_nodes_peak != per_shot.dd_nodes_peak
            {
                mismatches += 1;
            }
            stats = dedup.dedup;
        }
        let stats = stats.expect("both workloads support deduplication");
        println!(
            "speedup/{name}: per-shot {:.3} ms, dedup {:.3} ms, speedup {:.2}x \
             ({} unique trajectories, {} live)",
            best_per_shot * 1e3,
            best_dedup * 1e3,
            best_per_shot / best_dedup,
            stats.unique_trajectories,
            stats.live_shots,
        );
    }

    // Byte-identity across seeds and thread counts (smaller shot count so
    // the sweep stays quick; the equality requirement is exact, not
    // statistical).
    for (name, engine_template) in &workloads() {
        for seed in [7u64, 2021, 0xDEAD] {
            let engine = ShotEngine::new(
                engine_template.circuit(),
                BackendKind::DecisionDiagram,
                *engine_template.noise(),
                seed,
                OptLevel::O0,
            );
            for threads in [1usize, 2, 4] {
                let dedup = run_engine_dedup(&engine, 2_000, threads, &[]);
                let per_shot = run_engine(&engine, 2_000, threads, &[]);
                if dedup.counts != per_shot.counts
                    || dedup.error_events != per_shot.error_events
                    || dedup.dd_nodes_peak != per_shot.dd_nodes_peak
                {
                    mismatches += 1;
                    eprintln!("MISMATCH: {name} seed {seed} threads {threads}");
                }
            }
        }
    }
    println!("outcome cross-check: {mismatches} mismatches");
    assert_eq!(mismatches, 0, "dedup must be byte-identical to per-shot");
}

criterion_group!(benches, bench_dedup);
criterion_main!(benches);
