//! Criterion benchmark for Table Ia (entanglement / GHZ circuits):
//! stochastic noisy simulation cost per batch of runs, decision diagram vs.
//! dense baseline, as a function of the qubit count.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsdd_circuit::generators::ghz;
use qsdd_core::{run_stochastic, DdSimulator, DenseSimulator, StochasticConfig};
use qsdd_noise::NoiseModel;

const SHOTS: usize = 10;

fn config() -> StochasticConfig {
    StochasticConfig {
        shots: SHOTS,
        threads: 1,
        seed: 1,
        noise: NoiseModel::paper_defaults(),
        dedup: true,
        weighted: None,
        intra_threads: 1,
    }
}

fn bench_ghz(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1a_ghz");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for n in [8usize, 16, 24, 32, 64] {
        let circuit = ghz(n);
        group.bench_with_input(
            BenchmarkId::new("proposed_dd", n),
            &circuit,
            |b, circuit| {
                let backend = DdSimulator::new();
                b.iter(|| run_stochastic(&backend, circuit, &config(), &[]));
            },
        );
        if n <= 16 {
            group.bench_with_input(
                BenchmarkId::new("dense_baseline", n),
                &circuit,
                |b, circuit| {
                    let backend = DenseSimulator::new();
                    b.iter(|| run_stochastic(&backend, circuit, &config(), &[]));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ghz);
criterion_main!(benches);
