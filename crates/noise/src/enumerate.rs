//! Weighted error-pattern enumeration: visiting trajectories by
//! probability instead of by sampling them.
//!
//! Presampling ([`crate::presample`]) resolves a *sampled* shot into an
//! [`ErrorPattern`]; this module walks the same pattern space
//! *deterministically*, yielding patterns in **descending probability
//! order** — the no-error pattern first (at realistic noise strengths),
//! then single-site errors, pairs, and so on — together with each
//! pattern's exact occurrence probability under the stochastic protocol.
//!
//! A weighted simulation driver can then simulate each enumerated
//! trajectory **once**, scale its exact outcome distribution by the
//! pattern probability, and cover the un-enumerated residual mass with
//! ordinary rejection-sampled shots. Enumeration turns the shot count from
//! the cost driver into a precision knob: the enumerated mass is computed
//! exactly, only the (small) tail is estimated stochastically.
//!
//! # Which patterns are enumerable
//!
//! Exactly the patterns [`PresamplePlan::presample`] can return. Sites up
//! to (and including) the last state-dependent damping site must resolve
//! to "no event" — any earlier deviation forces the live path — so those
//! sites contribute a single common probability factor. Every site after
//! the last damping site is free: it independently chooses "no event" or
//! one of its unitary errors. The total enumerable mass
//! ([`PatternEnumerator::enumerable_mass`]) is therefore the product of
//! the no-event probabilities of the constrained prefix — `1.0` when the
//! plan has no damping site at all.
//!
//! # Order and exactness guarantees
//!
//! * Yielded probabilities are non-increasing, with a deterministic
//!   tie-break (lexicographically smallest option assignment first).
//! * No pattern is ever yielded twice (the search tree assigns each
//!   pattern a unique parent).
//! * Probabilities are recomputed canonically (one product over sites in
//!   site order) rather than updated incrementally, so a pattern's weight
//!   is bit-identical no matter when it is reached.
//! * [`PatternEnumerator::covered_mass`] accumulates yielded weights in
//!   yield order; [`PatternEnumerator::residual_mass`] is defined as
//!   `1 - covered_mass`, so covered + residual is exactly `1.0` by
//!   construction.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::presample::{ErrorEvent, ErrorPattern, FlatSite, PresamplePlan};

/// One enumerated trajectory: the pattern plus its exact occurrence
/// probability under the stochastic sampling protocol.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedPattern {
    /// The error pattern (possibly empty: the no-error trajectory).
    pub pattern: ErrorPattern,
    /// Exact probability that a presampled shot draws this pattern.
    pub probability: f64,
}

/// One choice a free site can make: `error == None` is "no event", any
/// other value is the index into the site channel's unitary list.
#[derive(Clone, Copy, Debug)]
struct SiteOption {
    probability: f64,
    error: Option<u8>,
}

/// A free site's choices, sorted by descending probability (deterministic
/// tie-break: "no event" first, then ascending error index).
#[derive(Clone, Debug)]
struct SiteOptions {
    /// Flattened exposure-site index in the presample plan.
    site: u32,
    options: Vec<SiteOption>,
}

/// A node of the best-first search: one complete option assignment over
/// the free sites. Ordered by probability (max-heap), ties broken towards
/// the lexicographically smallest assignment.
#[derive(Clone, Debug)]
struct Node {
    probability: f64,
    /// `assignment[i]` indexes into `free[i].options`.
    assignment: Vec<u8>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Node {}

impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Probabilities are finite and non-negative, so the partial order
        // is total here. The reversed assignment comparison makes the
        // max-heap prefer the lexicographically smallest assignment among
        // equal probabilities.
        self.probability
            .partial_cmp(&other.probability)
            .expect("pattern probabilities are never NaN")
            .then_with(|| other.assignment.cmp(&self.assignment))
    }
}

/// Enumerates the presampleable error patterns of a [`PresamplePlan`] in
/// descending probability order.
///
/// The enumerator is an [`Iterator`] over [`WeightedPattern`]s. It stops
/// when the configured mass cutoff is covered, the max-patterns budget is
/// exhausted, or the (finite) pattern space is fully enumerated —
/// whichever comes first.
///
/// # Examples
///
/// ```
/// use qsdd_noise::{ErrorChannel, ErrorKind, PatternEnumerator, PresamplePlan, SiteChannel};
///
/// let site = SiteChannel::Passive(ErrorChannel::new(ErrorKind::PhaseFlip, 0.1));
/// let plan = PresamplePlan::new(vec![site, site]);
/// let mut enumerator = PatternEnumerator::new(&plan);
/// let first = enumerator.next().unwrap();
/// assert!(first.pattern.is_empty(), "the no-error pattern comes first");
/// assert!((first.probability - 0.81).abs() < 1e-12);
/// // Full enumeration covers the whole mass: 0.81 + 2 * 0.09 + 0.01.
/// let rest: f64 = enumerator.map(|p| p.probability).sum();
/// assert!((first.probability + rest - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct PatternEnumerator {
    /// Product of the no-event probabilities of the constrained prefix
    /// (sites up to the last damping site); `1.0` without damping. This is
    /// the total mass of the enumerable pattern space.
    prefix_mass: f64,
    free: Vec<SiteOptions>,
    heap: BinaryHeap<Node>,
    mass_cutoff: f64,
    max_patterns: u64,
    covered: f64,
    emitted: u64,
}

impl PatternEnumerator {
    /// Builds an enumerator over the plan's pattern space with no mass
    /// cutoff (`1.0`) and an effectively unlimited pattern budget.
    pub fn new(plan: &PresamplePlan) -> Self {
        let prefix_len = plan.last_damping.map_or(0, |last| last + 1);
        let mut prefix_mass = 1.0f64;
        let mut free = Vec::new();
        let mut supported = true;
        for (index, site) in plan.sites.iter().enumerate() {
            let no_event = match *site {
                FlatSite::Depolarizing(p) => 1.0 - 0.75 * p,
                FlatSite::PhaseFlip(p) => 1.0 - p,
                FlatSite::Damping(p_decay) => 1.0 - p_decay,
                FlatSite::Other(_) => {
                    // An unknown channel kind: its sampling semantics are
                    // not modelled here, so nothing is enumerable.
                    supported = false;
                    break;
                }
            };
            if index < prefix_len {
                // Constrained site: any event (or decay) forces the live
                // path, so only the no-event branch contributes.
                prefix_mass *= no_event;
                continue;
            }
            let mut options = vec![SiteOption {
                probability: no_event,
                error: None,
            }];
            match *site {
                FlatSite::Depolarizing(p) => {
                    let each = 0.25 * p;
                    if each > 0.0 {
                        for error in 0..3u8 {
                            options.push(SiteOption {
                                probability: each,
                                error: Some(error),
                            });
                        }
                    }
                }
                FlatSite::PhaseFlip(p) => {
                    if p > 0.0 {
                        options.push(SiteOption {
                            probability: p,
                            error: Some(0),
                        });
                    }
                }
                FlatSite::Damping(_) => {
                    unreachable!("free sites lie after the last damping site")
                }
                FlatSite::Other(_) => unreachable!("unsupported plans bail out above"),
            }
            // Zero-probability options can never be sampled; dropping them
            // keeps every heap node's weight strictly positive. Sort by
            // descending probability with a deterministic tie-break.
            options.retain(|option| option.probability > 0.0);
            options.sort_by(|a, b| {
                b.probability
                    .partial_cmp(&a.probability)
                    .expect("option probabilities are never NaN")
                    .then_with(|| a.error.cmp(&b.error))
            });
            free.push(SiteOptions {
                site: index as u32,
                options,
            });
        }
        let mut enumerator = PatternEnumerator {
            prefix_mass: if supported { prefix_mass } else { 0.0 },
            free,
            heap: BinaryHeap::new(),
            mass_cutoff: 1.0,
            max_patterns: u64::MAX,
            covered: 0.0,
            emitted: 0,
        };
        if supported {
            let root = enumerator.node(vec![0; enumerator.free.len()]);
            if root.probability > 0.0 {
                enumerator.heap.push(root);
            }
        }
        enumerator
    }

    /// Stops enumerating once the yielded mass reaches `cutoff` (clamped
    /// to `[0, 1]`). A cutoff of `1.0` enumerates the full pattern space.
    pub fn with_mass_cutoff(mut self, cutoff: f64) -> Self {
        self.mass_cutoff = cutoff.clamp(0.0, 1.0);
        self
    }

    /// Stops enumerating after at most `max` patterns.
    pub fn with_max_patterns(mut self, max: u64) -> Self {
        self.max_patterns = max;
        self
    }

    /// Total mass of the enumerable pattern space: the probability that a
    /// presampled shot yields *some* pattern (as opposed to the live
    /// path). `1.0` for plans without state-dependent sites.
    pub fn enumerable_mass(&self) -> f64 {
        self.prefix_mass
    }

    /// Probability mass of the patterns yielded so far, accumulated in
    /// yield order.
    pub fn covered_mass(&self) -> f64 {
        self.covered
    }

    /// The un-enumerated probability mass: exactly `1 - covered_mass`,
    /// clamped at zero against floating-point overshoot.
    pub fn residual_mass(&self) -> f64 {
        (1.0 - self.covered).max(0.0)
    }

    /// Number of patterns yielded so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Builds the node for an option assignment, recomputing its
    /// probability canonically (site order) for bit-determinism.
    fn node(&self, assignment: Vec<u8>) -> Node {
        let mut probability = self.prefix_mass;
        for (options, &choice) in self.free.iter().zip(&assignment) {
            probability *= options.options[choice as usize].probability;
        }
        Node {
            probability,
            assignment,
        }
    }

    /// Pushes the children of a popped node. Each assignment has a unique
    /// parent (decrement its last non-zero position), so the tree visits
    /// every assignment exactly once: the children of `u` are `u` with its
    /// last non-zero position incremented, plus `u` with any later
    /// position raised from 0 to 1. Every child's probability is at most
    /// the parent's (options are sorted descending), which keeps the
    /// best-first order globally non-increasing.
    fn push_children(&mut self, node: &Node) {
        let last_nonzero = node.assignment.iter().rposition(|&choice| choice > 0);
        if let Some(position) = last_nonzero {
            let next = node.assignment[position] as usize + 1;
            if next < self.free[position].options.len() {
                let mut assignment = node.assignment.clone();
                assignment[position] = next as u8;
                let child = self.node(assignment);
                if child.probability > 0.0 {
                    self.heap.push(child);
                }
            }
        }
        let start = last_nonzero.map_or(0, |position| position + 1);
        for position in start..node.assignment.len() {
            if self.free[position].options.len() > 1 {
                let mut assignment = node.assignment.clone();
                assignment[position] = 1;
                let child = self.node(assignment);
                if child.probability > 0.0 {
                    self.heap.push(child);
                }
            }
        }
    }

    /// Materialises the pattern behind an assignment: one event per free
    /// site whose chosen option is an error.
    fn pattern(&self, assignment: &[u8]) -> ErrorPattern {
        let mut events = Vec::new();
        for (options, &choice) in self.free.iter().zip(assignment) {
            if let Some(error) = options.options[choice as usize].error {
                events.push(ErrorEvent {
                    site: options.site,
                    error,
                });
            }
        }
        ErrorPattern::from_events(events)
    }
}

impl Iterator for PatternEnumerator {
    type Item = WeightedPattern;

    fn next(&mut self) -> Option<WeightedPattern> {
        if self.emitted >= self.max_patterns || self.covered >= self.mass_cutoff {
            return None;
        }
        let node = self.heap.pop()?;
        self.push_children(&node);
        self.covered += node.probability;
        self.emitted += 1;
        Some(WeightedPattern {
            pattern: self.pattern(&node.assignment),
            probability: node.probability,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::{ErrorChannel, ErrorKind};
    use crate::presample::SiteChannel;

    fn passive(kind: ErrorKind, p: f64) -> SiteChannel {
        SiteChannel::Passive(ErrorChannel::new(kind, p))
    }

    #[test]
    fn empty_plan_yields_exactly_the_empty_pattern() {
        let plan = PresamplePlan::new(Vec::new());
        let mut enumerator = PatternEnumerator::new(&plan);
        let first = enumerator.next().unwrap();
        assert!(first.pattern.is_empty());
        assert_eq!(first.probability, 1.0);
        assert!(enumerator.next().is_none());
        assert_eq!(enumerator.covered_mass(), 1.0);
    }

    #[test]
    fn full_enumeration_covers_the_whole_mass() {
        let plan = PresamplePlan::new(vec![
            passive(ErrorKind::Depolarizing, 0.2),
            passive(ErrorKind::PhaseFlip, 0.3),
            passive(ErrorKind::Depolarizing, 0.05),
        ]);
        let patterns: Vec<WeightedPattern> = PatternEnumerator::new(&plan).collect();
        // 4 * 2 * 4 assignments.
        assert_eq!(patterns.len(), 32);
        let total: f64 = patterns.iter().map(|p| p.probability).sum();
        assert!((total - 1.0).abs() < 1e-12, "total mass {total}");
    }

    #[test]
    fn damping_prefix_scales_the_enumerable_mass() {
        let plan = PresamplePlan::new(vec![
            passive(ErrorKind::Depolarizing, 0.1),
            SiteChannel::Damping { p_decay: 0.25 },
            passive(ErrorKind::PhaseFlip, 0.5),
        ]);
        let enumerator = PatternEnumerator::new(&plan);
        // Prefix: depolarizing no-event (1 - 0.075) times damping keep 0.75.
        let expected = (1.0 - 0.075) * 0.75;
        assert!((enumerator.enumerable_mass() - expected).abs() < 1e-12);
        let patterns: Vec<WeightedPattern> = enumerator.collect();
        // Only the trailing phase flip is free: no-event or flip.
        assert_eq!(patterns.len(), 2);
        let total: f64 = patterns.iter().map(|p| p.probability).sum();
        assert!((total - expected).abs() < 1e-12);
    }

    #[test]
    fn budgets_stop_enumeration() {
        let plan = PresamplePlan::new(vec![passive(ErrorKind::Depolarizing, 0.4); 6]);
        let limited: Vec<_> = PatternEnumerator::new(&plan).with_max_patterns(5).collect();
        assert_eq!(limited.len(), 5);
        let mut by_mass = PatternEnumerator::new(&plan).with_mass_cutoff(0.5);
        let mut count = 0;
        while by_mass.next().is_some() {
            count += 1;
        }
        assert!(by_mass.covered_mass() >= 0.5);
        assert!(count < 4096, "cutoff must stop early");
    }
}
