//! The per-gate noise model used by the evaluation.
//!
//! Following Section V of the paper, every qubit touched by a gate is
//! subjected to a depolarizing error, an amplitude-damping (T1) error and a
//! phase-flip (T2) error, each with its own probability. The defaults are
//! the values used in the paper's experiments: 0.1 %, 0.2 % and 0.1 %.

use crate::channels::{ErrorChannel, ErrorKind};

/// A noise model assigning per-gate, per-qubit error probabilities.
///
/// # Examples
///
/// ```
/// use qsdd_noise::NoiseModel;
///
/// let model = NoiseModel::paper_defaults();
/// assert!((model.depolarizing_prob() - 0.001).abs() < 1e-12);
/// assert!(!model.is_noiseless());
/// assert_eq!(model.channels().len(), 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    depolarizing: f64,
    amplitude_damping: f64,
    phase_flip: f64,
}

impl NoiseModel {
    /// The error probabilities used in the paper's evaluation:
    /// depolarizing 0.1 %, amplitude damping (T1) 0.2 %, phase flip (T2)
    /// 0.1 %.
    pub fn paper_defaults() -> Self {
        NoiseModel {
            depolarizing: 0.001,
            amplitude_damping: 0.002,
            phase_flip: 0.001,
        }
    }

    /// A model in which no errors ever occur.
    pub fn noiseless() -> Self {
        NoiseModel {
            depolarizing: 0.0,
            amplitude_damping: 0.0,
            phase_flip: 0.0,
        }
    }

    /// Creates a model from explicit probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(depolarizing: f64, amplitude_damping: f64, phase_flip: f64) -> Self {
        for (name, p) in [
            ("depolarizing", depolarizing),
            ("amplitude damping", amplitude_damping),
            ("phase flip", phase_flip),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} probability must lie in [0, 1]"
            );
        }
        NoiseModel {
            depolarizing,
            amplitude_damping,
            phase_flip,
        }
    }

    /// Returns a copy with a different depolarizing probability.
    pub fn with_depolarizing(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        self.depolarizing = p;
        self
    }

    /// Returns a copy with a different amplitude-damping probability.
    pub fn with_amplitude_damping(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        self.amplitude_damping = p;
        self
    }

    /// Returns a copy with a different phase-flip probability.
    pub fn with_phase_flip(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        self.phase_flip = p;
        self
    }

    /// The depolarizing (gate error) probability.
    pub fn depolarizing_prob(&self) -> f64 {
        self.depolarizing
    }

    /// The amplitude-damping (T1) probability.
    pub fn amplitude_damping_prob(&self) -> f64 {
        self.amplitude_damping
    }

    /// The phase-flip (T2) probability.
    pub fn phase_flip_prob(&self) -> f64 {
        self.phase_flip
    }

    /// Returns `true` when every probability is zero.
    pub fn is_noiseless(&self) -> bool {
        self.depolarizing == 0.0 && self.amplitude_damping == 0.0 && self.phase_flip == 0.0
    }

    /// The error channels applied (in order) to every qubit touched by a
    /// gate. Channels with zero probability are omitted.
    pub fn channels(&self) -> Vec<ErrorChannel> {
        let mut out = Vec::with_capacity(3);
        if self.depolarizing > 0.0 {
            out.push(ErrorChannel::new(
                ErrorKind::Depolarizing,
                self.depolarizing,
            ));
        }
        if self.amplitude_damping > 0.0 {
            out.push(ErrorChannel::new(
                ErrorKind::AmplitudeDamping,
                self.amplitude_damping,
            ));
        }
        if self.phase_flip > 0.0 {
            out.push(ErrorChannel::new(ErrorKind::PhaseFlip, self.phase_flip));
        }
        out
    }
}

impl Default for NoiseModel {
    /// The default model is the paper's configuration
    /// ([`NoiseModel::paper_defaults`]).
    fn default() -> Self {
        NoiseModel::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_v() {
        let m = NoiseModel::paper_defaults();
        assert_eq!(m.depolarizing_prob(), 0.001);
        assert_eq!(m.amplitude_damping_prob(), 0.002);
        assert_eq!(m.phase_flip_prob(), 0.001);
    }

    #[test]
    fn noiseless_model_has_no_channels() {
        let m = NoiseModel::noiseless();
        assert!(m.is_noiseless());
        assert!(m.channels().is_empty());
    }

    #[test]
    fn channels_skip_zero_probabilities() {
        let m = NoiseModel::new(0.0, 0.01, 0.0);
        let channels = m.channels();
        assert_eq!(channels.len(), 1);
        assert_eq!(channels[0].kind(), ErrorKind::AmplitudeDamping);
    }

    #[test]
    fn builder_methods_replace_single_probabilities() {
        let m = NoiseModel::noiseless().with_phase_flip(0.25);
        assert_eq!(m.phase_flip_prob(), 0.25);
        assert_eq!(m.depolarizing_prob(), 0.0);
        assert!(!m.is_noiseless());
    }

    #[test]
    #[should_panic(expected = "probability must lie in [0, 1]")]
    fn invalid_probability_is_rejected() {
        let _ = NoiseModel::new(0.1, -0.2, 0.0);
    }
}
