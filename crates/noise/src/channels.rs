//! Single-qubit error channels.
//!
//! The paper considers three physically motivated channels (Section II-B):
//! depolarizing gate errors, amplitude damping (T1) and phase flip (T2)
//! decoherence. Each channel is described both by its Kraus operators (used
//! by the exact density-matrix reference simulator) and by a stochastic
//! sampling rule (used by the Monte-Carlo simulators of Section III).

use qsdd_dd::Matrix2;
use rand::Rng;

/// The kind of a single-qubit error channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Gate error: the qubit is replaced by the maximally mixed state with
    /// probability `p` (uniform application of I, X, Y or Z).
    Depolarizing,
    /// T1 decay towards `|0>` with damping probability `p`.
    AmplitudeDamping,
    /// T2 dephasing: a Z flip with probability `p`.
    PhaseFlip,
}

/// What a stochastic simulation run has to do for one sampled error event.
#[derive(Clone, Debug, PartialEq)]
pub enum StochasticAction {
    /// No error occurred; leave the state untouched.
    None,
    /// Apply the given unitary error operator to the affected qubit.
    Unitary(Matrix2),
    /// Apply one of the given (non-unitary) Kraus branches; the branch must
    /// be selected according to the squared norms of the resulting states
    /// (the channel is state-dependent, cf. Example 6 of the paper).
    Kraus(Vec<Matrix2>),
}

/// A single-qubit error channel with an occurrence probability.
///
/// # Examples
///
/// ```
/// use qsdd_noise::{ErrorChannel, ErrorKind};
///
/// let t2 = ErrorChannel::new(ErrorKind::PhaseFlip, 0.001);
/// assert_eq!(t2.kind(), ErrorKind::PhaseFlip);
/// assert!(t2.kraus_operators().len() == 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorChannel {
    kind: ErrorKind,
    probability: f64,
}

impl ErrorChannel {
    /// Creates a channel of the given kind firing with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn new(kind: ErrorKind, probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "error probability must lie in [0, 1]"
        );
        ErrorChannel { kind, probability }
    }

    /// The channel kind.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The per-application error probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// The Kraus operators of the channel (they satisfy
    /// `sum_k K_k† K_k = I`).
    pub fn kraus_operators(&self) -> Vec<Matrix2> {
        let p = self.probability;
        match self.kind {
            ErrorKind::Depolarizing => {
                // With probability 1-p nothing happens, with probability p the
                // qubit is depolarized (uniform I, X, Y, Z), i.e. the identity
                // survives with weight 1 - 3p/4.
                vec![
                    Matrix2::identity().scale((1.0 - 0.75 * p).sqrt().into()),
                    Matrix2::pauli_x().scale((0.25 * p).sqrt().into()),
                    Matrix2::pauli_y().scale((0.25 * p).sqrt().into()),
                    Matrix2::pauli_z().scale((0.25 * p).sqrt().into()),
                ]
            }
            ErrorKind::AmplitudeDamping => vec![
                Matrix2::amplitude_damping_a1(p),
                Matrix2::amplitude_damping_a0(p),
            ],
            ErrorKind::PhaseFlip => vec![
                Matrix2::identity().scale((1.0 - p).sqrt().into()),
                Matrix2::pauli_z().scale(p.sqrt().into()),
            ],
        }
    }

    /// Samples the stochastic action for one application of the channel.
    ///
    /// Unitary-equivalent channels (depolarizing, phase flip) resolve their
    /// randomness here; the state-dependent amplitude-damping channel always
    /// returns its Kraus branches so the simulator can pick the branch based
    /// on the state (Example 6 of the paper).
    pub fn sample_action<R: Rng + ?Sized>(&self, rng: &mut R) -> StochasticAction {
        let p = self.probability;
        if p == 0.0 {
            return StochasticAction::None;
        }
        match self.kind {
            ErrorKind::Depolarizing => {
                if rng.gen::<f64>() >= p {
                    StochasticAction::None
                } else {
                    match rng.gen_range(0..4) {
                        0 => StochasticAction::None, // identity branch
                        1 => StochasticAction::Unitary(Matrix2::pauli_x()),
                        2 => StochasticAction::Unitary(Matrix2::pauli_y()),
                        _ => StochasticAction::Unitary(Matrix2::pauli_z()),
                    }
                }
            }
            ErrorKind::PhaseFlip => {
                if rng.gen::<f64>() < p {
                    StochasticAction::Unitary(Matrix2::pauli_z())
                } else {
                    StochasticAction::None
                }
            }
            ErrorKind::AmplitudeDamping => StochasticAction::Kraus(vec![
                Matrix2::amplitude_damping_a0(p),
                Matrix2::amplitude_damping_a1(p),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_kraus_complete(channel: &ErrorChannel) {
        let kraus = channel.kraus_operators();
        let mut sum = Matrix2::zero();
        for k in &kraus {
            sum = sum.add(&k.adjoint().matmul(k));
        }
        assert!(
            sum.approx_eq(&Matrix2::identity(), 1e-12),
            "{:?} Kraus operators are not trace preserving",
            channel.kind()
        );
    }

    #[test]
    fn all_channels_are_trace_preserving() {
        for kind in [
            ErrorKind::Depolarizing,
            ErrorKind::AmplitudeDamping,
            ErrorKind::PhaseFlip,
        ] {
            for p in [0.0, 0.001, 0.1, 0.5, 1.0] {
                assert_kraus_complete(&ErrorChannel::new(kind, p));
            }
        }
    }

    #[test]
    fn zero_probability_channels_never_fire() {
        let mut rng = StdRng::seed_from_u64(0);
        for kind in [ErrorKind::Depolarizing, ErrorKind::PhaseFlip] {
            let c = ErrorChannel::new(kind, 0.0);
            for _ in 0..100 {
                assert_eq!(c.sample_action(&mut rng), StochasticAction::None);
            }
        }
    }

    #[test]
    fn phase_flip_fires_with_roughly_its_probability() {
        let c = ErrorChannel::new(ErrorKind::PhaseFlip, 0.25);
        let mut rng = StdRng::seed_from_u64(1234);
        let mut fired = 0;
        let n = 40_000;
        for _ in 0..n {
            if matches!(c.sample_action(&mut rng), StochasticAction::Unitary(_)) {
                fired += 1;
            }
        }
        let rate = fired as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "observed rate {rate}");
    }

    #[test]
    fn depolarizing_splits_evenly_over_paulis() {
        let c = ErrorChannel::new(ErrorKind::Depolarizing, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut x = 0;
        let mut y = 0;
        let mut z = 0;
        let mut id = 0;
        let n = 40_000;
        for _ in 0..n {
            match c.sample_action(&mut rng) {
                StochasticAction::None => id += 1,
                StochasticAction::Unitary(m) => {
                    if m.approx_eq(&Matrix2::pauli_x(), 1e-12) {
                        x += 1;
                    } else if m.approx_eq(&Matrix2::pauli_y(), 1e-12) {
                        y += 1;
                    } else {
                        z += 1;
                    }
                }
                StochasticAction::Kraus(_) => panic!("depolarizing must not return Kraus"),
            }
        }
        for count in [id, x, y, z] {
            let rate = count as f64 / n as f64;
            assert!((rate - 0.25).abs() < 0.02, "observed rate {rate}");
        }
    }

    #[test]
    fn amplitude_damping_always_returns_both_branches() {
        let c = ErrorChannel::new(ErrorKind::AmplitudeDamping, 0.002);
        let mut rng = StdRng::seed_from_u64(3);
        match c.sample_action(&mut rng) {
            StochasticAction::Kraus(branches) => assert_eq!(branches.len(), 2),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "error probability must lie in [0, 1]")]
    fn invalid_probability_panics() {
        let _ = ErrorChannel::new(ErrorKind::PhaseFlip, 1.5);
    }
}
