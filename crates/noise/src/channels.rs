//! Single-qubit error channels.
//!
//! The paper considers three physically motivated channels (Section II-B):
//! depolarizing gate errors, amplitude damping (T1) and phase flip (T2)
//! decoherence. Each channel is described both by its Kraus operators (used
//! by the exact density-matrix reference simulator) and by a stochastic
//! sampling rule (used by the Monte-Carlo simulators of Section III).
//!
//! The canonical sampling entry point is the index-based
//! [`ErrorChannel::sample_error`]: it resolves a draw to *operator indices*
//! ([`SampledError`]) without materialising matrices, which is what both
//! the compiled shot programs and the presampling/deduplication layer
//! ([`crate::presample`]) consume. The matrix-returning
//! [`ErrorChannel::sample_action`] is a convenience wrapper kept for
//! uncompiled one-off consumers; it draws through `sample_error`, so both
//! APIs consume the random number stream identically.

use qsdd_dd::Matrix2;
use rand::Rng;

/// The kind of a single-qubit error channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Gate error: the qubit is replaced by the maximally mixed state with
    /// probability `p` (uniform application of I, X, Y or Z).
    Depolarizing,
    /// T1 decay towards `|0>` with damping probability `p`.
    AmplitudeDamping,
    /// T2 dephasing: a Z flip with probability `p`.
    PhaseFlip,
}

/// What a stochastic simulation run has to do for one sampled error event.
#[derive(Clone, Debug, PartialEq)]
pub enum StochasticAction {
    /// No error occurred; leave the state untouched.
    None,
    /// Apply the given unitary error operator to the affected qubit.
    Unitary(Matrix2),
    /// Apply one of the given (non-unitary) Kraus branches; the branch must
    /// be selected according to the squared norms of the resulting states
    /// (the channel is state-dependent, cf. Example 6 of the paper).
    Kraus(Vec<Matrix2>),
}

/// A sampled error event resolved to an *index* instead of a matrix.
///
/// This is the handle-based twin of [`StochasticAction`] used by compiled
/// shot programs: the simulator resolves each channel's possible operators
/// to precompiled form once (via [`ErrorChannel::unitaries`] and
/// [`ErrorChannel::kraus_branches`]) and then only needs the index at shot
/// time. [`ErrorChannel::sample_error`] consumes the random number stream
/// exactly like [`ErrorChannel::sample_action`], so both APIs produce
/// identical runs from identical generators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampledError {
    /// No error occurred; leave the state untouched.
    None,
    /// Apply unitary number `i` of [`ErrorChannel::unitaries`].
    Unitary(usize),
    /// Apply one of the channel's [`ErrorChannel::kraus_branches`], selected
    /// by the state-dependent branch probabilities.
    Kraus,
}

/// A single-qubit error channel with an occurrence probability.
///
/// # Examples
///
/// ```
/// use qsdd_noise::{ErrorChannel, ErrorKind};
///
/// let t2 = ErrorChannel::new(ErrorKind::PhaseFlip, 0.001);
/// assert_eq!(t2.kind(), ErrorKind::PhaseFlip);
/// assert!(t2.kraus_operators().len() == 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ErrorChannel {
    kind: ErrorKind,
    probability: f64,
}

impl ErrorChannel {
    /// Creates a channel of the given kind firing with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn new(kind: ErrorKind, probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "error probability must lie in [0, 1]"
        );
        ErrorChannel { kind, probability }
    }

    /// The channel kind.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The per-application error probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// `true` for channels whose stochastic effect depends on the quantum
    /// state (amplitude damping: the Kraus branch probabilities are squared
    /// norms of the branch states, Example 6 of the paper).
    ///
    /// State-dependent channels cannot be presampled from the random stream
    /// alone; the presampling layer only resolves them where the entering
    /// state — and thus the branch threshold — is known in advance (along
    /// the precomputed no-error trajectory), and forces shots onto the live
    /// execution path everywhere else.
    pub fn state_dependent(&self) -> bool {
        matches!(self.kind, ErrorKind::AmplitudeDamping)
    }

    /// The Kraus operators of the channel (they satisfy
    /// `sum_k K_k† K_k = I`).
    pub fn kraus_operators(&self) -> Vec<Matrix2> {
        let p = self.probability;
        match self.kind {
            ErrorKind::Depolarizing => {
                // With probability 1-p nothing happens, with probability p the
                // qubit is depolarized (uniform I, X, Y, Z), i.e. the identity
                // survives with weight 1 - 3p/4.
                vec![
                    Matrix2::identity().scale((1.0 - 0.75 * p).sqrt().into()),
                    Matrix2::pauli_x().scale((0.25 * p).sqrt().into()),
                    Matrix2::pauli_y().scale((0.25 * p).sqrt().into()),
                    Matrix2::pauli_z().scale((0.25 * p).sqrt().into()),
                ]
            }
            ErrorKind::AmplitudeDamping => vec![
                Matrix2::amplitude_damping_a1(p),
                Matrix2::amplitude_damping_a0(p),
            ],
            ErrorKind::PhaseFlip => vec![
                Matrix2::identity().scale((1.0 - p).sqrt().into()),
                Matrix2::pauli_z().scale(p.sqrt().into()),
            ],
        }
    }

    /// The unitary error operators [`Self::sample_error`] can select, in
    /// index order.
    ///
    /// Compiled shot programs resolve these to precompiled operator diagrams
    /// once per circuit; [`SampledError::Unitary`] indexes into this list.
    pub fn unitaries(&self) -> Vec<Matrix2> {
        match self.kind {
            ErrorKind::Depolarizing => {
                vec![Matrix2::pauli_x(), Matrix2::pauli_y(), Matrix2::pauli_z()]
            }
            ErrorKind::PhaseFlip => vec![Matrix2::pauli_z()],
            ErrorKind::AmplitudeDamping => Vec::new(),
        }
    }

    /// The `[decay, keep]` Kraus branch pair applied when
    /// [`Self::sample_error`] returns [`SampledError::Kraus`]; `None` for
    /// channels that never take the Kraus path.
    pub fn kraus_branches(&self) -> Option<[Matrix2; 2]> {
        match self.kind {
            ErrorKind::AmplitudeDamping => Some([
                Matrix2::amplitude_damping_a0(self.probability),
                Matrix2::amplitude_damping_a1(self.probability),
            ]),
            ErrorKind::Depolarizing | ErrorKind::PhaseFlip => None,
        }
    }

    /// Samples the error event for one application of the channel, resolved
    /// to operator indices (see [`SampledError`]).
    ///
    /// This is the single source of truth for the channel's random number
    /// consumption: [`Self::sample_action`] is implemented on top of it, so
    /// the index-based and the matrix-based API are guaranteed to make the
    /// same decisions from the same generator state.
    #[inline]
    pub fn sample_error<R: Rng + ?Sized>(&self, rng: &mut R) -> SampledError {
        let p = self.probability;
        if p == 0.0 {
            return SampledError::None;
        }
        match self.kind {
            ErrorKind::Depolarizing => {
                if rng.gen::<f64>() >= p {
                    SampledError::None
                } else {
                    match rng.gen_range(0..4) {
                        0 => SampledError::None, // identity branch
                        1 => SampledError::Unitary(0),
                        2 => SampledError::Unitary(1),
                        _ => SampledError::Unitary(2),
                    }
                }
            }
            ErrorKind::PhaseFlip => {
                if rng.gen::<f64>() < p {
                    SampledError::Unitary(0)
                } else {
                    SampledError::None
                }
            }
            ErrorKind::AmplitudeDamping => SampledError::Kraus,
        }
    }

    /// The unitary behind an index of [`Self::unitaries`], without building
    /// the whole list.
    fn unitary(&self, index: usize) -> Matrix2 {
        match (self.kind, index) {
            (ErrorKind::Depolarizing, 0) => Matrix2::pauli_x(),
            (ErrorKind::Depolarizing, 1) => Matrix2::pauli_y(),
            (ErrorKind::Depolarizing, 2) => Matrix2::pauli_z(),
            (ErrorKind::PhaseFlip, 0) => Matrix2::pauli_z(),
            (kind, index) => unreachable!("channel {kind:?} has no unitary {index}"),
        }
    }

    /// Samples the stochastic action for one application of the channel,
    /// resolved to concrete matrices.
    ///
    /// This is a convenience wrapper for uncompiled one-off consumers; the
    /// canonical sampling entry point is the index-based
    /// [`Self::sample_error`], which compiled shot programs and the
    /// presampling layer use directly (precompiled operators are looked up
    /// by index, no matrices are built at shot time). The wrapper draws
    /// through `sample_error`, so both APIs make the same decisions from
    /// the same generator state: unitary-equivalent channels
    /// (depolarizing, phase flip) resolve their randomness in the draw,
    /// while the state-dependent amplitude-damping channel returns its
    /// Kraus branches for the simulator to pick from based on the state
    /// (Example 6 of the paper).
    pub fn sample_action<R: Rng + ?Sized>(&self, rng: &mut R) -> StochasticAction {
        match self.sample_error(rng) {
            SampledError::None => StochasticAction::None,
            SampledError::Unitary(index) => StochasticAction::Unitary(self.unitary(index)),
            SampledError::Kraus => StochasticAction::Kraus(
                self.kraus_branches()
                    .expect("Kraus events only come from Kraus channels")
                    .to_vec(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_kraus_complete(channel: &ErrorChannel) {
        let kraus = channel.kraus_operators();
        let mut sum = Matrix2::zero();
        for k in &kraus {
            sum = sum.add(&k.adjoint().matmul(k));
        }
        assert!(
            sum.approx_eq(&Matrix2::identity(), 1e-12),
            "{:?} Kraus operators are not trace preserving",
            channel.kind()
        );
    }

    #[test]
    fn all_channels_are_trace_preserving() {
        for kind in [
            ErrorKind::Depolarizing,
            ErrorKind::AmplitudeDamping,
            ErrorKind::PhaseFlip,
        ] {
            for p in [0.0, 0.001, 0.1, 0.5, 1.0] {
                assert_kraus_complete(&ErrorChannel::new(kind, p));
            }
        }
    }

    #[test]
    fn zero_probability_channels_never_fire() {
        let mut rng = StdRng::seed_from_u64(0);
        for kind in [ErrorKind::Depolarizing, ErrorKind::PhaseFlip] {
            let c = ErrorChannel::new(kind, 0.0);
            for _ in 0..100 {
                assert_eq!(c.sample_action(&mut rng), StochasticAction::None);
            }
        }
    }

    #[test]
    fn phase_flip_fires_with_roughly_its_probability() {
        let c = ErrorChannel::new(ErrorKind::PhaseFlip, 0.25);
        let mut rng = StdRng::seed_from_u64(1234);
        let mut fired = 0;
        let n = 40_000;
        for _ in 0..n {
            if matches!(c.sample_action(&mut rng), StochasticAction::Unitary(_)) {
                fired += 1;
            }
        }
        let rate = fired as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "observed rate {rate}");
    }

    #[test]
    fn depolarizing_splits_evenly_over_paulis() {
        let c = ErrorChannel::new(ErrorKind::Depolarizing, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut x = 0;
        let mut y = 0;
        let mut z = 0;
        let mut id = 0;
        let n = 40_000;
        for _ in 0..n {
            match c.sample_action(&mut rng) {
                StochasticAction::None => id += 1,
                StochasticAction::Unitary(m) => {
                    if m.approx_eq(&Matrix2::pauli_x(), 1e-12) {
                        x += 1;
                    } else if m.approx_eq(&Matrix2::pauli_y(), 1e-12) {
                        y += 1;
                    } else {
                        z += 1;
                    }
                }
                StochasticAction::Kraus(_) => panic!("depolarizing must not return Kraus"),
            }
        }
        for count in [id, x, y, z] {
            let rate = count as f64 / n as f64;
            assert!((rate - 0.25).abs() < 0.02, "observed rate {rate}");
        }
    }

    #[test]
    fn amplitude_damping_always_returns_both_branches() {
        let c = ErrorChannel::new(ErrorKind::AmplitudeDamping, 0.002);
        let mut rng = StdRng::seed_from_u64(3);
        match c.sample_action(&mut rng) {
            StochasticAction::Kraus(branches) => assert_eq!(branches.len(), 2),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "error probability must lie in [0, 1]")]
    fn invalid_probability_panics() {
        let _ = ErrorChannel::new(ErrorKind::PhaseFlip, 1.5);
    }

    #[test]
    fn sample_error_and_sample_action_agree_from_equal_generators() {
        for (kind, p) in [
            (ErrorKind::Depolarizing, 0.4),
            (ErrorKind::PhaseFlip, 0.3),
            (ErrorKind::AmplitudeDamping, 0.2),
            (ErrorKind::Depolarizing, 0.0),
        ] {
            let c = ErrorChannel::new(kind, p);
            let unitaries = c.unitaries();
            let mut rng_a = StdRng::seed_from_u64(99);
            let mut rng_b = StdRng::seed_from_u64(99);
            for _ in 0..500 {
                let indexed = c.sample_error(&mut rng_a);
                let action = c.sample_action(&mut rng_b);
                match (indexed, action) {
                    (SampledError::None, StochasticAction::None) => {}
                    (SampledError::Unitary(i), StochasticAction::Unitary(m)) => {
                        assert!(unitaries[i].approx_eq(&m, 0.0));
                    }
                    (SampledError::Kraus, StochasticAction::Kraus(branches)) => {
                        let expected = c.kraus_branches().unwrap();
                        assert!(branches[0].approx_eq(&expected[0], 0.0));
                        assert!(branches[1].approx_eq(&expected[1], 0.0));
                    }
                    (a, b) => panic!("{kind:?}: indexed {a:?} disagrees with action {b:?}"),
                }
            }
            // Both paths must have consumed the identical amount of
            // randomness: the next draws agree.
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
        }
    }
}
