//! Presampling: splitting error *sampling* from error *application*.
//!
//! The stochastic protocol draws every error decision from a per-shot
//! random number generator. All of those draws are state-independent for
//! unitary-equivalent channels (depolarizing, phase flip), and even the
//! state-dependent amplitude-damping branch decision becomes predictable
//! along the no-error trajectory, where the branch threshold is known in
//! advance. A shot's error decisions can therefore be **presampled** —
//! resolved up front, without simulating anything — into a compact
//! [`ErrorPattern`]: the `(site, error)` list of every error that fires.
//!
//! Shots with equal patterns evolve through *identical* states, so a
//! simulator only needs to execute one representative per distinct pattern
//! and can fan the result out to every shot that drew it (trajectory
//! deduplication). At realistic noise strengths most shots draw the empty
//! pattern, which turns the shot loop from `O(shots × circuit)` into
//! `O(unique_patterns × circuit + shots × sampling)`.
//!
//! Presampling consumes the random number stream **exactly** like live
//! execution (the same draws, in the same order, via the same
//! [`ErrorChannel::sample_error`] calls), so the generator handed back with
//! a pattern is positioned precisely where live execution would be after
//! the last exposure — ready for the final measurement sampling. That
//! stream identity is what makes deduplicated results byte-identical to
//! per-shot execution.

use rand::Rng;

use crate::channels::{ErrorChannel, ErrorKind, SampledError};

/// One fired error of a presampled shot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ErrorEvent {
    /// Flattened exposure-site index the error fired at (sites are numbered
    /// in protocol order: step-major, then qubit-major, then channels in
    /// noise-model order).
    pub site: u32,
    /// Index into the site channel's [`ErrorChannel::unitaries`] list.
    pub error: u8,
}

/// The compact key of one presampled trajectory: every error that fires
/// during the shot, as `(site, error)` pairs in site order.
///
/// Two shots with equal patterns apply the identical operator sequence and
/// therefore reach the identical final state; the empty pattern (no error
/// fired anywhere) is by far the most common at realistic noise strengths.
///
/// # Examples
///
/// ```
/// use qsdd_noise::{ErrorChannel, ErrorKind, Presampled, PresamplePlan, SiteChannel};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// // Two exposure sites of a phase-flip channel that never fires.
/// let site = SiteChannel::Passive(ErrorChannel::new(ErrorKind::PhaseFlip, 0.0));
/// let plan = PresamplePlan::new(vec![site, site]);
/// let mut rng = StdRng::seed_from_u64(1);
/// let Presampled::Pattern(pattern) = plan.presample(&mut rng) else {
///     panic!("state-independent sites always presample");
/// };
/// assert!(pattern.is_empty());
/// assert_eq!(pattern.error_events(), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct ErrorPattern {
    events: Vec<ErrorEvent>,
}

impl ErrorPattern {
    /// Builds a pattern from its fired errors (must be sorted by site, one
    /// event per site). Used by the enumeration layer ([`crate::enumerate`])
    /// to construct the patterns it weighs.
    pub(crate) fn from_events(events: Vec<ErrorEvent>) -> Self {
        debug_assert!(
            events.windows(2).all(|w| w[0].site < w[1].site),
            "pattern events must be strictly site-ordered"
        );
        ErrorPattern { events }
    }

    /// The fired errors in site order.
    pub fn events(&self) -> &[ErrorEvent] {
        &self.events
    }

    /// `true` when no error fired (the no-error trajectory).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of stochastic error events of the pattern (each entry is one
    /// fired error; damping "keep" branches are not errors and never appear
    /// in a pattern).
    pub fn error_events(&self) -> u64 {
        self.events.len() as u64
    }
}

/// What decides the outcome of one noise-exposure site during presampling.
#[derive(Clone, Copy, Debug)]
pub enum SiteChannel {
    /// A state-independent channel ([`ErrorChannel::state_dependent`] is
    /// `false`): [`ErrorChannel::sample_error`] fully resolves the draw.
    Passive(ErrorChannel),
    /// A state-dependent damping channel whose branch threshold along the
    /// no-error path has been precomputed: the single branch draw compares
    /// against `p_decay` exactly as live execution would. The threshold is
    /// only valid while the shot is still on the no-error path — any
    /// earlier deviation invalidates it.
    Damping {
        /// Probability of the decay branch on the no-error path.
        p_decay: f64,
    },
}

/// Result of presampling one shot against a [`PresamplePlan`].
#[derive(Clone, Debug)]
pub enum Presampled {
    /// Every site resolved; the shot's trajectory is fully described by the
    /// pattern, and the generator is positioned exactly after the last
    /// exposure draw.
    Pattern(ErrorPattern),
    /// The shot left the presampleable region — a damping branch decayed,
    /// or an error fired with a state-dependent site still ahead (whose
    /// precomputed threshold the deviation invalidates). The shot must
    /// execute live, with a **freshly derived** generator: the one used for
    /// presampling has been partially consumed and must be discarded.
    Live,
}

/// The flattened, dispatch-free form of one site (see
/// [`PresamplePlan::new`]): the presample inner loop is the hottest loop of
/// a deduplicated run, so the per-site decision is resolved to one branch
/// on a dense tag instead of two nested enum matches. The semantics — and
/// crucially the random-stream consumption — of each arm are exactly those
/// of [`ErrorChannel::sample_error`] for the corresponding kind.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FlatSite {
    /// Depolarizing channel with probability `p`: one uniform draw against
    /// `p`, one `0..4` draw when it fires.
    Depolarizing(f64),
    /// Phase flip with probability `p`: one uniform draw against `p`.
    PhaseFlip(f64),
    /// State-dependent damping with precomputed no-error-path threshold:
    /// one uniform draw against it; decay forces the live path.
    Damping(f64),
    /// Any other state-independent channel: defer to
    /// [`ErrorChannel::sample_error`].
    Other(ErrorChannel),
}

/// The flattened noise-exposure sites of a program's deduplicable prefix.
///
/// Built once per compiled program; [`PresamplePlan::presample`] then
/// resolves any shot's error decisions in `O(sites)` random draws.
#[derive(Clone, Debug, Default)]
pub struct PresamplePlan {
    pub(crate) sites: Vec<FlatSite>,
    /// Index of the last state-dependent site, if any: an error firing
    /// before it forces the shot onto the live path (the deviation
    /// invalidates every later precomputed damping threshold).
    pub(crate) last_damping: Option<usize>,
}

impl PresamplePlan {
    /// Builds a plan over the given exposure sites (in protocol order).
    pub fn new(sites: Vec<SiteChannel>) -> Self {
        debug_assert!(
            sites.iter().all(|site| match site {
                SiteChannel::Passive(channel) => !channel.state_dependent(),
                SiteChannel::Damping { .. } => true,
            }),
            "state-dependent channels must use SiteChannel::Damping"
        );
        let sites: Vec<FlatSite> = sites
            .into_iter()
            .map(|site| match site {
                SiteChannel::Passive(channel) => match channel.kind() {
                    ErrorKind::Depolarizing => FlatSite::Depolarizing(channel.probability()),
                    ErrorKind::PhaseFlip => FlatSite::PhaseFlip(channel.probability()),
                    _ => FlatSite::Other(channel),
                },
                SiteChannel::Damping { p_decay } => FlatSite::Damping(p_decay),
            })
            .collect();
        let last_damping = sites
            .iter()
            .rposition(|site| matches!(site, FlatSite::Damping(_)));
        PresamplePlan {
            sites,
            last_damping,
        }
    }

    /// Number of exposure sites covered by the plan.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Resolves one shot's error decisions against the plan.
    ///
    /// Consumes the random number stream exactly like live execution of the
    /// covered exposures: one [`ErrorChannel::sample_error`] per passive
    /// site, one branch draw per damping site. On [`Presampled::Pattern`]
    /// the generator is therefore positioned precisely where a live shot
    /// would be after the last covered exposure; on [`Presampled::Live`]
    /// the generator is partially consumed and must be re-derived.
    #[inline]
    pub fn presample<R: Rng + ?Sized>(&self, rng: &mut R) -> Presampled {
        let mut events = Vec::new();
        for (site, flat) in self.sites.iter().enumerate() {
            // Each arm consumes the stream exactly like
            // `ErrorChannel::sample_error` for its kind (the depolarizing
            // and phase-flip arms are that method's bodies, inlined).
            let error = match *flat {
                FlatSite::Depolarizing(p) => {
                    if p == 0.0 || rng.gen::<f64>() >= p {
                        continue;
                    }
                    match rng.gen_range(0..4) {
                        0 => continue, // identity branch
                        branch => branch - 1,
                    }
                }
                FlatSite::PhaseFlip(p) => {
                    if p == 0.0 || rng.gen::<f64>() >= p {
                        continue;
                    }
                    0
                }
                FlatSite::Damping(p_decay) => {
                    // The damping channel's single draw; the decay branch
                    // is a state change whose successors are not
                    // precomputed.
                    if rng.gen::<f64>() < p_decay {
                        return Presampled::Live;
                    }
                    continue;
                }
                FlatSite::Other(channel) => match channel.sample_error(rng) {
                    SampledError::None => continue,
                    SampledError::Unitary(error) => error,
                    SampledError::Kraus => {
                        unreachable!("passive sites come from state-independent channels")
                    }
                },
            };
            if self.last_damping.is_some_and(|last| last > site) {
                // A state-dependent site lies ahead; its precomputed
                // threshold assumed the no-error path this error just left.
                return Presampled::Live;
            }
            events.push(ErrorEvent {
                site: site as u32,
                error: error as u8,
            });
        }
        Presampled::Pattern(ErrorPattern { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::ErrorKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn passive(kind: ErrorKind, p: f64) -> SiteChannel {
        SiteChannel::Passive(ErrorChannel::new(kind, p))
    }

    #[test]
    fn passive_sites_always_presample() {
        let plan = PresamplePlan::new(vec![
            passive(ErrorKind::Depolarizing, 0.3),
            passive(ErrorKind::PhaseFlip, 0.3),
            passive(ErrorKind::Depolarizing, 0.3),
        ]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            assert!(matches!(plan.presample(&mut rng), Presampled::Pattern(_)));
        }
    }

    #[test]
    fn presampling_consumes_the_stream_like_live_sampling() {
        // The pattern generator and a hand-rolled live replay must agree on
        // every event and leave their generators in identical states.
        let channels = [
            ErrorChannel::new(ErrorKind::Depolarizing, 0.4),
            ErrorChannel::new(ErrorKind::PhaseFlip, 0.25),
        ];
        let sites: Vec<SiteChannel> = channels
            .iter()
            .cycle()
            .take(20)
            .map(|c| SiteChannel::Passive(*c))
            .collect();
        let plan = PresamplePlan::new(sites.clone());
        for seed in 0..50 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let Presampled::Pattern(pattern) = plan.presample(&mut rng_a) else {
                panic!("passive plans always presample");
            };
            let mut expected = Vec::new();
            for (site, channel) in sites.iter().enumerate() {
                let SiteChannel::Passive(channel) = channel else {
                    unreachable!()
                };
                if let SampledError::Unitary(error) = channel.sample_error(&mut rng_b) {
                    expected.push(ErrorEvent {
                        site: site as u32,
                        error: error as u8,
                    });
                }
            }
            assert_eq!(pattern.events(), expected.as_slice());
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "stream diverged");
        }
    }

    #[test]
    fn damping_decay_forces_the_live_path() {
        let plan = PresamplePlan::new(vec![SiteChannel::Damping { p_decay: 1.0 }]);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(matches!(plan.presample(&mut rng), Presampled::Live));
        // A never-decaying damping site stays on the pattern path.
        let plan = PresamplePlan::new(vec![SiteChannel::Damping { p_decay: 0.0 }]);
        let Presampled::Pattern(pattern) = plan.presample(&mut rng) else {
            panic!("p_decay = 0 never deviates");
        };
        assert!(pattern.is_empty());
    }

    #[test]
    fn deviation_before_a_damping_site_forces_the_live_path() {
        // A certain phase flip ahead of a damping site: the precomputed
        // threshold is invalidated, the shot must run live.
        let plan = PresamplePlan::new(vec![
            passive(ErrorKind::PhaseFlip, 1.0),
            SiteChannel::Damping { p_decay: 0.0 },
        ]);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(matches!(plan.presample(&mut rng), Presampled::Live));
        // The same deviation *after* the last damping site is fine.
        let plan = PresamplePlan::new(vec![
            SiteChannel::Damping { p_decay: 0.0 },
            passive(ErrorKind::PhaseFlip, 1.0),
        ]);
        let Presampled::Pattern(pattern) = plan.presample(&mut rng) else {
            panic!("trailing deviations stay presampleable");
        };
        assert_eq!(
            pattern.events(),
            &[ErrorEvent { site: 1, error: 0 }],
            "the trailing flip must be recorded"
        );
        assert_eq!(pattern.error_events(), 1);
    }

    #[test]
    fn patterns_hash_and_compare_by_content() {
        use std::collections::HashMap;
        let plan = PresamplePlan::new(vec![passive(ErrorKind::Depolarizing, 0.5); 4]);
        let mut groups: HashMap<ErrorPattern, u64> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..500 {
            let Presampled::Pattern(pattern) = plan.presample(&mut rng) else {
                unreachable!()
            };
            *groups.entry(pattern).or_insert(0) += 1;
        }
        // At p = 0.5 over four sites many shots share patterns.
        assert!(groups.len() > 1);
        assert!(groups.values().sum::<u64>() == 500);
        assert!(groups.values().any(|&count| count > 1));
    }
}
