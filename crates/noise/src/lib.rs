//! # qsdd-noise — error channels and noise models
//!
//! Quantum hardware is noisy: gates are imperfect (depolarizing errors) and
//! qubits decohere over time (amplitude damping / T1 and phase flip / T2).
//! This crate describes those errors in two equivalent ways:
//!
//! * as **Kraus operators** (used by the exact density-matrix reference
//!   simulator in `qsdd-density`), and
//! * as **stochastic events** sampled per gate application (used by the
//!   Monte-Carlo simulators in `qsdd-core` and `qsdd-statevector`, following
//!   Section III of the paper).
//!
//! ## Quick start
//!
//! ```
//! use qsdd_noise::{ErrorKind, NoiseModel, StochasticAction};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let model = NoiseModel::paper_defaults();
//! let mut rng = StdRng::seed_from_u64(0);
//! for channel in model.channels() {
//!     match channel.sample_action(&mut rng) {
//!         StochasticAction::None => {}
//!         StochasticAction::Unitary(_) => { /* apply the error unitary */ }
//!         StochasticAction::Kraus(branches) => assert_eq!(branches.len(), 2),
//!     }
//!     let _ = channel.kind() == ErrorKind::PhaseFlip;
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod channels;
mod model;

pub use channels::{ErrorChannel, ErrorKind, SampledError, StochasticAction};
pub use model::NoiseModel;
