//! # qsdd-noise — error channels and noise models
//!
//! Quantum hardware is noisy: gates are imperfect (depolarizing errors) and
//! qubits decohere over time (amplitude damping / T1 and phase flip / T2).
//! This crate describes those errors in two equivalent ways:
//!
//! * as **Kraus operators** (used by the exact density-matrix reference
//!   simulator in `qsdd-density`), and
//! * as **stochastic events** sampled per gate application (used by the
//!   Monte-Carlo simulators in `qsdd-core` and `qsdd-statevector`, following
//!   Section III of the paper).
//!
//! The stochastic side is sampled through the index-based
//! [`ErrorChannel::sample_error`] (the canonical entry point: compiled shot
//! programs resolve operators once and look them up by index at shot time).
//! On top of it, the [`presample`] module splits error *sampling* from
//! error *application*: a shot's complete error decisions are resolved up
//! front into a compact [`ErrorPattern`], which is what enables
//! trajectory deduplication — simulating each distinct pattern once and
//! fanning the result out over every shot that drew it.
//!
//! ## Quick start
//!
//! ```
//! use qsdd_noise::{ErrorKind, NoiseModel, StochasticAction};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let model = NoiseModel::paper_defaults();
//! let mut rng = StdRng::seed_from_u64(0);
//! for channel in model.channels() {
//!     match channel.sample_action(&mut rng) {
//!         StochasticAction::None => {}
//!         StochasticAction::Unitary(_) => { /* apply the error unitary */ }
//!         StochasticAction::Kraus(branches) => assert_eq!(branches.len(), 2),
//!     }
//!     let _ = channel.kind() == ErrorKind::PhaseFlip;
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod channels;
pub mod enumerate;
mod model;
pub mod presample;

pub use channels::{ErrorChannel, ErrorKind, SampledError, StochasticAction};
pub use enumerate::{PatternEnumerator, WeightedPattern};
pub use model::NoiseModel;
pub use presample::{ErrorEvent, ErrorPattern, PresamplePlan, Presampled, SiteChannel};
