//! # qsdd-density — exact density-matrix reference simulator
//!
//! Noisy quantum computations produce *mixed* states. The mathematically
//! exact description is a density matrix evolved under quantum channels —
//! exactly the object whose `2^n x 2^n` size motivates the paper's
//! stochastic approach (Section III).
//!
//! This crate implements that exact evolution for small systems. It serves
//! as the ground truth against which the Monte-Carlo estimates of the
//! stochastic decision-diagram and statevector simulators are validated in
//! the integration tests and in the Theorem 1 experiment.
//!
//! ## Quick start
//!
//! ```
//! use qsdd_circuit::generators::ghz;
//! use qsdd_density::simulate;
//! use qsdd_noise::NoiseModel;
//!
//! let rho = simulate(&ghz(3), &NoiseModel::paper_defaults());
//! assert!(rho.purity() < 1.0); // noise mixes the state
//! let populations = rho.populations();
//! assert!((populations.iter().sum::<f64>() - 1.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod density;
mod simulate;

pub use density::DensityMatrix;
pub use simulate::{outcome_distribution, simulate};
