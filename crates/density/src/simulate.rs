//! Exact noisy circuit simulation on density matrices.
//!
//! Every gate of the circuit is applied as a unitary conjugation; afterwards
//! the noise model's channels are applied deterministically (as completely
//! positive maps) to every qubit the gate touched. The result is the exact
//! mixed state that the stochastic simulators approximate by sampling.

use qsdd_circuit::{Circuit, Operation};
use qsdd_noise::NoiseModel;

use crate::density::DensityMatrix;

/// Simulates `circuit` under `noise` exactly and returns the final density
/// matrix.
///
/// Mid-circuit measurements are treated as unrecorded projective
/// measurements (dephasing); resets map the qubit back to `|0>`.
///
/// # Panics
///
/// Panics if the circuit is wider than 12 qubits (dense density-matrix
/// limit).
pub fn simulate(circuit: &Circuit, noise: &NoiseModel) -> DensityMatrix {
    let mut rho = DensityMatrix::new(circuit.num_qubits());
    let channels = noise.channels();
    for op in circuit {
        match op {
            Operation::Gate {
                gate,
                target,
                controls,
            } => {
                let m = gate
                    .matrix()
                    .expect("non-swap gates always provide a matrix");
                rho.apply_controlled_unitary(controls, *target, &m);
                apply_noise(&mut rho, &channels, op);
            }
            Operation::Swap { a, b } => {
                rho.apply_swap(*a, *b);
                apply_noise(&mut rho, &channels, op);
            }
            Operation::Measure { qubit, .. } => rho.dephase(*qubit),
            Operation::Reset { qubit } => rho.reset(*qubit),
            Operation::Barrier => {}
        }
    }
    rho
}

fn apply_noise(rho: &mut DensityMatrix, channels: &[qsdd_noise::ErrorChannel], op: &Operation) {
    if channels.is_empty() {
        return;
    }
    for qubit in op.qubits() {
        for channel in channels {
            rho.apply_kraus_channel(qubit, &channel.kraus_operators());
        }
    }
}

/// Convenience helper: the exact probability of every computational basis
/// outcome after the noisy circuit.
pub fn outcome_distribution(circuit: &Circuit, noise: &NoiseModel) -> Vec<f64> {
    simulate(circuit, noise).populations()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::generators::ghz;

    #[test]
    fn noiseless_simulation_matches_pure_state() {
        let rho = simulate(&ghz(3), &NoiseModel::noiseless());
        let pops = rho.populations();
        assert!((pops[0] - 0.5).abs() < 1e-12);
        assert!((pops[7] - 0.5).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noise_reduces_purity() {
        let noisy = simulate(&ghz(3), &NoiseModel::paper_defaults());
        assert!(noisy.purity() < 1.0);
        assert!((noisy.trace().re - 1.0).abs() < 1e-10);
        // The |1..1> peak loses probability (amplitude damping decays it),
        // while both peaks stay close to the ideal 0.5.
        let pops = noisy.populations();
        assert!(pops[7] < 0.5 && pops[7] > 0.45);
        assert!(pops[0] > 0.45 && pops[0] < 0.55);
    }

    #[test]
    fn stronger_noise_mixes_more() {
        let mild = simulate(&ghz(2), &NoiseModel::new(0.001, 0.002, 0.001));
        let strong = simulate(&ghz(2), &NoiseModel::new(0.05, 0.1, 0.05));
        assert!(strong.purity() < mild.purity());
    }

    #[test]
    fn distribution_sums_to_one() {
        let dist = outcome_distribution(&ghz(4), &NoiseModel::paper_defaults());
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(dist.iter().all(|&p| p >= -1e-12));
    }
}
