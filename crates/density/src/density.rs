//! Dense density matrices and exact (deterministic) noisy evolution.

use qsdd_dd::{Complex, Matrix2};

/// A dense `2^n x 2^n` density matrix in row-major order.
///
/// This representation grows quadratically faster than a state vector and is
/// only meant as *ground truth* for small systems: the exact mixed state of
/// a noisy computation against which the Monte-Carlo estimates of the
/// stochastic simulators can be validated (cf. Section III of the paper,
/// which motivates stochastic simulation precisely by the cost of this
/// object).
///
/// # Examples
///
/// ```
/// use qsdd_dd::Matrix2;
/// use qsdd_density::DensityMatrix;
///
/// let mut rho = DensityMatrix::new(1);
/// rho.apply_single_unitary(0, &Matrix2::hadamard());
/// assert!((rho.probability_one(0) - 0.5).abs() < 1e-12);
/// assert!((rho.purity() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DensityMatrix {
    num_qubits: usize,
    dim: usize,
    data: Vec<Complex>,
}

impl DensityMatrix {
    /// Creates the pure density matrix `|0...0><0...0|` over `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 12` (the dense matrix would not fit in
    /// memory).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "density matrix needs at least one qubit");
        assert!(
            n <= 12,
            "dense density matrices above 12 qubits are not supported"
        );
        let dim = 1usize << n;
        let mut data = vec![Complex::ZERO; dim * dim];
        data[0] = Complex::ONE;
        DensityMatrix {
            num_qubits: n,
            dim,
            data,
        }
    }

    /// Creates the pure density matrix `|psi><psi|` from a state vector of
    /// length `2^n`.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two or exceeds the 12-qubit
    /// limit.
    pub fn from_pure(amplitudes: &[Complex]) -> Self {
        assert!(
            amplitudes.len() >= 2 && amplitudes.len().is_power_of_two(),
            "amplitude count must be a power of two"
        );
        let n = amplitudes.len().trailing_zeros() as usize;
        assert!(
            n <= 12,
            "dense density matrices above 12 qubits are not supported"
        );
        let dim = amplitudes.len();
        let mut data = vec![Complex::ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                data[r * dim + c] = amplitudes[r] * amplitudes[c].conj();
            }
        }
        DensityMatrix {
            num_qubits: n,
            dim,
            data,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Matrix dimension `2^n`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Matrix entry `(row, col)`.
    pub fn entry(&self, row: usize, col: usize) -> Complex {
        self.data[row * self.dim + col]
    }

    /// The trace of the matrix (1 for a valid state).
    pub fn trace(&self) -> Complex {
        (0..self.dim).fold(Complex::ZERO, |acc, i| acc + self.entry(i, i))
    }

    /// The purity `Tr(rho^2)`; 1 for pure states, `1/2^n` for the maximally
    /// mixed state.
    pub fn purity(&self) -> f64 {
        let mut total = Complex::ZERO;
        for r in 0..self.dim {
            for c in 0..self.dim {
                total += self.entry(r, c) * self.entry(c, r);
            }
        }
        total.re
    }

    /// The diagonal of the matrix: the probability of each computational
    /// basis outcome.
    pub fn populations(&self) -> Vec<f64> {
        (0..self.dim).map(|i| self.entry(i, i).re).collect()
    }

    /// Probability of observing `|1>` on `qubit`.
    pub fn probability_one(&self, qubit: usize) -> f64 {
        let mask = self.bit_mask(qubit);
        (0..self.dim)
            .filter(|i| i & mask != 0)
            .map(|i| self.entry(i, i).re)
            .sum()
    }

    fn bit_mask(&self, qubit: usize) -> usize {
        assert!(qubit < self.num_qubits, "qubit index out of range");
        1usize << (self.num_qubits - 1 - qubit)
    }

    /// Applies a single-qubit unitary `U` to `target`: `rho -> U rho U†`.
    pub fn apply_single_unitary(&mut self, target: usize, m: &Matrix2) {
        self.apply_controlled_unitary(&[], target, m);
    }

    /// Applies a controlled single-qubit unitary: the operator acts on
    /// `target` when all `controls` are `|1>`.
    pub fn apply_controlled_unitary(&mut self, controls: &[usize], target: usize, m: &Matrix2) {
        self.left_multiply(controls, target, m);
        self.right_multiply_dagger(controls, target, m);
    }

    /// Exchanges two qubits.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        // SWAP = CX(a,b) CX(b,a) CX(a,b)
        let x = Matrix2::pauli_x();
        self.apply_controlled_unitary(&[a], b, &x);
        self.apply_controlled_unitary(&[b], a, &x);
        self.apply_controlled_unitary(&[a], b, &x);
    }

    /// Applies a single-qubit channel given by its Kraus operators to
    /// `qubit`: `rho -> sum_k K_k rho K_k†`.
    pub fn apply_kraus_channel(&mut self, qubit: usize, kraus: &[Matrix2]) {
        let mut accumulated = vec![Complex::ZERO; self.data.len()];
        let original = self.clone();
        for k in kraus {
            let mut branch = original.clone();
            branch.left_multiply(&[], qubit, k);
            branch.right_multiply_dagger(&[], qubit, k);
            for (acc, value) in accumulated.iter_mut().zip(&branch.data) {
                *acc += *value;
            }
        }
        self.data = accumulated;
    }

    /// Dephases `qubit` in the computational basis (the effect of a
    /// projective measurement whose outcome is discarded).
    pub fn dephase(&mut self, qubit: usize) {
        self.apply_kraus_channel(
            qubit,
            &[Matrix2::projector_zero(), Matrix2::projector_one()],
        );
    }

    /// Resets `qubit` to `|0>` (the `|0><0| + |0><1|` reset channel).
    pub fn reset(&mut self, qubit: usize) {
        let to_zero_from_zero = Matrix2::projector_zero();
        let to_zero_from_one = Matrix2::from_real(0.0, 1.0, 0.0, 0.0);
        self.apply_kraus_channel(qubit, &[to_zero_from_zero, to_zero_from_one]);
    }

    fn left_multiply(&mut self, controls: &[usize], target: usize, m: &Matrix2) {
        let mask = self.bit_mask(target);
        let control_mask: usize = controls.iter().map(|&c| self.bit_mask(c)).sum();
        for col in 0..self.dim {
            for row in 0..self.dim {
                if row & mask == 0 && row & control_mask == control_mask {
                    let other = row | mask;
                    let a0 = self.data[row * self.dim + col];
                    let a1 = self.data[other * self.dim + col];
                    self.data[row * self.dim + col] = m.entry(0, 0) * a0 + m.entry(0, 1) * a1;
                    self.data[other * self.dim + col] = m.entry(1, 0) * a0 + m.entry(1, 1) * a1;
                }
            }
        }
    }

    fn right_multiply_dagger(&mut self, controls: &[usize], target: usize, m: &Matrix2) {
        let mask = self.bit_mask(target);
        let control_mask: usize = controls.iter().map(|&c| self.bit_mask(c)).sum();
        for row in 0..self.dim {
            for col in 0..self.dim {
                if col & mask == 0 && col & control_mask == control_mask {
                    let other = col | mask;
                    let a0 = self.data[row * self.dim + col];
                    let a1 = self.data[row * self.dim + other];
                    // rho U†: new[.,c] = sum_k rho[.,k] conj(U[c][k])
                    self.data[row * self.dim + col] =
                        a0 * m.entry(0, 0).conj() + a1 * m.entry(0, 1).conj();
                    self.data[row * self.dim + other] =
                        a0 * m.entry(1, 0).conj() + a1 * m.entry(1, 1).conj();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_pure_zero() {
        let rho = DensityMatrix::new(2);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert!((rho.populations()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitary_evolution_preserves_trace_and_purity() {
        let mut rho = DensityMatrix::new(2);
        rho.apply_single_unitary(0, &Matrix2::hadamard());
        rho.apply_controlled_unitary(&[0], 1, &Matrix2::pauli_x());
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        let pops = rho.populations();
        assert!((pops[0] - 0.5).abs() < 1e-12);
        assert!((pops[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn depolarizing_channel_mixes_the_state() {
        let mut rho = DensityMatrix::new(1);
        // Full depolarization: the qubit ends up maximally mixed.
        let p: f64 = 1.0;
        let kraus = vec![
            Matrix2::identity().scale((1.0 - 0.75 * p).sqrt().into()),
            Matrix2::pauli_x().scale((0.25 * p).sqrt().into()),
            Matrix2::pauli_y().scale((0.25 * p).sqrt().into()),
            Matrix2::pauli_z().scale((0.25 * p).sqrt().into()),
        ];
        rho.apply_kraus_channel(0, &kraus);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 0.5).abs() < 1e-12);
        assert!((rho.probability_one(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn amplitude_damping_drains_excited_population() {
        let mut rho = DensityMatrix::new(1);
        rho.apply_single_unitary(0, &Matrix2::pauli_x()); // |1>
        let p = 0.4;
        rho.apply_kraus_channel(
            0,
            &[
                Matrix2::amplitude_damping_a1(p),
                Matrix2::amplitude_damping_a0(p),
            ],
        );
        assert!((rho.probability_one(0) - (1.0 - p)).abs() < 1e-12);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dephasing_kills_coherences_but_keeps_populations() {
        let mut rho = DensityMatrix::new(1);
        rho.apply_single_unitary(0, &Matrix2::hadamard());
        assert!(rho.entry(0, 1).abs() > 0.4);
        rho.dephase(0);
        assert!(rho.entry(0, 1).abs() < 1e-12);
        assert!((rho.probability_one(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reset_returns_qubit_to_ground_state() {
        let mut rho = DensityMatrix::new(2);
        rho.apply_single_unitary(1, &Matrix2::pauli_x());
        rho.reset(1);
        assert!(rho.probability_one(1).abs() < 1e-12);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_pure_reproduces_projector() {
        let inv = std::f64::consts::FRAC_1_SQRT_2;
        let rho = DensityMatrix::from_pure(&[Complex::real(inv), Complex::real(inv)]);
        assert!((rho.entry(0, 1).re - 0.5).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }
}
