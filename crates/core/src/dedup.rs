//! Trajectory deduplication: presample, group, replay.
//!
//! At realistic noise strengths almost every shot draws the *same* error
//! decisions — usually none at all — so the per-shot work of the compiled
//! execution pipeline is multiplied by the shot count even though most
//! shots are identical. This module removes that multiplication:
//!
//! 1. **Presample** — every shot's error decisions are resolved up front
//!    (in parallel) from its deterministic per-`(seed, shot)` generator via
//!    the state-independent [`PresamplePlan`] of the compiled program,
//!    consuming the random stream exactly like live execution would.
//! 2. **Group** — shots are keyed by their compact [`ErrorPattern`]; equal
//!    patterns evolve through identical states, so each distinct pattern
//!    forms one *trajectory group*. Shots whose decisions depend on the
//!    state (a damping decay, or any error with a state-dependent exposure
//!    still ahead) fall out as *live* shots.
//! 3. **Replay** — one representative per group executes the pattern
//!    through the back-end ([`StochasticBackend::run_pattern`]); the result
//!    fans out over the group: every member samples its own measurement
//!    outcome from the shared final state with its own (correctly
//!    positioned) generator, observable values are evaluated once, and
//!    multiplicity-weighted aggregation reproduces the per-shot totals.
//!    Live shots run through the ordinary [`StochasticBackend::run_shot`]
//!    path unchanged.
//!
//! For programs whose deduplicable region is only a *prefix* (a mid-circuit
//! measurement or an uncovered state-dependent exposure ahead), the group
//! representative executes the prefix once, the execution context is
//! checkpointed, and every member resumes live from a clone of that
//! checkpoint ([`StochasticBackend::resume_pattern`]).
//!
//! # Determinism
//!
//! Deduplication is an optimisation, never an observable: for every seed
//! and thread count the histogram, error counts, node statistics and the
//! bit pattern of every observable sum are identical to per-shot execution.
//! This hinges on three invariants: presampling consumes each shot's random
//! stream exactly like live execution (so post-pattern sampling continues
//! from the right position), a pattern replay performs the identical
//! operator sequence a member shot would have performed (so the shared
//! state — and the context it lives in — is bit-identical), and the final
//! aggregation replays the per-worker strided summation order of the
//! non-deduplicated runner.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use qsdd_dd::IntraPool;

use qsdd_noise::{ErrorPattern, PresamplePlan, Presampled};
use qsdd_telemetry::trace;
use rand::rngs::StdRng;

use crate::backend::StochasticBackend;
use crate::deadline::{Deadline, TimedOut};
use crate::estimator::Observable;
use crate::fxhash::FxHashMap;
use crate::shot_engine::ShotSample;
use crate::stochastic::{merge_partials, shot_rng, StochasticOutcome, WorkerPartial};

/// How a compiled program supports trajectory deduplication.
///
/// Produced by [`StochasticBackend::dedup_support`]; `None` from that
/// method means every shot of the program must execute live (the ordinary
/// per-shot path).
#[derive(Clone, Debug)]
pub struct DedupSupport {
    /// Presample plan over the flattened noise-exposure sites of the
    /// deduplicable prefix.
    pub plan: PresamplePlan,
    /// Number of leading program steps the pattern replay covers.
    pub prefix_steps: usize,
    /// `true` when the prefix is the whole program: pattern shots then only
    /// need per-shot outcome sampling. `false` means members resume live
    /// from a checkpoint after the prefix.
    pub full: bool,
}

/// Deduplication statistics of one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Number of trajectories actually simulated: distinct pattern groups
    /// plus live shots (each live shot is its own trajectory).
    pub unique_trajectories: u64,
    /// Shots that could not be presampled and executed live.
    pub live_shots: u64,
}

/// One unit of deduplicated work.
enum Work {
    /// A trajectory group: the shared pattern plus every member shot with
    /// its post-presample generator.
    Group {
        pattern: ErrorPattern,
        shots: Vec<(u64, StdRng)>,
    },
    /// A shot that must execute live (freshly derived generator).
    Live(u64),
}

/// What one presampling worker collected over its contiguous shot range.
#[derive(Default)]
struct WorkerGroups {
    /// Pattern → slot into `groups`, fast-hashed (trusted tiny keys).
    index: FxHashMap<ErrorPattern, usize>,
    /// Groups in first-appearance order; members in shot order.
    groups: Vec<(ErrorPattern, Vec<(u64, StdRng)>)>,
    live: Vec<u64>,
}

/// Presamples and groups one contiguous shot range sequentially.
///
/// Shared by the batch scheduler (which releases one round at a time, so
/// its memory stays bounded by the round size) and the parallel
/// [`plan_shots`] below. Returns the groups in first-appearance order with
/// members in shot order, plus the live shots in index order.
pub(crate) type ShotGroups = (Vec<(ErrorPattern, Vec<(u64, StdRng)>)>, Vec<u64>);

pub(crate) fn group_range(
    plan: &PresamplePlan,
    range: std::ops::Range<u64>,
    seed: u64,
) -> ShotGroups {
    let mut groups = WorkerGroups::default();
    groups.presample_range(plan, range, seed);
    (groups.groups, groups.live)
}

impl WorkerGroups {
    #[inline]
    fn presample_range(&mut self, plan: &PresamplePlan, range: std::ops::Range<u64>, seed: u64) {
        for shot in range {
            let mut rng = shot_rng(seed, shot);
            match plan.presample(&mut rng) {
                Presampled::Pattern(pattern) => {
                    // The generator is kept: it sits exactly where live
                    // execution would after the covered exposures.
                    let at = *self.index.entry(pattern.clone()).or_insert_with(|| {
                        self.groups.push((pattern, Vec::new()));
                        self.groups.len() - 1
                    });
                    self.groups[at].1.push((shot, rng));
                }
                Presampled::Live => self.live.push(shot),
            }
        }
    }
}

/// Presamples shots `0..shots` in parallel and groups them by pattern.
///
/// Each worker presamples and groups one contiguous shot range; the ranges
/// are merged in worker order, which (ranges being ascending) yields groups
/// in global first-appearance order with members in shot order — the same
/// plan a sequential pass would build. Returns the work list (groups first,
/// then live shots in index order) and the live-shot count.
fn plan_shots(plan: &PresamplePlan, shots: usize, threads: usize, seed: u64) -> (Vec<Work>, u64) {
    let chunk = shots.div_ceil(threads).max(1) as u64;
    let mut workers: Vec<WorkerGroups> = Vec::new();
    if threads <= 1 {
        let mut only = WorkerGroups::default();
        only.presample_range(plan, 0..shots as u64, seed);
        workers.push(only);
    } else {
        workers.resize_with(threads, WorkerGroups::default);
        let trace_handle = trace::propagate();
        std::thread::scope(|scope| {
            for (worker, slot) in workers.iter_mut().enumerate() {
                let start = (worker as u64 * chunk).min(shots as u64);
                let end = (start + chunk).min(shots as u64);
                let trace_handle = trace_handle.clone();
                scope.spawn(move || {
                    let _lane = trace_handle.as_ref().map(|h| h.install(worker as u32 + 1));
                    let _span = trace::span("presample_shard");
                    trace::attr("worker", worker);
                    trace::attr("shots", (end - start) as usize);
                    slot.presample_range(plan, start..end, seed)
                });
            }
        });
    }

    let mut index: HashMap<ErrorPattern, usize> = HashMap::new();
    let mut groups: Vec<Work> = Vec::new();
    let mut live: Vec<u64> = Vec::new();
    for worker in workers {
        for (pattern, members) in worker.groups {
            let at = *index.entry(pattern.clone()).or_insert_with(|| {
                groups.push(Work::Group {
                    pattern,
                    shots: Vec::new(),
                });
                groups.len() - 1
            });
            let Work::Group { shots, .. } = &mut groups[at] else {
                unreachable!("group indices only point at groups")
            };
            shots.extend(members);
        }
        live.extend(worker.live);
    }
    let live_count = live.len() as u64;
    groups.extend(live.into_iter().map(Work::Live));
    (groups, live_count)
}

/// Executes one trajectory group, feeding one record per member shot into
/// `sink` (shot index, sample, observable values).
///
/// The representative pattern run happens in `pattern_ctx`; for prefix
/// deduplication each member resumes live in `work_ctx` from a clone of the
/// checkpointed `pattern_ctx`. Observables must already be expressed over
/// the executed circuit's qubits; outcomes are reported in the executed
/// circuit's qubit order (callers restore transpiler layouts themselves).
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_group<B: StochasticBackend>(
    backend: &B,
    program: &B::Program,
    support: &DedupSupport,
    pattern_ctx: &mut B::Context,
    work_ctx: &mut B::Context,
    pattern: &ErrorPattern,
    shots: &mut [(u64, StdRng)],
    observables: &[Observable],
    mut sink: impl FnMut(u64, ShotSample, &[f64]),
) {
    let mut prefix = backend.run_pattern(program, pattern_ctx, pattern);
    if support.full {
        // The shared final state: the observable values are evaluated once,
        // then every member samples its own outcome from it (the
        // generators continue their streams exactly where live execution
        // would). Evaluation happens per group regardless of order — its
        // values and the sampled outcomes are both pure functions of the
        // shared state.
        let values: Vec<f64> = observables
            .iter()
            .map(|observable| backend.evaluate(program, pattern_ctx, &mut prefix, observable))
            .collect();
        let sample = ShotSample {
            outcome: 0,
            error_events: prefix.error_events as u64,
            dd_nodes: prefix.dd_nodes,
            dd_nodes_peak: prefix.dd_nodes_peak,
        };
        backend.sample_outcomes(program, pattern_ctx, &prefix, shots, |shot, outcome| {
            sink(shot, ShotSample { outcome, ..sample }, &values)
        });
    } else {
        // Prefix deduplication: every member resumes live from a clone of
        // the checkpointed context.
        for (shot, rng) in shots.iter_mut() {
            let mut run = backend.resume_pattern(program, pattern_ctx, &prefix, work_ctx, rng);
            let values: Vec<f64> = observables
                .iter()
                .map(|observable| backend.evaluate(program, work_ctx, &mut run, observable))
                .collect();
            sink(
                *shot,
                ShotSample {
                    outcome: run.outcome,
                    error_events: run.error_events as u64,
                    dd_nodes: run.dd_nodes,
                    dd_nodes_peak: run.dd_nodes_peak,
                },
                &values,
            );
        }
    }
}

/// The deduplicating Monte-Carlo driver: presample → group → replay.
///
/// `threads` must already be resolved (positive, capped at the shot count);
/// `observables` must already be mapped onto the executed circuit;
/// `output_layout`, when present, restores each outcome to the original
/// qubit order (the transpiler's elided-SWAP relabeling). The result is
/// byte-identical to the per-shot runner for the same seed and thread
/// count, including the bit patterns of the observable sums.
///
/// Memory: the driver holds one presampled generator per grouped shot
/// (tens of bytes each), so its transient footprint is `O(shots)` where
/// the per-shot runner's is `O(threads)`. For shot counts where that
/// matters, the batch scheduler provides the bounded alternative: it
/// presamples and executes one `check`-interval round at a time.
///
/// The `deadline` is checked between work items (one trajectory group or
/// one live shot); on expiry the whole run returns [`TimedOut`] before the
/// replay phase, which requires complete shot coverage.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_dedup<B: StochasticBackend>(
    backend: &B,
    program: &B::Program,
    support: &DedupSupport,
    shots: usize,
    threads: usize,
    seed: u64,
    observables: &[Observable],
    output_layout: Option<&[usize]>,
    intra: Option<&Arc<IntraPool>>,
    started: Instant,
    deadline: &Deadline,
) -> Result<StochasticOutcome, TimedOut> {
    // Phase 1 + 2: presample every shot, group by pattern.
    let presample_started = Instant::now();
    let presample_span = trace::span("presample");
    let (mut work, live_shots) = plan_shots(&support.plan, shots, threads, seed);
    trace::attr("shots", shots);
    trace::attr("groups", work.len().saturating_sub(live_shots as usize));
    trace::attr("live_shots", live_shots);
    drop(presample_span);
    let presample_time = presample_started.elapsed();
    let unique_trajectories = work.len() as u64;

    // Phase 3: execute each trajectory once, fanning results out per shot.
    // Work items are dealt round-robin; assignment does not influence any
    // result (every record is a deterministic function of the program and
    // the shot index alone).
    //
    // Without observables every aggregate is an integer merge
    // (order-independent), so workers fold their records straight into a
    // partial and phase 4 is a plain merge. With observables the
    // floating-point summation order matters: records are kept per shot
    // and phase 4 replays the strided per-worker order of the
    // non-deduplicated runner, so every bit of the sums matches it.
    enum Sink {
        Partial(WorkerPartial),
        Records(Vec<(u64, ShotSample, Vec<f64>)>),
    }
    let keep_records = !observables.is_empty();
    let mut worker_items: Vec<Vec<Work>> = (0..threads).map(|_| Vec::new()).collect();
    for (item, slot) in work.drain(..).zip((0..threads).cycle()) {
        worker_items[slot].push(item);
    }
    let mut sinks: Vec<Sink> = (0..threads)
        .map(|_| {
            if keep_records {
                Sink::Records(Vec::new())
            } else {
                Sink::Partial(WorkerPartial::new(0))
            }
        })
        .collect();
    let bounded = !deadline.is_unbounded();
    let aborted = AtomicBool::new(false);
    let execute_started = Instant::now();
    let trace_handle = trace::propagate();
    std::thread::scope(|scope| {
        for (worker, (items, sink)) in worker_items.into_iter().zip(sinks.iter_mut()).enumerate() {
            let aborted = &aborted;
            let trace_handle = trace_handle.clone();
            scope.spawn(move || {
                let _lane = trace_handle.as_ref().map(|h| h.install(worker as u32 + 1));
                let _span = trace::span("worker_trajectories");
                trace::attr("worker", worker);
                trace::attr("items", items.len());
                let mut pattern_ctx = backend.new_context();
                let mut work_ctx = backend.new_context();
                if let Some(pool) = intra {
                    backend.set_intra_pool(&mut pattern_ctx, Some(Arc::clone(pool)));
                    backend.set_intra_pool(&mut work_ctx, Some(Arc::clone(pool)));
                }
                let mut emit = |shot: u64, mut sample: ShotSample, values: &[f64]| {
                    if let Some(output_layout) = output_layout {
                        sample.outcome =
                            qsdd_transpile::layout::restore_outcome(sample.outcome, output_layout);
                    }
                    match sink {
                        Sink::Partial(partial) => partial.record(
                            sample.outcome,
                            sample.error_events,
                            sample.dd_nodes,
                            sample.dd_nodes_peak,
                            &[],
                        ),
                        Sink::Records(records) => records.push((shot, sample, values.to_vec())),
                    }
                };
                for item in items {
                    if bounded && deadline.expired() {
                        aborted.store(true, Ordering::Relaxed);
                        return;
                    }
                    match item {
                        Work::Group { pattern, mut shots } => {
                            let group_span = trace::span("trajectory_group");
                            trace::attr("members", shots.len());
                            execute_group(
                                backend,
                                program,
                                support,
                                &mut pattern_ctx,
                                &mut work_ctx,
                                &pattern,
                                &mut shots,
                                observables,
                                &mut emit,
                            );
                            drop(group_span);
                        }
                        Work::Live(shot) => {
                            // Presampling left this shot's stream partially
                            // consumed; live execution re-derives it.
                            let mut rng = shot_rng(seed, shot);
                            let mut run = backend.run_shot(program, &mut pattern_ctx, &mut rng);
                            let values: Vec<f64> = observables
                                .iter()
                                .map(|o| backend.evaluate(program, &mut pattern_ctx, &mut run, o))
                                .collect();
                            emit(
                                shot,
                                ShotSample {
                                    outcome: run.outcome,
                                    error_events: run.error_events as u64,
                                    dd_nodes: run.dd_nodes,
                                    dd_nodes_peak: run.dd_nodes_peak,
                                },
                                &values,
                            );
                        }
                    }
                }
            });
        }
    });

    let execute_time = execute_started.elapsed();
    // A timed-out run must bail here: the replay below expects every shot
    // to be covered, and partial aggregates are never exposed.
    if aborted.load(Ordering::Relaxed) {
        return Err(TimedOut);
    }

    // Phase 4: merge. Integer-only aggregates merge directly; observable
    // runs replay the strided per-worker summation order first.
    let aggregate_started = Instant::now();
    let aggregate_span = trace::span("aggregate");
    let partials: Vec<Option<WorkerPartial>> = if keep_records {
        let mut records: Vec<Option<(ShotSample, Vec<f64>)>> = Vec::new();
        records.resize_with(shots, || None);
        for sink in sinks {
            let Sink::Records(list) = sink else {
                unreachable!("observable runs keep records")
            };
            for (shot, sample, values) in list {
                let slot = &mut records[shot as usize];
                debug_assert!(slot.is_none(), "shot {shot} recorded twice");
                *slot = Some((sample, values));
            }
        }
        (0..threads)
            .map(|worker| {
                let mut partial = WorkerPartial::new(observables.len());
                let mut shot = worker;
                while shot < shots {
                    let (sample, values) = records[shot]
                        .as_ref()
                        .expect("every shot is covered by exactly one work item");
                    partial.record(
                        sample.outcome,
                        sample.error_events,
                        sample.dd_nodes,
                        sample.dd_nodes_peak,
                        values,
                    );
                    shot += threads;
                }
                Some(partial)
            })
            .collect()
    } else {
        sinks
            .into_iter()
            .map(|sink| {
                let Sink::Partial(partial) = sink else {
                    unreachable!("observable-free runs aggregate in place")
                };
                Some(partial)
            })
            .collect()
    };
    let mut outcome = merge_partials(partials, shots, observables.len(), threads, started);
    drop(aggregate_span);
    outcome.dedup = Some(DedupStats {
        unique_trajectories,
        live_shots,
    });
    outcome
        .stage_timings
        .record(qsdd_telemetry::Stage::Presample, presample_time);
    outcome
        .stage_timings
        .record(qsdd_telemetry::Stage::Execute, execute_time);
    outcome.stage_timings.record(
        qsdd_telemetry::Stage::Aggregate,
        aggregate_started.elapsed(),
    );
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_noise::{ErrorChannel, ErrorKind, SiteChannel};

    #[test]
    fn plan_shots_groups_identical_patterns() {
        // One certain phase flip site: every shot draws the same pattern.
        let plan = PresamplePlan::new(vec![SiteChannel::Passive(ErrorChannel::new(
            ErrorKind::PhaseFlip,
            1.0,
        ))]);
        let (work, live) = plan_shots(&plan, 100, 4, 7);
        assert_eq!(live, 0);
        assert_eq!(work.len(), 1, "identical patterns must share one group");
        let Work::Group { pattern, shots } = &work[0] else {
            panic!("expected a group");
        };
        assert_eq!(pattern.error_events(), 1);
        assert_eq!(shots.len(), 100);
        // Members are recorded in shot order.
        assert!(shots.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn plan_shots_sends_decayed_shots_live() {
        let plan = PresamplePlan::new(vec![SiteChannel::Damping { p_decay: 1.0 }]);
        let (work, live) = plan_shots(&plan, 10, 2, 7);
        assert_eq!(live, 10);
        assert_eq!(work.len(), 10);
        assert!(work.iter().all(|w| matches!(w, Work::Live(_))));
    }

    #[test]
    fn dedup_stats_default_to_zero() {
        let stats = DedupStats::default();
        assert_eq!(stats.unique_trajectories, 0);
        assert_eq!(stats.live_shots, 0);
    }
}
