//! The back-end abstraction shared by the stochastic simulators.
//!
//! A back-end knows how to execute *one* stochastic run of a circuit under a
//! noise model (Section III of the paper) and how to evaluate quadratic
//! observables on the resulting pure state. The Monte-Carlo runner in
//! [`crate::stochastic`] drives any back-end concurrently; the paper's
//! contribution is the decision-diagram back-end, the dense statevector
//! back-end reproduces the baseline simulators.

use qsdd_circuit::Circuit;
use qsdd_noise::NoiseModel;
use rand::rngs::StdRng;

use crate::estimator::Observable;

/// The result of a single stochastic simulation run.
#[derive(Clone, Debug)]
pub struct SingleRun<S> {
    /// The sampled measurement outcome as a basis-state index.
    ///
    /// If the circuit contains explicit measurements, the outcome packs the
    /// classical register (classical bit 0 is the most significant bit);
    /// otherwise every qubit of the final state is sampled once.
    pub outcome: u64,
    /// The classical register after the run.
    pub clbits: Vec<bool>,
    /// Number of stochastic error events that fired during the run.
    pub error_events: usize,
    /// The final pure state of the run (back-end specific representation).
    pub state: S,
}

/// A simulation engine that can produce independent stochastic runs.
///
/// Implementations must be [`Sync`]: the Monte-Carlo runner shares one
/// back-end instance across worker threads, and every run receives its own
/// random number generator.
pub trait StochasticBackend: Sync {
    /// Back-end specific representation of the final pure state of a run.
    type State;

    /// Human-readable name used in benchmark reports.
    fn name(&self) -> &'static str;

    /// Executes one stochastic run of `circuit` under `noise`.
    fn run_once(
        &self,
        circuit: &Circuit,
        noise: &NoiseModel,
        rng: &mut StdRng,
    ) -> SingleRun<Self::State>;

    /// Evaluates a quadratic observable `|<omega|psi>|^2`-style property on
    /// the final state of a run.
    ///
    /// Takes the run mutably because some back-ends fill internal caches
    /// (e.g. interned complex values) while evaluating.
    fn evaluate(&self, run: &mut SingleRun<Self::State>, observable: &Observable) -> f64;
}

/// Packs a classical register into a basis index (bit 0 of the register is
/// the most significant bit of the index).
pub(crate) fn pack_clbits(clbits: &[bool]) -> u64 {
    clbits
        .iter()
        .fold(0u64, |acc, &bit| (acc << 1) | u64::from(bit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_clbits_uses_bit0_as_msb() {
        assert_eq!(pack_clbits(&[true, false]), 0b10);
        assert_eq!(pack_clbits(&[false, true, true]), 0b011);
        assert_eq!(pack_clbits(&[]), 0);
    }
}
