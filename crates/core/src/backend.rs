//! The back-end abstraction shared by the stochastic simulators.
//!
//! Shot execution is split into two phases (the prepare-once / execute-many
//! architecture that makes the paper's "shots are i.i.d. and embarrassingly
//! parallel" observation actually pay off):
//!
//! 1. **Compile** ([`StochasticBackend::compile`]): everything that depends
//!    only on the circuit and the noise model — gate matrices, controlled-op
//!    and swap operator diagrams, noise-channel operator tables — is
//!    resolved once into an immutable [`StochasticBackend::Program`].
//! 2. **Execute** ([`StochasticBackend::run_shot`]): each shot replays the
//!    program against a mutable per-worker [`StochasticBackend::Context`]
//!    (scratch state, reusable arenas). Contexts are rewound, not rebuilt,
//!    between shots, so the per-circuit work is amortised over the whole
//!    shot loop.
//!
//! Reuse is an optimisation, never an observable: a shot executed in a
//! reused context is bit-identical to the same shot executed in a freshly
//! created context, for every seed and shot index. The Monte-Carlo runner in
//! [`crate::stochastic`] drives any back-end concurrently by sharing the
//! program across workers and giving each worker its own context; the
//! paper's contribution is the decision-diagram back-end, the dense
//! statevector back-end reproduces the baseline simulators.

use std::sync::atomic::{AtomicU64, Ordering};

use qsdd_circuit::Circuit;
use qsdd_noise::{ErrorPattern, NoiseModel};
use rand::rngs::StdRng;

use crate::dedup::DedupSupport;
use crate::estimator::Observable;

/// The result of a single stochastic simulation run.
#[derive(Clone, Debug)]
pub struct SingleRun<S> {
    /// The sampled measurement outcome as a basis-state index.
    ///
    /// If the circuit contains explicit measurements, the outcome packs the
    /// classical register (classical bit 0 is the most significant bit);
    /// otherwise every qubit of the final state is sampled once.
    pub outcome: u64,
    /// The classical register after the run.
    pub clbits: Vec<bool>,
    /// Number of stochastic error events that fired during the run.
    pub error_events: usize,
    /// Node count of the final state's decision diagram (`0` on back-ends
    /// without a diagram representation).
    pub dd_nodes: u64,
    /// Peak node count the state diagram reached at any point during the
    /// run (`0` on back-ends without a diagram representation).
    pub dd_nodes_peak: u64,
    /// Back-end specific handle to the final pure state of the run.
    ///
    /// The handle may borrow storage owned by the context the shot ran in
    /// (e.g. decision diagram nodes); it is only meaningful until that
    /// context executes its next shot.
    pub state: S,
}

/// A simulation engine that can produce independent stochastic runs.
///
/// Implementations must be [`Sync`]: the Monte-Carlo runner shares one
/// back-end instance (and one compiled program) across worker threads; every
/// worker owns a private context and every run receives its own random
/// number generator.
pub trait StochasticBackend: Sync {
    /// Back-end specific handle to the final pure state of a run (see
    /// [`SingleRun::state`]).
    type State;

    /// The compiled, immutable form of one circuit + noise model pair.
    ///
    /// Programs are shared across worker threads by reference.
    type Program: Send + Sync;

    /// Reusable per-worker scratch state (arenas, amplitude buffers).
    type Context: Send;

    /// Human-readable name used in benchmark reports.
    fn name(&self) -> &'static str;

    /// Phase 1: resolves `circuit` under `noise` into an executable program,
    /// performing all per-circuit work (operator construction, noise table
    /// resolution) exactly once.
    fn compile(&self, circuit: &Circuit, noise: &NoiseModel) -> Self::Program;

    /// Creates an empty execution context.
    ///
    /// A context is lazily seated onto whatever program it first executes
    /// and re-seats itself when handed a different program, so one
    /// long-lived context per worker serves any sequence of programs of
    /// this back-end.
    fn new_context(&self) -> Self::Context;

    /// Installs (or clears) a fork-join pool for *intra-shot* parallelism
    /// on a context: back-ends that support it split the work of a single
    /// shot (diagram cofactor recursions, dense kernel chunks) across the
    /// pool's threads. Results must stay bit-identical to serial
    /// execution. The default is a no-op, which keeps back-ends without
    /// intra-shot parallelism correct.
    fn set_intra_pool(
        &self,
        _ctx: &mut Self::Context,
        _pool: Option<std::sync::Arc<qsdd_dd::IntraPool>>,
    ) {
    }

    /// Phase 2: executes one stochastic shot of `program` in `ctx`.
    ///
    /// The context is rewound at shot entry; any state left over from a
    /// previous shot (of this or another program) is invalidated first, so
    /// the result is bit-identical to running the shot in a fresh context.
    fn run_shot(
        &self,
        program: &Self::Program,
        ctx: &mut Self::Context,
        rng: &mut StdRng,
    ) -> SingleRun<Self::State>;

    /// Evaluates a quadratic observable `|<omega|psi>|^2`-style property on
    /// the final state of a run.
    ///
    /// Must be called with the context the run executed in, *before* that
    /// context runs its next shot (the run's state may live in the
    /// context). Takes the context mutably because some back-ends fill
    /// internal caches (e.g. interned complex values) while evaluating.
    fn evaluate(
        &self,
        program: &Self::Program,
        ctx: &mut Self::Context,
        run: &mut SingleRun<Self::State>,
        observable: &Observable,
    ) -> f64;

    /// Describes how `program` supports trajectory deduplication, or `None`
    /// when every shot must execute live.
    ///
    /// A supporting back-end returns the presample plan over the program's
    /// deduplicable prefix (see [`crate::dedup`]); the deduplicating runner
    /// then presamples shots against it, groups equal patterns, and drives
    /// [`run_pattern`](Self::run_pattern) /
    /// [`sample_outcome`](Self::sample_outcome) /
    /// [`resume_pattern`](Self::resume_pattern). The default declines, which
    /// keeps every existing back-end correct on the ordinary per-shot path.
    fn dedup_support(&self, _program: &Self::Program) -> Option<DedupSupport> {
        None
    }

    /// Executes the deduplicable prefix of `program` under a presampled
    /// error pattern (no randomness is consumed — every decision comes from
    /// the pattern).
    ///
    /// The returned run's state, error count and node statistics are those
    /// every member shot of the pattern's group would have reached at the
    /// end of the prefix; its `outcome` is unspecified (each member samples
    /// its own). Only called when [`dedup_support`](Self::dedup_support)
    /// returned `Some` for the program.
    fn run_pattern(
        &self,
        _program: &Self::Program,
        _ctx: &mut Self::Context,
        _pattern: &ErrorPattern,
    ) -> SingleRun<Self::State> {
        unreachable!("dedup_support declined; run_pattern must not be called")
    }

    /// Samples one member shot's measurement outcome from a completed
    /// full-program pattern run.
    ///
    /// `rng` is the member's generator, positioned exactly after the
    /// presampled exposures (the presampler consumed the stream like live
    /// execution). Only called when the program's [`DedupSupport::full`] is
    /// `true`.
    fn sample_outcome(
        &self,
        _program: &Self::Program,
        _ctx: &mut Self::Context,
        _run: &SingleRun<Self::State>,
        _rng: &mut StdRng,
    ) -> u64 {
        unreachable!("dedup_support declined; sample_outcome must not be called")
    }

    /// Samples every member shot of a full-program pattern group, feeding
    /// `(shot index, outcome)` pairs into `sink`.
    ///
    /// Semantically exactly a loop over
    /// [`sample_outcome`](Self::sample_outcome); back-ends may override it
    /// to hoist per-state preparation (e.g. a flattened sampling plan) out
    /// of the member loop, which is the hottest loop of a deduplicated run.
    fn sample_outcomes(
        &self,
        program: &Self::Program,
        ctx: &mut Self::Context,
        run: &SingleRun<Self::State>,
        shots: &mut [(u64, StdRng)],
        mut sink: impl FnMut(u64, u64),
    ) {
        for (shot, rng) in shots.iter_mut() {
            sink(*shot, self.sample_outcome(program, ctx, run, rng));
        }
    }

    /// Feeds the exact measurement-outcome distribution of a completed
    /// full-program pattern run into `sink` as `(outcome, probability)`
    /// pairs, one per basis state with non-zero probability.
    ///
    /// This is the weighted-enumeration counterpart of
    /// [`sample_outcomes`](Self::sample_outcomes): instead of sampling
    /// member shots from the final state, the caller takes the whole
    /// distribution and scales it by the pattern's probability. Must be
    /// called with the context the run executed in, before that context
    /// runs its next shot. Only called when the program's
    /// [`DedupSupport::full`] is `true`.
    fn outcome_distribution(
        &self,
        _program: &Self::Program,
        _ctx: &mut Self::Context,
        _run: &SingleRun<Self::State>,
        _sink: &mut dyn FnMut(u64, f64),
    ) {
        unreachable!("dedup_support declined; outcome_distribution must not be called")
    }

    /// Resumes one member shot live from a checkpointed prefix run.
    ///
    /// `checkpoint` is the context [`run_pattern`](Self::run_pattern)
    /// executed in — it must be left untouched so further members can
    /// resume from it; the member executes the remaining program steps in
    /// `work` (typically seeded from a clone of the checkpoint) with its
    /// own generator. Only called when the program's [`DedupSupport::full`]
    /// is `false`.
    fn resume_pattern(
        &self,
        _program: &Self::Program,
        _checkpoint: &Self::Context,
        _prefix: &SingleRun<Self::State>,
        _work: &mut Self::Context,
        _rng: &mut StdRng,
    ) -> SingleRun<Self::State> {
        unreachable!("dedup_support declined; resume_pattern must not be called")
    }

    /// Convenience single-shot path: compiles `circuit`, creates a fresh
    /// context and executes one shot in it.
    ///
    /// Every call pays the full compile phase (operator resolution, and
    /// for the DD back-end the no-error trajectory precompute), so this is
    /// strictly a convenience — hot loops should compile once and reuse a
    /// context via [`run_shot`](Self::run_shot) instead.
    ///
    /// **Caveat:** the context is dropped on return, so for back-ends
    /// whose [`SingleRun::state`] handle borrows context storage (the
    /// decision-diagram back-end) the returned `state` must not be
    /// dereferenced or passed to [`evaluate`](Self::evaluate); use
    /// `compile` + `run_shot` with a context you keep, or
    /// a self-contained path like `DdSimulator::simulate_noiseless`, when
    /// the final state matters.
    fn run_once(
        &self,
        circuit: &Circuit,
        noise: &NoiseModel,
        rng: &mut StdRng,
    ) -> SingleRun<Self::State> {
        let program = self.compile(circuit, noise);
        let mut ctx = self.new_context();
        self.run_shot(&program, &mut ctx, rng)
    }
}

/// Hands out process-unique program identifiers, so execution contexts can
/// detect whether they are already seated on the program they are asked to
/// run (reuse) or must re-seat (program switch).
pub(crate) fn next_program_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Packs a classical register into a basis index (bit 0 of the register is
/// the most significant bit of the index).
pub(crate) fn pack_clbits(clbits: &[bool]) -> u64 {
    clbits
        .iter()
        .fold(0u64, |acc, &bit| (acc << 1) | u64::from(bit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_clbits_uses_bit0_as_msb() {
        assert_eq!(pack_clbits(&[true, false]), 0b10);
        assert_eq!(pack_clbits(&[false, true, true]), 0b011);
        assert_eq!(pack_clbits(&[]), 0);
    }

    #[test]
    fn program_ids_are_unique_and_nonzero() {
        let a = next_program_id();
        let b = next_program_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
