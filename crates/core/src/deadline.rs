//! Cooperative job deadlines.
//!
//! A [`Deadline`] is a wall-clock budget shared by every worker of one
//! simulation. The drivers check it at natural boundaries — per shot, per
//! trajectory group, per enumerated pattern, per tail candidate — and bail
//! out with [`TimedOut`] instead of finishing, so a runaway job releases
//! its worker within one trajectory's wall time rather than holding it for
//! the whole shot count. Checks are *cooperative*: nothing is interrupted
//! mid-trajectory, which keeps every context reusable after a timeout.
//!
//! The default [`Deadline::unbounded`] never expires and costs one relaxed
//! atomic load per check, so the ordinary no-timeout paths are unaffected.
//! Expiry is **latched**: the first worker to observe the clock past the
//! deadline flips a shared flag, and every other worker exits on its next
//! check without touching the clock again.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The error a deadline-aware driver returns when its budget ran out
/// before the simulation finished. Carries no partial results: a timed-out
/// job's aggregates would not be a pure function of its inputs, so none
/// are exposed.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct TimedOut;

impl std::fmt::Display for TimedOut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "timed_out")
    }
}

impl std::error::Error for TimedOut {}

/// A shareable wall-clock budget (see the module docs).
///
/// Cloning shares the latch: clones handed to worker threads all observe
/// the same expiry.
#[derive(Clone, Debug)]
pub struct Deadline {
    at: Option<Instant>,
    cancelled: Arc<AtomicBool>,
}

impl Deadline {
    /// A deadline that never expires (the default for every existing API).
    pub fn unbounded() -> Deadline {
        Deadline {
            at: None,
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Deadline {
        Deadline {
            at: Instant::now().checked_add(budget),
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A deadline `ms` milliseconds from now — the wire-format constructor
    /// (`timeout_ms` job fields, `--timeout` flags).
    pub fn from_millis(ms: u64) -> Deadline {
        Deadline::within(Duration::from_millis(ms))
    }

    /// Whether this deadline can ever expire. Drivers hoist this out of
    /// their hot loops so unbounded runs skip even the clock read.
    pub fn is_unbounded(&self) -> bool {
        self.at.is_none()
    }

    /// Whether the budget has run out. Once true, stays true (the latch is
    /// shared across clones, so one worker's observation cancels all).
    pub fn expired(&self) -> bool {
        if self.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.at {
            Some(at) if Instant::now() >= at => {
                self.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

impl Default for Deadline {
    fn default() -> Deadline {
        Deadline::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_deadlines_never_expire() {
        let deadline = Deadline::unbounded();
        assert!(deadline.is_unbounded());
        assert!(!deadline.expired());
        assert!(!deadline.expired());
    }

    #[test]
    fn bounded_deadlines_expire_and_latch() {
        let deadline = Deadline::within(Duration::ZERO);
        assert!(!deadline.is_unbounded());
        assert!(deadline.expired());
        // Latched: still expired without consulting the clock.
        assert!(deadline.expired());
    }

    #[test]
    fn clones_share_the_latch() {
        let deadline = Deadline::within(Duration::ZERO);
        let clone = deadline.clone();
        assert!(deadline.expired());
        // The clone sees the latch via the shared flag (its own clock check
        // would agree here, but the flag is what multi-worker exits ride on).
        assert!(clone.cancelled.load(Ordering::Relaxed));
        assert!(clone.expired());
    }

    #[test]
    fn generous_deadlines_do_not_expire_immediately() {
        let deadline = Deadline::from_millis(60_000);
        assert!(!deadline.expired());
    }

    #[test]
    fn timed_out_displays_its_wire_reason() {
        assert_eq!(TimedOut.to_string(), "timed_out");
    }
}
