//! The concurrent Monte-Carlo runner.
//!
//! Stochastic quantum circuit simulation needs many independent runs to form
//! accurate empirical averages (Theorem 1). Because the runs are i.i.d.,
//! they parallelise perfectly: the runner compiles the circuit **once**
//! (resolving every operator the shots will need), partitions the requested
//! shot count over worker threads, hands each worker one reusable execution
//! context (rewound, not rebuilt, between shots), gives every *shot* its
//! own deterministically derived random number generator (so results do not
//! depend on the thread count), and merges the per-worker histograms and
//! observable sums in worker order at the end. This is the "concurrency
//! across simulation runs" idea of Section IV-C of the paper, with the
//! per-circuit work amortised across the whole shot loop.
//!
//! # Determinism
//!
//! * Histograms and error counts are identical for every thread count (shot
//!   `i` depends on the master seed and `i` alone; integer merges are
//!   order-independent).
//! * Observable estimates are floating-point sums, so their *low bits*
//!   depend on the summation grouping and therefore on the thread count —
//!   but for a **fixed** thread count they are bit-stable: partial sums are
//!   merged in worker-index order, never in completion order.
//! * Context reuse never affects any of the above: a reused context
//!   produces bit-identical shots to a fresh one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use qsdd_circuit::Circuit;
use qsdd_noise::NoiseModel;
use qsdd_telemetry::trace;
use qsdd_telemetry::{Stage, StageTimings};
use rand::rngs::StdRng;
use rand::SeedableRng;

use std::sync::Arc;

use qsdd_dd::IntraPool;

use crate::backend::StochasticBackend;
use crate::deadline::{Deadline, TimedOut};
use crate::dedup::{run_dedup, DedupStats};
use crate::estimator::{Observable, ObservableAccumulator};
use crate::shot_engine::ShotEngine;

/// Configuration of a stochastic simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct StochasticConfig {
    /// Number of independent simulation runs (samples).
    pub shots: usize,
    /// Number of worker threads; `0` uses the machine's available
    /// parallelism.
    pub threads: usize,
    /// Master seed; every shot derives its own generator from it, so results
    /// are reproducible and independent of the thread count.
    pub seed: u64,
    /// The noise model applied after every gate.
    pub noise: NoiseModel,
    /// Whether to deduplicate shots by presampled error pattern (see
    /// [`crate::dedup`]). On by default; results are byte-identical either
    /// way, so turning it off is only useful for benchmarking the per-shot
    /// path.
    pub dedup: bool,
    /// When set, runs the weighted-enumeration driver (see
    /// [`crate::weighted`]): error patterns are enumerated in probability
    /// order and their outcome distributions weighted exactly, with
    /// rejection-sampled shots covering only the residual mass. Falls back
    /// to the configured sampling path when the program does not support
    /// enumeration.
    pub weighted: Option<crate::weighted::WeightedOptions>,
    /// Intra-shot parallelism width: the number of fork-join workers every
    /// shot's own execution (diagram operations, dense kernels) may split
    /// across. `1` (the default) keeps shots serial. The request is clamped
    /// against the shot-worker count so the two levels of parallelism never
    /// oversubscribe the machine; results are bit-identical for every
    /// setting.
    pub intra_threads: usize,
}

impl StochasticConfig {
    /// A configuration with the paper's noise model and a given shot count.
    pub fn new(shots: usize) -> Self {
        StochasticConfig {
            shots,
            threads: 0,
            seed: 0xD1CE_5EED,
            noise: NoiseModel::paper_defaults(),
            dedup: true,
            weighted: None,
            intra_threads: 1,
        }
    }

    /// Sets the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the noise model.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Enables or disables trajectory deduplication.
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Enables the weighted-enumeration driver with the given options
    /// (see [`crate::weighted`]).
    pub fn with_weighted(mut self, options: crate::weighted::WeightedOptions) -> Self {
        self.weighted = Some(options);
        self
    }

    /// Sets the intra-shot parallelism width (`1` = serial shots).
    pub fn with_intra_threads(mut self, intra_threads: usize) -> Self {
        self.intra_threads = intra_threads.max(1);
        self
    }

    /// Resolves the effective number of worker threads.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

impl Default for StochasticConfig {
    fn default() -> Self {
        StochasticConfig::new(1024)
    }
}

/// Resolves a requested intra-shot width against the shot-worker count.
///
/// A single shot-worker gets the request as-is; with several workers the
/// request is clamped to the cores left over per worker (`cores /
/// workers`, floored at 1), so inter-shot and intra-shot parallelism
/// together never oversubscribe the machine.
pub fn resolve_intra_threads(requested: usize, workers: usize) -> usize {
    let requested = requested.max(1);
    if requested == 1 || workers <= 1 {
        return requested;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    requested.min((cores / workers).max(1))
}

/// Builds the shared fork-join pool of a run — every shot-worker installs a
/// clone — or `None` when the resolved width stays serial.
pub fn build_intra_pool(requested: usize, workers: usize) -> Option<Arc<IntraPool>> {
    let resolved = resolve_intra_threads(requested, workers);
    (resolved > 1).then(|| Arc::new(IntraPool::new(resolved)))
}

/// Aggregated result of a stochastic simulation.
#[derive(Clone, Debug)]
pub struct StochasticOutcome {
    /// Histogram of measurement outcomes (basis index -> count).
    pub counts: HashMap<u64, u64>,
    /// Number of runs performed.
    pub shots: usize,
    /// Monte-Carlo estimates of the requested observables (same order as the
    /// request).
    pub observable_estimates: Vec<f64>,
    /// Total number of stochastic error events over all runs.
    pub error_events: u64,
    /// Mean decision-diagram node count of the final per-shot states
    /// (`0.0` on the dense statevector back-end).
    pub dd_nodes_avg: f64,
    /// Peak decision-diagram node count reached at any point in any shot —
    /// the memory high-water mark of the whole simulation (`0` on the dense
    /// back-end).
    pub dd_nodes_peak: u64,
    /// Wall-clock time of the whole simulation.
    pub wall_time: Duration,
    /// Resolved worker-thread count of the run. For `shots > 0` this is the
    /// number of workers actually spawned (capped at the shot count); a
    /// zero-shot run spawns no workers but still reports the resolved
    /// configuration.
    pub threads: usize,
    /// Trajectory-deduplication statistics; `None` when the run executed on
    /// the ordinary per-shot path (deduplication disabled, or the program
    /// does not support it).
    pub dedup: Option<DedupStats>,
    /// Weighted-enumeration statistics; `None` when the run sampled shots
    /// instead of enumerating trajectories (see [`crate::weighted`]). When
    /// set, [`counts`](Self::counts) is an integer rendering of the exact
    /// [`WeightedStats::distribution`](crate::weighted::WeightedStats).
    pub weighted: Option<crate::weighted::WeightedStats>,
    /// Wall-time breakdown by pipeline stage (transpile, compile,
    /// presample, group, execute, aggregate). Always filled — reading a
    /// few `Instant`s per *job* costs nothing measurable — so callers can
    /// render a profile without enabling global telemetry.
    pub stage_timings: StageTimings,
}

impl StochasticOutcome {
    /// An empty outcome (zero shots) reporting the given thread count.
    fn empty(observables: usize, threads: usize, wall_time: Duration) -> Self {
        StochasticOutcome {
            counts: HashMap::new(),
            shots: 0,
            observable_estimates: vec![0.0; observables],
            error_events: 0,
            dd_nodes_avg: 0.0,
            dd_nodes_peak: 0,
            wall_time,
            threads,
            dedup: None,
            weighted: None,
            stage_timings: StageTimings::new(),
        }
    }

    /// Relative frequency of a measurement outcome.
    pub fn frequency(&self, outcome: u64) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        *self.counts.get(&outcome).unwrap_or(&0) as f64 / self.shots as f64
    }

    /// The most frequent measurement outcome, if any run was performed.
    ///
    /// Ties are broken deterministically in favour of the smallest outcome
    /// index (hash-map iteration order must not leak into results).
    pub fn most_frequent(&self) -> Option<u64> {
        self.counts
            .iter()
            .max_by_key(|(&outcome, &count)| (count, std::cmp::Reverse(outcome)))
            .map(|(&outcome, _)| outcome)
    }

    /// Average number of error events per run.
    pub fn error_rate(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        self.error_events as f64 / self.shots as f64
    }

    /// Fraction of shots served from another shot's trajectory
    /// (`1 - unique_trajectories / shots`); `0.0` on the per-shot path.
    pub fn dedup_hit_rate(&self) -> f64 {
        match &self.dedup {
            Some(stats) if self.shots > 0 => {
                1.0 - stats.unique_trajectories as f64 / self.shots as f64
            }
            _ => 0.0,
        }
    }
}

/// Everything one worker accumulated over its strided share of the shots.
///
/// Also replayed by the deduplicating runner ([`crate::dedup`]) to
/// reproduce this module's exact per-worker summation order. The local
/// histogram uses the fast in-process hasher (one entry per shot is the
/// single hottest map operation of the loop); the merged result is
/// converted to the outcome's ordinary map.
pub(crate) struct WorkerPartial {
    counts: crate::fxhash::FxHashMap<u64, u64>,
    observables: ObservableAccumulator,
    errors: u64,
    nodes_sum: u64,
    nodes_peak: u64,
}

impl WorkerPartial {
    pub(crate) fn new(observables: usize) -> Self {
        WorkerPartial {
            counts: crate::fxhash::FxHashMap::default(),
            observables: ObservableAccumulator::new(observables),
            errors: 0,
            nodes_sum: 0,
            nodes_peak: 0,
        }
    }

    pub(crate) fn record(
        &mut self,
        outcome: u64,
        errors: u64,
        nodes: u64,
        peak: u64,
        values: &[f64],
    ) {
        *self.counts.entry(outcome).or_insert(0) += 1;
        self.errors += errors;
        self.nodes_sum += nodes;
        self.nodes_peak = self.nodes_peak.max(peak);
        if !values.is_empty() {
            self.observables.add(values);
        }
    }
}

/// Merges per-worker partials **in worker-index order** (bit-stable
/// floating-point sums for a fixed thread count) into an outcome.
pub(crate) fn merge_partials(
    partials: Vec<Option<WorkerPartial>>,
    shots: usize,
    observables: usize,
    threads: usize,
    started: Instant,
) -> StochasticOutcome {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    let mut merged = ObservableAccumulator::new(observables);
    let mut errors = 0u64;
    let mut nodes_sum = 0u64;
    let mut nodes_peak = 0u64;
    for partial in partials.into_iter().flatten() {
        for (outcome, count) in partial.counts {
            *counts.entry(outcome).or_insert(0) += count;
        }
        merged.merge(&partial.observables);
        errors += partial.errors;
        nodes_sum += partial.nodes_sum;
        nodes_peak = nodes_peak.max(partial.nodes_peak);
    }
    StochasticOutcome {
        counts,
        shots,
        observable_estimates: merged.means(),
        error_events: errors,
        dd_nodes_avg: if shots == 0 {
            0.0
        } else {
            nodes_sum as f64 / shots as f64
        },
        dd_nodes_peak: nodes_peak,
        wall_time: started.elapsed(),
        threads,
        dedup: None,
        weighted: None,
        stage_timings: StageTimings::new(),
    }
}

/// Runs `config.shots` independent stochastic simulations of `circuit` on
/// `backend`, estimating the given observables along the way.
///
/// The circuit is compiled once ([`StochasticBackend::compile`]); shots are
/// distributed over worker threads ([`StochasticConfig::threads`]), each
/// worker executing its strided share through one reusable context. Every
/// shot uses a random number generator derived deterministically from the
/// master seed and the shot index, so the histogram is independent of how
/// shots are assigned to threads.
///
/// When [`StochasticConfig::dedup`] is on (the default) and the compiled
/// program supports it, shots are deduplicated by presampled error pattern
/// (see [`crate::dedup`]): each distinct trajectory is simulated once and
/// fanned out over its shots. The results — histograms, error counts, node
/// statistics and the bit patterns of the observable sums — are identical
/// either way.
pub fn run_stochastic<B: StochasticBackend>(
    backend: &B,
    circuit: &Circuit,
    config: &StochasticConfig,
    observables: &[Observable],
) -> StochasticOutcome {
    let started = Instant::now();
    if config.shots == 0 {
        // Nothing to run: return an empty outcome without spawning workers,
        // still reporting the resolved worker count for consistency.
        return StochasticOutcome::empty(
            observables.len(),
            config.effective_threads(),
            started.elapsed(),
        );
    }
    let compile_started = Instant::now();
    let program = backend.compile(circuit, &config.noise);
    let compile_time = compile_started.elapsed();
    let threads = config.effective_threads().max(1).min(config.shots);
    let intra = build_intra_pool(config.intra_threads, threads);
    if config.dedup {
        if let Some(support) = backend.dedup_support(&program) {
            let mut outcome = run_dedup(
                backend,
                &program,
                &support,
                config.shots,
                threads,
                config.seed,
                observables,
                None,
                intra.as_ref(),
                started,
                &Deadline::unbounded(),
            )
            .expect("an unbounded deadline never expires");
            outcome.stage_timings.record(Stage::Compile, compile_time);
            if intra.is_some() {
                let execute_time = outcome.stage_timings.get(Stage::Execute);
                outcome
                    .stage_timings
                    .record(Stage::IntraExecute, execute_time);
            }
            return outcome;
        }
    }
    let mut partials: Vec<Option<WorkerPartial>> = (0..threads).map(|_| None).collect();
    let execute_started = Instant::now();

    let trace_handle = trace::propagate();
    std::thread::scope(|scope| {
        for (worker, slot) in partials.iter_mut().enumerate() {
            let program = &program;
            let observables = &observables;
            let config = &config;
            let intra = intra.as_ref();
            let trace_handle = trace_handle.clone();
            scope.spawn(move || {
                let _lane = trace_handle.as_ref().map(|h| h.install(worker as u32 + 1));
                let _span = trace::span("worker_shots");
                trace::attr("worker", worker);
                let mut ctx = backend.new_context();
                if let Some(pool) = intra {
                    backend.set_intra_pool(&mut ctx, Some(Arc::clone(pool)));
                }
                let mut partial = WorkerPartial::new(observables.len());
                let mut executed = 0usize;
                let mut shot = worker;
                while shot < config.shots {
                    let mut rng = shot_rng(config.seed, shot as u64);
                    let mut run = backend.run_shot(program, &mut ctx, &mut rng);
                    let values: Vec<f64> = observables
                        .iter()
                        .map(|o| backend.evaluate(program, &mut ctx, &mut run, o))
                        .collect();
                    partial.record(
                        run.outcome,
                        run.error_events as u64,
                        run.dd_nodes,
                        run.dd_nodes_peak,
                        &values,
                    );
                    executed += 1;
                    shot += threads;
                }
                trace::attr("shots", executed);
                *slot = Some(partial);
            });
        }
    });
    let execute_time = execute_started.elapsed();

    let aggregate_started = Instant::now();
    let mut outcome = merge_partials(partials, config.shots, observables.len(), threads, started);
    outcome.stage_timings.record(Stage::Compile, compile_time);
    outcome.stage_timings.record(Stage::Execute, execute_time);
    if intra.is_some() {
        outcome
            .stage_timings
            .record(Stage::IntraExecute, execute_time);
    }
    outcome
        .stage_timings
        .record(Stage::Aggregate, aggregate_started.elapsed());
    outcome
}

/// Runs `shots` independent stochastic shots on a prepared [`ShotEngine`],
/// estimating the given observables along the way.
///
/// This is the engine-driven twin of [`run_stochastic`]: the same strided
/// shot loop, but executing through the re-entrant [`ShotEngine`] API that
/// the batch scheduler shares, with one reusable
/// [`ExecContext`](crate::ExecContext) per worker. Observables are remapped
/// through the engine's output layout once, outcomes arrive already
/// restored to the original circuit's qubit order, so no post-processing is
/// required.
///
/// `threads == 0` uses all available cores. Histograms are identical for
/// every thread count because each shot derives its generator from the
/// engine seed and the shot index alone.
pub fn run_engine(
    engine: &ShotEngine,
    shots: usize,
    threads: usize,
    observables: &[Observable],
) -> StochasticOutcome {
    run_engine_deadline(engine, shots, threads, observables, &Deadline::unbounded())
        .expect("an unbounded deadline never expires")
}

/// [`run_engine`] under a cooperative [`Deadline`]: workers check the
/// budget before every shot and the run returns [`TimedOut`] — no partial
/// aggregates — when any worker observed expiry before finishing. With
/// [`Deadline::unbounded`] the check is a hoisted boolean, so this *is*
/// [`run_engine`].
pub fn run_engine_deadline(
    engine: &ShotEngine,
    shots: usize,
    threads: usize,
    observables: &[Observable],
    deadline: &Deadline,
) -> Result<StochasticOutcome, TimedOut> {
    let started = Instant::now();
    let threads = if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    if shots == 0 {
        // Nothing to run: return an empty outcome without spawning workers,
        // still reporting the resolved worker count for consistency.
        return Ok(StochasticOutcome::empty(
            observables.len(),
            threads,
            started.elapsed(),
        ));
    }
    let threads = threads.min(shots);
    let intra = build_intra_pool(engine.intra_threads(), threads);
    let mapped = engine.map_observables(observables);
    let mut partials: Vec<Option<WorkerPartial>> = (0..threads).map(|_| None).collect();
    let aborted = AtomicBool::new(false);

    let execute_started = Instant::now();
    let trace_handle = trace::propagate();
    std::thread::scope(|scope| {
        for (worker, slot) in partials.iter_mut().enumerate() {
            let mapped = &mapped;
            let intra = intra.as_ref();
            let aborted = &aborted;
            let trace_handle = trace_handle.clone();
            scope.spawn(move || {
                let _lane = trace_handle.as_ref().map(|h| h.install(worker as u32 + 1));
                let _span = trace::span("worker_shots");
                trace::attr("worker", worker);
                let mut ctx = engine.new_context();
                if let Some(pool) = intra {
                    ctx.set_intra_pool(Some(Arc::clone(pool)));
                }
                let bounded = !deadline.is_unbounded();
                let mut partial = WorkerPartial::new(mapped.len());
                let mut executed = 0usize;
                let mut shot = worker;
                while shot < shots {
                    if bounded && deadline.expired() {
                        // `expired` latched the shared flag, so sibling
                        // workers exit on their next check too.
                        aborted.store(true, Ordering::Relaxed);
                        return;
                    }
                    let (sample, values) =
                        engine.run_shot_with_observables_in(&mut ctx, shot as u64, mapped);
                    partial.record(
                        sample.outcome,
                        sample.error_events,
                        sample.dd_nodes,
                        sample.dd_nodes_peak,
                        &values,
                    );
                    executed += 1;
                    shot += threads;
                }
                trace::attr("shots", executed);
                *slot = Some(partial);
            });
        }
    });
    if aborted.load(Ordering::Relaxed) {
        return Err(TimedOut);
    }
    let execute_time = execute_started.elapsed();

    let aggregate_started = Instant::now();
    let mut outcome = merge_partials(partials, shots, observables.len(), threads, started);
    outcome.stage_timings = engine.stage_timings();
    outcome.stage_timings.record(Stage::Execute, execute_time);
    if intra.is_some() {
        outcome
            .stage_timings
            .record(Stage::IntraExecute, execute_time);
    }
    outcome
        .stage_timings
        .record(Stage::Aggregate, aggregate_started.elapsed());
    Ok(outcome)
}

/// The deduplicating twin of [`run_engine`]: shots are presampled and
/// grouped by error pattern, each distinct trajectory is simulated once,
/// and the results fan out per shot (see [`crate::dedup`]).
///
/// Falls back to [`run_engine`] when the engine's program does not support
/// deduplication (a state-dependent channel outside the precomputed
/// trajectory, or a dominating non-unitary tail). Results are byte-identical
/// to [`run_engine`] for every seed and thread count — including the bit
/// patterns of the observable sums — so callers may pick purely by
/// expected performance.
pub fn run_engine_dedup(
    engine: &ShotEngine,
    shots: usize,
    threads: usize,
    observables: &[Observable],
) -> StochasticOutcome {
    run_engine_dedup_deadline(engine, shots, threads, observables, &Deadline::unbounded())
        .expect("an unbounded deadline never expires")
}

/// [`run_engine_dedup`] under a cooperative [`Deadline`]: workers check
/// the budget between trajectory work items (one group or one live shot)
/// and the run returns [`TimedOut`] when it expired before completion.
/// The per-shot fallback inherits the same deadline.
pub fn run_engine_dedup_deadline(
    engine: &ShotEngine,
    shots: usize,
    threads: usize,
    observables: &[Observable],
    deadline: &Deadline,
) -> Result<StochasticOutcome, TimedOut> {
    let started = Instant::now();
    let resolved = if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    if shots == 0 {
        return Ok(StochasticOutcome::empty(
            observables.len(),
            resolved,
            started.elapsed(),
        ));
    }
    let workers = resolved.min(shots);
    let intra = build_intra_pool(engine.intra_threads(), workers);
    match engine.dedup_outcome(
        shots,
        workers,
        observables,
        intra.as_ref(),
        started,
        deadline,
    ) {
        Some(result) => result.map(|mut outcome| {
            outcome.stage_timings.merge(&engine.stage_timings());
            if intra.is_some() {
                let execute_time = outcome.stage_timings.get(Stage::Execute);
                outcome
                    .stage_timings
                    .record(Stage::IntraExecute, execute_time);
            }
            outcome
        }),
        None => run_engine_deadline(engine, shots, threads, observables, deadline),
    }
}

/// Runs a whole job — `shots` stochastic shots plus observable estimation —
/// **inside the caller's execution context**, on the calling thread.
///
/// This is the job-execution entry the long-lived `qsdd-server` worker pool
/// runs on: a worker owns one [`ExecContext`](crate::ExecContext) for its
/// whole lifetime and executes every job it picks up through this function,
/// so per-circuit state from previous jobs is rewound — not rebuilt — and
/// the PR-3 context-reuse path amortises across requests. Unlike
/// [`run_engine`] / [`run_engine_dedup`] it spawns no threads of its own;
/// callers that want parallelism run several jobs on several workers.
///
/// With `dedup` enabled (and supported by the engine's program) the
/// trajectory-deduplicating driver executes each distinct presampled error
/// pattern once (see [`crate::dedup`]); otherwise every shot runs live. The
/// result is **byte-identical** to `run_engine_dedup(engine, shots, 1,
/// observables)` respectively `run_engine(engine, shots, 1, observables)` —
/// histograms, error counts, node statistics, dedup statistics and the bit
/// patterns of the observable sums all match the single-threaded runner —
/// which is what lets the server's result cache serve byte-stable reports.
pub fn run_engine_in(
    engine: &ShotEngine,
    ctx: &mut crate::ExecContext,
    shots: usize,
    observables: &[Observable],
    dedup: bool,
) -> StochasticOutcome {
    run_engine_in_deadline(
        engine,
        ctx,
        shots,
        observables,
        dedup,
        &Deadline::unbounded(),
    )
    .expect("an unbounded deadline never expires")
}

/// [`run_engine_in`] under a cooperative [`Deadline`] — the server
/// worker-pool entry for jobs carrying a `timeout_ms`. The budget is
/// checked between shots (and between trajectory groups on the dedup
/// path); on expiry the job returns [`TimedOut`] with no partial results
/// and the context remains reusable for the next job.
pub fn run_engine_in_deadline(
    engine: &ShotEngine,
    ctx: &mut crate::ExecContext,
    shots: usize,
    observables: &[Observable],
    dedup: bool,
    deadline: &Deadline,
) -> Result<StochasticOutcome, TimedOut> {
    let started = Instant::now();
    if shots == 0 {
        return Ok(StochasticOutcome::empty(
            observables.len(),
            1,
            started.elapsed(),
        ));
    }
    let dd_before = ctx.dd_table_stats();
    let mapped = engine.map_observables(observables);
    let mut outcome = run_engine_in_inner(engine, ctx, shots, &mapped, dedup, started, deadline)?;
    outcome.stage_timings.merge(&engine.stage_timings());
    if ctx.intra_pool().is_some() {
        let execute_time = outcome.stage_timings.get(Stage::Execute);
        outcome
            .stage_timings
            .record(Stage::IntraExecute, execute_time);
    }
    publish_job_metrics(&outcome, ctx.dd_table_stats().since(&dd_before), ctx);
    Ok(outcome)
}

/// The timed body of [`run_engine_in`]: executes the shots and fills the
/// presample/execute/aggregate entries of the outcome's stage breakdown
/// (the engine's own transpile/compile times are merged by the caller).
fn run_engine_in_inner(
    engine: &ShotEngine,
    ctx: &mut crate::ExecContext,
    shots: usize,
    mapped: &[Observable],
    dedup: bool,
    started: Instant,
    deadline: &Deadline,
) -> Result<StochasticOutcome, TimedOut> {
    if dedup {
        let presample_started = Instant::now();
        let presample_span = trace::span("presample");
        let presampled = engine.presample_range(0..shots as u64);
        trace::attr("shots", shots);
        if let Some((groups, live)) = &presampled {
            trace::attr("groups", groups.len());
            trace::attr("live_shots", live.len());
        }
        drop(presample_span);
        let presample_time = presample_started.elapsed();
        if let Some((groups, live)) = presampled {
            let mut outcome =
                run_dedup_serial(engine, ctx, shots, mapped, groups, live, started, deadline)?;
            outcome
                .stage_timings
                .record(Stage::Presample, presample_time);
            return Ok(outcome);
        }
    }
    let bounded = !deadline.is_unbounded();
    let execute_started = Instant::now();
    let shots_span = trace::span(if ctx.intra_pool().is_some() {
        "intra_shots"
    } else {
        "shots"
    });
    trace::attr("shots", shots);
    if let Some(pool) = ctx.intra_pool() {
        trace::attr("intra_width", pool.threads());
    }
    let dd_before = trace_dd_stats(ctx);
    let mut partial = WorkerPartial::new(mapped.len());
    for shot in 0..shots as u64 {
        if bounded && deadline.expired() {
            return Err(TimedOut);
        }
        let (sample, values) = engine.run_shot_with_observables_in(ctx, shot, mapped);
        partial.record(
            sample.outcome,
            sample.error_events,
            sample.dd_nodes,
            sample.dd_nodes_peak,
            &values,
        );
    }
    trace_dd_attrs(ctx, dd_before);
    drop(shots_span);
    let execute_time = execute_started.elapsed();
    let aggregate_started = Instant::now();
    let mut outcome = merge_partials(vec![Some(partial)], shots, mapped.len(), 1, started);
    outcome.stage_timings.record(Stage::Execute, execute_time);
    outcome
        .stage_timings
        .record(Stage::Aggregate, aggregate_started.elapsed());
    Ok(outcome)
}

/// Snapshot of the context's decision-diagram table counters, taken only
/// when the calling thread is actively traced (the stats walk both
/// packages, so skip the work for un-traced runs).
pub(crate) fn trace_dd_stats(ctx: &crate::ExecContext) -> Option<qsdd_dd::TableStats> {
    trace::active().then(|| ctx.dd_table_stats())
}

/// Attaches the decision-diagram table-traffic delta since `before` to
/// the innermost open span (the per-group / per-loop node and table-hit
/// attributes the trace vocabulary promises).
pub(crate) fn trace_dd_attrs(ctx: &crate::ExecContext, before: Option<qsdd_dd::TableStats>) {
    if let Some(before) = before {
        let delta = ctx.dd_table_stats().since(&before);
        trace::attr("dd_compute_hits", delta.compute_hits);
        trace::attr("dd_compute_misses", delta.compute_misses);
        trace::attr(
            "dd_unique_hits",
            delta.vec_unique_hits + delta.mat_unique_hits,
        );
        trace::attr(
            "dd_unique_misses",
            delta.vec_unique_misses + delta.mat_unique_misses,
        );
    }
}

/// Publishes a finished job's stage timings and decision-diagram table
/// traffic to the global telemetry registry. A no-op while telemetry is
/// disabled — one relaxed atomic load — so the per-job cost off the
/// serving path is negligible.
pub(crate) fn publish_job_metrics(
    outcome: &StochasticOutcome,
    dd_delta: qsdd_dd::TableStats,
    ctx: &crate::ExecContext,
) {
    if !qsdd_telemetry::enabled() {
        return;
    }
    outcome.stage_timings.publish();
    let registry = qsdd_telemetry::global();
    let counters: [(&str, &str, u64); 9] = [
        (
            "qsdd_dd_vec_unique_hits_total",
            "Vector unique-table lookups that found an existing node",
            dd_delta.vec_unique_hits,
        ),
        (
            "qsdd_dd_vec_unique_misses_total",
            "Vector unique-table lookups that created a new node",
            dd_delta.vec_unique_misses,
        ),
        (
            "qsdd_dd_mat_unique_hits_total",
            "Matrix unique-table lookups that found an existing node",
            dd_delta.mat_unique_hits,
        ),
        (
            "qsdd_dd_mat_unique_misses_total",
            "Matrix unique-table lookups that created a new node",
            dd_delta.mat_unique_misses,
        ),
        (
            "qsdd_dd_compute_hits_total",
            "Compute-table lookups that hit a cached result",
            dd_delta.compute_hits,
        ),
        (
            "qsdd_dd_compute_misses_total",
            "Compute-table lookups that missed and computed",
            dd_delta.compute_misses,
        ),
        (
            "qsdd_dd_stripe_contention_total",
            "Striped-table lock acquisitions that found the stripe contended",
            dd_delta.stripe_contention,
        ),
        (
            "qsdd_jobs_shots_total",
            "Stochastic shots aggregated into finished jobs",
            outcome.shots as u64,
        ),
        (
            "qsdd_jobs_error_events_total",
            "Stochastic error events over all finished jobs",
            outcome.error_events,
        ),
    ];
    for (name, help, value) in counters {
        if value > 0 {
            registry.counter(name, help).add(value);
        }
    }
    if outcome.dd_nodes_peak > 0 {
        registry
            .gauge(
                "qsdd_dd_peak_nodes",
                "Highest decision-diagram node count any job reached",
            )
            .set_max(outcome.dd_nodes_peak as i64);
    }
    for (table, lens) in ctx.dd_stripe_occupancy() {
        for (stripe, len) in lens.into_iter().enumerate() {
            let stripe = stripe.to_string();
            registry
                .gauge_with(
                    "qsdd_dd_stripe_occupancy",
                    "Entries per lock stripe of the striped decision-diagram tables",
                    &[("table", table), ("stripe", &stripe)],
                )
                .set(len as i64);
        }
    }
    if let Some(stats) = &outcome.dedup {
        registry
            .counter(
                "qsdd_dedup_unique_trajectories_total",
                "Distinct trajectories actually simulated by deduplicated jobs",
            )
            .add(stats.unique_trajectories);
        registry
            .counter(
                "qsdd_dedup_live_shots_total",
                "Shots that fell back to live execution in deduplicated jobs",
            )
            .add(stats.live_shots);
    }
}

/// The single-context twin of the deduplicating driver: groups in
/// first-appearance order, then live shots in index order, exactly the work
/// order `run_dedup` deals to its only worker when `threads == 1` (so the
/// aggregates — including the observable-sum bits, which replay the shot
/// order — come out identical). The `deadline` is checked per group and per
/// live shot.
#[allow(clippy::too_many_arguments)]
fn run_dedup_serial(
    engine: &ShotEngine,
    ctx: &mut crate::ExecContext,
    shots: usize,
    mapped: &[Observable],
    groups: Vec<(qsdd_noise::ErrorPattern, Vec<(u64, StdRng)>)>,
    live: Vec<u64>,
    started: Instant,
    deadline: &Deadline,
) -> Result<StochasticOutcome, TimedOut> {
    let stats = crate::dedup::DedupStats {
        unique_trajectories: (groups.len() + live.len()) as u64,
        live_shots: live.len() as u64,
    };
    let bounded = !deadline.is_unbounded();
    let execute_started = Instant::now();
    let mut outcome = if mapped.is_empty() {
        // Integer-only aggregation: fold records as they are produced.
        let mut partial = WorkerPartial::new(0);
        for (pattern, mut members) in groups {
            if bounded && deadline.expired() {
                return Err(TimedOut);
            }
            let group_span = trace::span("trajectory_group");
            trace::attr("members", members.len());
            let dd_before = trace_dd_stats(ctx);
            for (_, sample, _) in engine.run_group_in(ctx, &pattern, &mut members, &[]) {
                partial.record(
                    sample.outcome,
                    sample.error_events,
                    sample.dd_nodes,
                    sample.dd_nodes_peak,
                    &[],
                );
            }
            trace_dd_attrs(ctx, dd_before);
            drop(group_span);
        }
        let live_span = trace::span("live_shots");
        trace::attr("shots", live.len());
        for shot in live {
            if bounded && deadline.expired() {
                return Err(TimedOut);
            }
            let sample = engine.run_shot_in(ctx, shot);
            partial.record(
                sample.outcome,
                sample.error_events,
                sample.dd_nodes,
                sample.dd_nodes_peak,
                &[],
            );
        }
        drop(live_span);
        let execute_time = execute_started.elapsed();
        let aggregate_started = Instant::now();
        let aggregate_span = trace::span("aggregate");
        let mut outcome = merge_partials(vec![Some(partial)], shots, 0, 1, started);
        drop(aggregate_span);
        outcome.stage_timings.record(Stage::Execute, execute_time);
        outcome
            .stage_timings
            .record(Stage::Aggregate, aggregate_started.elapsed());
        outcome
    } else {
        // Observable sums are order-sensitive: collect per-shot records,
        // then replay them in shot-index order (the one-worker stride).
        let mut records: Vec<Option<(crate::ShotSample, Vec<f64>)>> = Vec::new();
        records.resize_with(shots, || None);
        for (pattern, mut members) in groups {
            if bounded && deadline.expired() {
                return Err(TimedOut);
            }
            let group_span = trace::span("trajectory_group");
            trace::attr("members", members.len());
            let dd_before = trace_dd_stats(ctx);
            for (shot, sample, values) in engine.run_group_in(ctx, &pattern, &mut members, mapped) {
                records[shot as usize] = Some((sample, values));
            }
            trace_dd_attrs(ctx, dd_before);
            drop(group_span);
        }
        let live_span = trace::span("live_shots");
        trace::attr("shots", live.len());
        for shot in live {
            if bounded && deadline.expired() {
                return Err(TimedOut);
            }
            let (sample, values) = engine.run_shot_with_observables_in(ctx, shot, mapped);
            records[shot as usize] = Some((sample, values));
        }
        drop(live_span);
        let execute_time = execute_started.elapsed();
        let aggregate_started = Instant::now();
        let aggregate_span = trace::span("aggregate");
        let mut partial = WorkerPartial::new(mapped.len());
        for record in &records {
            let (sample, values) = record
                .as_ref()
                .expect("every shot is covered by exactly one group or live entry");
            partial.record(
                sample.outcome,
                sample.error_events,
                sample.dd_nodes,
                sample.dd_nodes_peak,
                values,
            );
        }
        let mut outcome = merge_partials(vec![Some(partial)], shots, mapped.len(), 1, started);
        drop(aggregate_span);
        outcome.stage_timings.record(Stage::Execute, execute_time);
        outcome
            .stage_timings
            .record(Stage::Aggregate, aggregate_started.elapsed());
        outcome
    };
    outcome.dedup = Some(stats);
    Ok(outcome)
}

/// Derives the per-shot random number generator from the master seed.
///
/// This derivation is the determinism contract shared by every shot-executing
/// path in the workspace ([`run_stochastic`], [`ShotEngine`], and through it
/// the batch scheduler): shot `i` under seed `s` always sees the same
/// generator, regardless of threads or scheduling.
pub(crate) fn shot_rng(seed: u64, shot: u64) -> StdRng {
    // SplitMix64-style mixing keeps neighbouring shot seeds uncorrelated.
    let mut z = seed ^ shot.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dd_backend::DdSimulator;
    use crate::dense_backend::DenseSimulator;
    use qsdd_circuit::generators::ghz;

    #[test]
    fn histogram_counts_sum_to_shots() {
        let backend = DdSimulator::new();
        let config = StochasticConfig::new(500).with_threads(4);
        let outcome = run_stochastic(&backend, &ghz(6), &config, &[]);
        let total: u64 = outcome.counts.values().sum();
        assert_eq!(total, 500);
        assert_eq!(outcome.shots, 500);
        assert_eq!(outcome.threads, 4);
        assert!(outcome.dd_nodes_avg > 0.0);
        assert!(outcome.dd_nodes_peak > 0);
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        let backend = DdSimulator::new();
        let base = StochasticConfig::new(200).with_seed(7);
        let single = run_stochastic(&backend, &ghz(4), &base.clone().with_threads(1), &[]);
        let multi = run_stochastic(&backend, &ghz(4), &base.with_threads(4), &[]);
        assert_eq!(single.counts, multi.counts);
        assert_eq!(single.dd_nodes_peak, multi.dd_nodes_peak);
        assert!((single.dd_nodes_avg - multi.dd_nodes_avg).abs() < 1e-12);
    }

    #[test]
    fn observable_sums_are_bit_stable_for_a_fixed_thread_count() {
        let backend = DdSimulator::new();
        let config = StochasticConfig::new(240).with_seed(3).with_threads(3);
        let observables = vec![
            Observable::BasisProbability(0),
            Observable::QubitExcitation(2),
        ];
        let first = run_stochastic(&backend, &ghz(4), &config, &observables);
        let second = run_stochastic(&backend, &ghz(4), &config, &observables);
        for (a, b) in first
            .observable_estimates
            .iter()
            .zip(&second.observable_estimates)
        {
            assert_eq!(a.to_bits(), b.to_bits(), "merge order leaked into sums");
        }
    }

    #[test]
    fn noiseless_ghz_splits_between_the_two_peaks() {
        let backend = DdSimulator::new();
        let config = StochasticConfig::new(400)
            .with_noise(NoiseModel::noiseless())
            .with_threads(2);
        let outcome = run_stochastic(&backend, &ghz(5), &config, &[]);
        let all_ones = (1u64 << 5) - 1;
        let p0 = outcome.frequency(0);
        let p1 = outcome.frequency(all_ones);
        assert!(
            (p0 + p1 - 1.0).abs() < 1e-12,
            "only the two GHZ outcomes occur"
        );
        assert!(p0 > 0.35 && p1 > 0.35);
        assert_eq!(outcome.error_events, 0);
    }

    #[test]
    fn observable_estimates_track_exact_values() {
        let backend = DdSimulator::new();
        let config = StochasticConfig::new(300)
            .with_noise(NoiseModel::noiseless())
            .with_threads(3);
        let observables = vec![
            Observable::BasisProbability(0),
            Observable::QubitExcitation(1),
        ];
        let outcome = run_stochastic(&backend, &ghz(4), &config, &observables);
        assert_eq!(outcome.observable_estimates.len(), 2);
        assert!((outcome.observable_estimates[0] - 0.5).abs() < 1e-9);
        assert!((outcome.observable_estimates[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dense_and_dd_backends_agree_statistically() {
        let circuit = ghz(4);
        let config = StochasticConfig::new(600).with_seed(21).with_threads(2);
        let dd = run_stochastic(&DdSimulator::new(), &circuit, &config, &[]);
        let dense = run_stochastic(&DenseSimulator::new(), &circuit, &config, &[]);
        let all_ones = (1u64 << 4) - 1;
        for outcome in [0, all_ones] {
            let diff = (dd.frequency(outcome) - dense.frequency(outcome)).abs();
            assert!(
                diff < 0.1,
                "frequency mismatch {diff} for outcome {outcome}"
            );
        }
        assert_eq!(dense.dd_nodes_peak, 0);
        assert_eq!(dense.dd_nodes_avg, 0.0);
    }

    #[test]
    fn stage_timings_cover_the_pipeline_on_every_runner() {
        use crate::{BackendKind, ShotEngine};
        use qsdd_transpile::OptLevel;

        // Threaded runner: compile + execute are always timed.
        let backend = DdSimulator::new();
        let config = StochasticConfig::new(64).with_threads(2).with_seed(5);
        let outcome = run_stochastic(&backend, &ghz(4), &config, &[]);
        assert!(outcome.stage_timings.get(Stage::Execute) > Duration::ZERO);
        assert!(outcome.stage_timings.total() >= outcome.stage_timings.get(Stage::Execute));

        // In-context runner (the server path): the engine's compile time is
        // merged in, the dedup driver fills presample, and the
        // instrumentation never alters results.
        let engine = ShotEngine::new(
            &ghz(4),
            BackendKind::DecisionDiagram,
            NoiseModel::noiseless().with_depolarizing(0.05),
            9,
            OptLevel::O1,
        );
        let mut ctx = engine.new_context();
        let in_ctx = run_engine_in(&engine, &mut ctx, 64, &[], true);
        assert!(in_ctx.stage_timings.get(Stage::Compile) > Duration::ZERO);
        assert!(in_ctx.stage_timings.get(Stage::Execute) > Duration::ZERO);
        if in_ctx.dedup.is_some() {
            assert!(in_ctx.stage_timings.get(Stage::Presample) > Duration::ZERO);
        }
        let reference = run_engine_dedup(&engine, 64, 1, &[]);
        assert_eq!(in_ctx.counts, reference.counts);
        assert_eq!(in_ctx.error_events, reference.error_events);
    }

    #[test]
    fn most_frequent_breaks_ties_by_smallest_outcome() {
        let outcome = StochasticOutcome {
            counts: HashMap::from([(7u64, 5u64), (2, 5), (4, 5), (9, 3)]),
            shots: 18,
            observable_estimates: Vec::new(),
            error_events: 0,
            dd_nodes_avg: 0.0,
            dd_nodes_peak: 0,
            wall_time: Duration::ZERO,
            threads: 1,
            dedup: None,
            weighted: None,
            stage_timings: StageTimings::new(),
        };
        // All of 2, 4, 7 are tied at 5 counts: the smallest index wins,
        // independent of hash-map iteration order.
        assert_eq!(outcome.most_frequent(), Some(2));
        let empty = StochasticOutcome::empty(0, 0, Duration::ZERO);
        assert_eq!(empty.most_frequent(), None);
    }

    #[test]
    fn zero_shots_yield_an_empty_outcome() {
        let backend = DdSimulator::new();
        let config = StochasticConfig::new(0).with_threads(4);
        let observables = [Observable::QubitExcitation(0)];
        let outcome = run_stochastic(&backend, &ghz(3), &config, &observables);
        assert_eq!(outcome.shots, 0);
        assert!(outcome.counts.is_empty());
        // Even with no workers spawned the resolved thread count is reported.
        assert_eq!(outcome.threads, 4);
        assert_eq!(outcome.observable_estimates, vec![0.0]);
        assert_eq!(outcome.most_frequent(), None);
        assert_eq!(outcome.error_rate(), 0.0);
        assert_eq!(outcome.frequency(0), 0.0);
        assert_eq!(outcome.dd_nodes_peak, 0);
    }

    #[test]
    fn run_engine_matches_run_stochastic_exactly() {
        // Both runners share the per-shot rng derivation, so histograms and
        // error counts must agree bit for bit, whatever the thread count.
        let circuit = ghz(5);
        let config = StochasticConfig::new(300)
            .with_seed(13)
            .with_threads(3)
            .with_noise(NoiseModel::paper_defaults());
        let generic = run_stochastic(&DdSimulator::new(), &circuit, &config, &[]);
        let engine = ShotEngine::new(
            &circuit,
            crate::BackendKind::DecisionDiagram,
            config.noise,
            config.seed,
            crate::OptLevel::O0,
        );
        for threads in [1, 2, 5] {
            let via_engine = run_engine(&engine, 300, threads, &[]);
            assert_eq!(via_engine.counts, generic.counts);
            assert_eq!(via_engine.error_events, generic.error_events);
            assert_eq!(via_engine.shots, 300);
            assert_eq!(via_engine.dd_nodes_peak, generic.dd_nodes_peak);
        }
    }

    #[test]
    fn run_engine_in_matches_the_single_threaded_runners_bit_for_bit() {
        // Paper noise mixes pattern groups with live (damping) shots, which
        // exercises both arms of the serial dedup driver.
        let circuit = ghz(6);
        let engine = ShotEngine::new(
            &circuit,
            crate::BackendKind::DecisionDiagram,
            NoiseModel::paper_defaults(),
            17,
            crate::OptLevel::O0,
        );
        let observables = vec![
            Observable::BasisProbability(0),
            Observable::QubitExcitation(2),
        ];
        let mut ctx = engine.new_context();
        for dedup in [true, false] {
            let serial = run_engine_in(&engine, &mut ctx, 300, &observables, dedup);
            let reference = if dedup {
                run_engine_dedup(&engine, 300, 1, &observables)
            } else {
                run_engine(&engine, 300, 1, &observables)
            };
            assert_eq!(serial.counts, reference.counts, "dedup={dedup}");
            assert_eq!(serial.error_events, reference.error_events);
            assert_eq!(serial.dd_nodes_peak, reference.dd_nodes_peak);
            assert_eq!(
                serial.dd_nodes_avg.to_bits(),
                reference.dd_nodes_avg.to_bits()
            );
            assert_eq!(serial.dedup, reference.dedup, "dedup={dedup}");
            assert_eq!(serial.threads, 1);
            for (a, b) in serial
                .observable_estimates
                .iter()
                .zip(&reference.observable_estimates)
            {
                assert_eq!(a.to_bits(), b.to_bits(), "observable sums drifted");
            }
        }
    }

    #[test]
    fn run_engine_in_reuses_one_context_across_jobs() {
        // The same context serves jobs of both backend kinds back to back —
        // the server worker-pool pattern — without affecting results.
        let mut ctx = crate::ExecContext::new();
        for kind in [
            crate::BackendKind::DecisionDiagram,
            crate::BackendKind::Statevector,
        ] {
            let engine = ShotEngine::new(
                &ghz(4),
                kind,
                NoiseModel::paper_defaults(),
                3,
                crate::OptLevel::O0,
            );
            let warm = run_engine_in(&engine, &mut ctx, 120, &[], true);
            let fresh = run_engine_in(&engine, &mut engine.new_context(), 120, &[], true);
            assert_eq!(warm.counts, fresh.counts);
            assert_eq!(warm.dedup, fresh.dedup);
        }
    }

    #[test]
    fn run_engine_in_handles_zero_shots() {
        let engine = ShotEngine::new(
            &ghz(3),
            crate::BackendKind::DecisionDiagram,
            NoiseModel::noiseless(),
            1,
            crate::OptLevel::O0,
        );
        let outcome = run_engine_in(&engine, &mut engine.new_context(), 0, &[], true);
        assert_eq!(outcome.shots, 0);
        assert!(outcome.counts.is_empty());
        assert_eq!(outcome.threads, 1);
    }

    #[test]
    fn noise_produces_error_events() {
        let backend = DdSimulator::new();
        let config = StochasticConfig::new(200)
            .with_noise(NoiseModel::new(0.05, 0.05, 0.05))
            .with_threads(2);
        let outcome = run_stochastic(&backend, &ghz(8), &config, &[]);
        assert!(outcome.error_events > 0);
        assert!(outcome.error_rate() > 0.0);
    }
}
