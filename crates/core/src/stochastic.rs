//! The concurrent Monte-Carlo runner.
//!
//! Stochastic quantum circuit simulation needs many independent runs to form
//! accurate empirical averages (Theorem 1). Because the runs are i.i.d.,
//! they parallelise perfectly: the runner partitions the requested shot
//! count over worker threads, gives every *shot* its own deterministically
//! derived random number generator (so results do not depend on the thread
//! count), and merges the per-worker histograms and observable sums at the
//! end. This is the "concurrency across simulation runs" idea of
//! Section IV-C of the paper.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use qsdd_circuit::Circuit;
use qsdd_noise::NoiseModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::backend::StochasticBackend;
use crate::estimator::{Observable, ObservableAccumulator};
use crate::shot_engine::ShotEngine;

/// Configuration of a stochastic simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct StochasticConfig {
    /// Number of independent simulation runs (samples).
    pub shots: usize,
    /// Number of worker threads; `0` uses the machine's available
    /// parallelism.
    pub threads: usize,
    /// Master seed; every shot derives its own generator from it, so results
    /// are reproducible and independent of the thread count.
    pub seed: u64,
    /// The noise model applied after every gate.
    pub noise: NoiseModel,
}

impl StochasticConfig {
    /// A configuration with the paper's noise model and a given shot count.
    pub fn new(shots: usize) -> Self {
        StochasticConfig {
            shots,
            threads: 0,
            seed: 0xD1CE_5EED,
            noise: NoiseModel::paper_defaults(),
        }
    }

    /// Sets the number of worker threads.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the noise model.
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Resolves the effective number of worker threads.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

impl Default for StochasticConfig {
    fn default() -> Self {
        StochasticConfig::new(1024)
    }
}

/// Aggregated result of a stochastic simulation.
#[derive(Clone, Debug)]
pub struct StochasticOutcome {
    /// Histogram of measurement outcomes (basis index -> count).
    pub counts: HashMap<u64, u64>,
    /// Number of runs performed.
    pub shots: usize,
    /// Monte-Carlo estimates of the requested observables (same order as the
    /// request).
    pub observable_estimates: Vec<f64>,
    /// Total number of stochastic error events over all runs.
    pub error_events: u64,
    /// Wall-clock time of the whole simulation.
    pub wall_time: Duration,
    /// Resolved worker-thread count of the run. For `shots > 0` this is the
    /// number of workers actually spawned (capped at the shot count); a
    /// zero-shot run spawns no workers but still reports the resolved
    /// configuration.
    pub threads: usize,
}

impl StochasticOutcome {
    /// Relative frequency of a measurement outcome.
    pub fn frequency(&self, outcome: u64) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        *self.counts.get(&outcome).unwrap_or(&0) as f64 / self.shots as f64
    }

    /// The most frequent measurement outcome, if any run was performed.
    ///
    /// Ties are broken deterministically in favour of the smallest outcome
    /// index (hash-map iteration order must not leak into results).
    pub fn most_frequent(&self) -> Option<u64> {
        self.counts
            .iter()
            .max_by_key(|(&outcome, &count)| (count, std::cmp::Reverse(outcome)))
            .map(|(&outcome, _)| outcome)
    }

    /// Average number of error events per run.
    pub fn error_rate(&self) -> f64 {
        if self.shots == 0 {
            return 0.0;
        }
        self.error_events as f64 / self.shots as f64
    }
}

/// Runs `config.shots` independent stochastic simulations of `circuit` on
/// `backend`, estimating the given observables along the way.
///
/// Shots are distributed over worker threads ([`StochasticConfig::threads`]);
/// every shot uses a random number generator derived deterministically from
/// the master seed and the shot index, so the outcome is independent of how
/// shots are assigned to threads.
pub fn run_stochastic<B: StochasticBackend>(
    backend: &B,
    circuit: &Circuit,
    config: &StochasticConfig,
    observables: &[Observable],
) -> StochasticOutcome {
    let started = Instant::now();
    if config.shots == 0 {
        // Nothing to run: return an empty outcome without spawning workers,
        // still reporting the resolved worker count for consistency.
        return StochasticOutcome {
            counts: HashMap::new(),
            shots: 0,
            observable_estimates: vec![0.0; observables.len()],
            error_events: 0,
            wall_time: started.elapsed(),
            threads: config.effective_threads(),
        };
    }
    let threads = config.effective_threads().max(1).min(config.shots);
    let merged_counts: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::new());
    let merged_observables: Mutex<ObservableAccumulator> =
        Mutex::new(ObservableAccumulator::new(observables.len()));
    let merged_errors: Mutex<u64> = Mutex::new(0);

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let merged_counts = &merged_counts;
            let merged_observables = &merged_observables;
            let merged_errors = &merged_errors;
            let observables = &observables;
            let config = &config;
            scope.spawn(move || {
                let mut local_counts: HashMap<u64, u64> = HashMap::new();
                let mut local_observables = ObservableAccumulator::new(observables.len());
                let mut local_errors = 0u64;
                let mut shot = worker;
                while shot < config.shots {
                    let mut rng = shot_rng(config.seed, shot as u64);
                    let mut run = backend.run_once(circuit, &config.noise, &mut rng);
                    *local_counts.entry(run.outcome).or_insert(0) += 1;
                    local_errors += run.error_events as u64;
                    if !observables.is_empty() {
                        let values: Vec<f64> = observables
                            .iter()
                            .map(|o| backend.evaluate(&mut run, o))
                            .collect();
                        local_observables.add(&values);
                    }
                    shot += threads;
                }
                let mut counts = merged_counts.lock();
                for (outcome, count) in local_counts {
                    *counts.entry(outcome).or_insert(0) += count;
                }
                merged_observables.lock().merge(&local_observables);
                *merged_errors.lock() += local_errors;
            });
        }
    });

    StochasticOutcome {
        counts: merged_counts.into_inner(),
        shots: config.shots,
        observable_estimates: merged_observables.into_inner().means(),
        error_events: merged_errors.into_inner(),
        wall_time: started.elapsed(),
        threads,
    }
}

/// Runs `shots` independent stochastic shots on a prepared [`ShotEngine`],
/// estimating the given observables along the way.
///
/// This is the engine-driven twin of [`run_stochastic`]: the same strided
/// shot loop, but executing through the re-entrant [`ShotEngine`] API that
/// the batch scheduler shares. Observables are remapped through the engine's
/// output layout once, outcomes arrive already restored to the original
/// circuit's qubit order, so no post-processing is required.
///
/// `threads == 0` uses all available cores. Results are identical for every
/// thread count because each shot derives its generator from the engine seed
/// and the shot index alone.
pub fn run_engine(
    engine: &ShotEngine,
    shots: usize,
    threads: usize,
    observables: &[Observable],
) -> StochasticOutcome {
    let started = Instant::now();
    let threads = if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    if shots == 0 {
        // Nothing to run: return an empty outcome without spawning workers,
        // still reporting the resolved worker count for consistency.
        return StochasticOutcome {
            counts: HashMap::new(),
            shots: 0,
            observable_estimates: vec![0.0; observables.len()],
            error_events: 0,
            wall_time: started.elapsed(),
            threads,
        };
    }
    let threads = threads.min(shots);
    let mapped = engine.map_observables(observables);
    let merged_counts: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::new());
    let merged_observables: Mutex<ObservableAccumulator> =
        Mutex::new(ObservableAccumulator::new(observables.len()));
    let merged_errors: Mutex<u64> = Mutex::new(0);

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let merged_counts = &merged_counts;
            let merged_observables = &merged_observables;
            let merged_errors = &merged_errors;
            let mapped = &mapped;
            scope.spawn(move || {
                let mut local_counts: HashMap<u64, u64> = HashMap::new();
                let mut local_observables = ObservableAccumulator::new(mapped.len());
                let mut local_errors = 0u64;
                let mut shot = worker;
                while shot < shots {
                    let (sample, values) = engine.run_shot_with_observables(shot as u64, mapped);
                    *local_counts.entry(sample.outcome).or_insert(0) += 1;
                    local_errors += sample.error_events;
                    if !mapped.is_empty() {
                        local_observables.add(&values);
                    }
                    shot += threads;
                }
                let mut counts = merged_counts.lock();
                for (outcome, count) in local_counts {
                    *counts.entry(outcome).or_insert(0) += count;
                }
                merged_observables.lock().merge(&local_observables);
                *merged_errors.lock() += local_errors;
            });
        }
    });

    StochasticOutcome {
        counts: merged_counts.into_inner(),
        shots,
        observable_estimates: merged_observables.into_inner().means(),
        error_events: merged_errors.into_inner(),
        wall_time: started.elapsed(),
        threads,
    }
}

/// Derives the per-shot random number generator from the master seed.
///
/// This derivation is the determinism contract shared by every shot-executing
/// path in the workspace ([`run_stochastic`], [`ShotEngine`], and through it
/// the batch scheduler): shot `i` under seed `s` always sees the same
/// generator, regardless of threads or scheduling.
pub(crate) fn shot_rng(seed: u64, shot: u64) -> StdRng {
    // SplitMix64-style mixing keeps neighbouring shot seeds uncorrelated.
    let mut z = seed ^ shot.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dd_backend::DdSimulator;
    use crate::dense_backend::DenseSimulator;
    use qsdd_circuit::generators::ghz;

    #[test]
    fn histogram_counts_sum_to_shots() {
        let backend = DdSimulator::new();
        let config = StochasticConfig::new(500).with_threads(4);
        let outcome = run_stochastic(&backend, &ghz(6), &config, &[]);
        let total: u64 = outcome.counts.values().sum();
        assert_eq!(total, 500);
        assert_eq!(outcome.shots, 500);
        assert_eq!(outcome.threads, 4);
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        let backend = DdSimulator::new();
        let base = StochasticConfig::new(200).with_seed(7);
        let single = run_stochastic(&backend, &ghz(4), &base.clone().with_threads(1), &[]);
        let multi = run_stochastic(&backend, &ghz(4), &base.with_threads(4), &[]);
        assert_eq!(single.counts, multi.counts);
    }

    #[test]
    fn noiseless_ghz_splits_between_the_two_peaks() {
        let backend = DdSimulator::new();
        let config = StochasticConfig::new(400)
            .with_noise(NoiseModel::noiseless())
            .with_threads(2);
        let outcome = run_stochastic(&backend, &ghz(5), &config, &[]);
        let all_ones = (1u64 << 5) - 1;
        let p0 = outcome.frequency(0);
        let p1 = outcome.frequency(all_ones);
        assert!(
            (p0 + p1 - 1.0).abs() < 1e-12,
            "only the two GHZ outcomes occur"
        );
        assert!(p0 > 0.35 && p1 > 0.35);
        assert_eq!(outcome.error_events, 0);
    }

    #[test]
    fn observable_estimates_track_exact_values() {
        let backend = DdSimulator::new();
        let config = StochasticConfig::new(300)
            .with_noise(NoiseModel::noiseless())
            .with_threads(3);
        let observables = vec![
            Observable::BasisProbability(0),
            Observable::QubitExcitation(1),
        ];
        let outcome = run_stochastic(&backend, &ghz(4), &config, &observables);
        assert_eq!(outcome.observable_estimates.len(), 2);
        assert!((outcome.observable_estimates[0] - 0.5).abs() < 1e-9);
        assert!((outcome.observable_estimates[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn dense_and_dd_backends_agree_statistically() {
        let circuit = ghz(4);
        let config = StochasticConfig::new(600).with_seed(21).with_threads(2);
        let dd = run_stochastic(&DdSimulator::new(), &circuit, &config, &[]);
        let dense = run_stochastic(&DenseSimulator::new(), &circuit, &config, &[]);
        let all_ones = (1u64 << 4) - 1;
        for outcome in [0, all_ones] {
            let diff = (dd.frequency(outcome) - dense.frequency(outcome)).abs();
            assert!(
                diff < 0.1,
                "frequency mismatch {diff} for outcome {outcome}"
            );
        }
    }

    #[test]
    fn most_frequent_breaks_ties_by_smallest_outcome() {
        let outcome = StochasticOutcome {
            counts: HashMap::from([(7u64, 5u64), (2, 5), (4, 5), (9, 3)]),
            shots: 18,
            observable_estimates: Vec::new(),
            error_events: 0,
            wall_time: Duration::ZERO,
            threads: 1,
        };
        // All of 2, 4, 7 are tied at 5 counts: the smallest index wins,
        // independent of hash-map iteration order.
        assert_eq!(outcome.most_frequent(), Some(2));
        let empty = StochasticOutcome {
            counts: HashMap::new(),
            shots: 0,
            observable_estimates: Vec::new(),
            error_events: 0,
            wall_time: Duration::ZERO,
            threads: 0,
        };
        assert_eq!(empty.most_frequent(), None);
    }

    #[test]
    fn zero_shots_yield_an_empty_outcome() {
        let backend = DdSimulator::new();
        let config = StochasticConfig::new(0).with_threads(4);
        let observables = [Observable::QubitExcitation(0)];
        let outcome = run_stochastic(&backend, &ghz(3), &config, &observables);
        assert_eq!(outcome.shots, 0);
        assert!(outcome.counts.is_empty());
        // Even with no workers spawned the resolved thread count is reported.
        assert_eq!(outcome.threads, 4);
        assert_eq!(outcome.observable_estimates, vec![0.0]);
        assert_eq!(outcome.most_frequent(), None);
        assert_eq!(outcome.error_rate(), 0.0);
        assert_eq!(outcome.frequency(0), 0.0);
    }

    #[test]
    fn run_engine_matches_run_stochastic_exactly() {
        // Both runners share the per-shot rng derivation, so histograms and
        // error counts must agree bit for bit, whatever the thread count.
        let circuit = ghz(5);
        let config = StochasticConfig::new(300)
            .with_seed(13)
            .with_threads(3)
            .with_noise(NoiseModel::paper_defaults());
        let generic = run_stochastic(&DdSimulator::new(), &circuit, &config, &[]);
        let engine = ShotEngine::new(
            &circuit,
            crate::BackendKind::DecisionDiagram,
            config.noise,
            config.seed,
            crate::OptLevel::O0,
        );
        for threads in [1, 2, 5] {
            let via_engine = run_engine(&engine, 300, threads, &[]);
            assert_eq!(via_engine.counts, generic.counts);
            assert_eq!(via_engine.error_events, generic.error_events);
            assert_eq!(via_engine.shots, 300);
        }
    }

    #[test]
    fn noise_produces_error_events() {
        let backend = DdSimulator::new();
        let config = StochasticConfig::new(200)
            .with_noise(NoiseModel::new(0.05, 0.05, 0.05))
            .with_threads(2);
        let outcome = run_stochastic(&backend, &ghz(8), &config, &[]);
        assert!(outcome.error_events > 0);
        assert!(outcome.error_rate() > 0.0);
    }
}
