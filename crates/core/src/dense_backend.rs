//! The dense statevector back-end: the baseline the paper compares against.
//!
//! This back-end runs exactly the same stochastic noise-injection protocol as
//! the decision-diagram back-end but stores the state as a flat `2^n`
//! amplitude array (like Qiskit's statevector simulator or the Atos QLM
//! LinAlg simulator). Its per-gate cost is Θ(2ⁿ) regardless of any structure
//! in the state, which is what limits the baselines in Table I.

use qsdd_circuit::{Circuit, Operation};
use qsdd_dd::Matrix2;
use qsdd_noise::{NoiseModel, StochasticAction};
use qsdd_statevector::StateVector;
use rand::rngs::StdRng;
use rand::Rng;

use crate::backend::{pack_clbits, SingleRun, StochasticBackend};
use crate::estimator::Observable;

/// The dense statevector simulator back-end (the "Qiskit"/"QLM" stand-in).
#[derive(Clone, Copy, Debug, Default)]
pub struct DenseSimulator;

impl DenseSimulator {
    /// Creates the back-end.
    pub fn new() -> Self {
        DenseSimulator
    }
}

impl StochasticBackend for DenseSimulator {
    type State = StateVector;

    fn name(&self) -> &'static str {
        "statevector"
    }

    fn run_once(
        &self,
        circuit: &Circuit,
        noise: &NoiseModel,
        rng: &mut StdRng,
    ) -> SingleRun<Self::State> {
        let n = circuit.num_qubits();
        let mut state = StateVector::new(n);
        let mut clbits = vec![false; circuit.num_clbits()];
        let mut measured_any = false;
        let mut error_events = 0usize;
        let channels = noise.channels();

        for op in circuit {
            match op {
                Operation::Gate {
                    gate,
                    target,
                    controls,
                } => {
                    let m = gate
                        .matrix()
                        .expect("non-swap gates always provide a matrix");
                    state.apply_controlled(controls, *target, &m);
                }
                Operation::Swap { a, b } => state.apply_swap(*a, *b),
                Operation::Measure { qubit, clbit } => {
                    clbits[*clbit] = state.measure_qubit(*qubit, rng);
                    measured_any = true;
                    continue;
                }
                Operation::Reset { qubit } => {
                    state.reset_qubit(*qubit, rng);
                    continue;
                }
                Operation::Barrier => continue,
            }
            if channels.is_empty() {
                continue;
            }
            for qubit in op.qubits() {
                for channel in &channels {
                    match channel.sample_action(rng) {
                        StochasticAction::None => {}
                        StochasticAction::Unitary(m) => {
                            error_events += 1;
                            state.apply_single(qubit, &m);
                        }
                        StochasticAction::Kraus(branches) => {
                            apply_damping(&mut state, qubit, &branches, rng, &mut error_events);
                        }
                    }
                }
            }
        }

        let outcome = if measured_any {
            pack_clbits(&clbits)
        } else {
            state.sample_measurement(rng)
        };
        SingleRun {
            outcome,
            clbits,
            error_events,
            state,
        }
    }

    fn evaluate(&self, run: &mut SingleRun<Self::State>, observable: &Observable) -> f64 {
        match observable {
            Observable::BasisProbability(index) => run.state.probability_of_index(*index),
            Observable::QubitExcitation(qubit) => run.state.probability_one(*qubit),
            Observable::Fidelity(reference) => {
                let reference = StateVector::from_amplitudes(reference.clone());
                reference.fidelity(&run.state)
            }
        }
    }
}

/// Applies the state-dependent amplitude-damping channel: the decay branch
/// fires with probability equal to the squared norm of `A0 |psi>`.
fn apply_damping(
    state: &mut StateVector,
    qubit: usize,
    branches: &[Matrix2],
    rng: &mut StdRng,
    error_events: &mut usize,
) {
    let mut decayed = state.clone();
    decayed.apply_single(qubit, &branches[0]);
    let p_decay = decayed.norm_sqr();
    if rng.gen::<f64>() < p_decay {
        *error_events += 1;
        decayed.normalize();
        *state = decayed;
    } else {
        state.apply_single(qubit, &branches[1]);
        state.normalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::generators::ghz;
    use rand::SeedableRng;

    #[test]
    fn noiseless_ghz_yields_correlated_outcomes() {
        let backend = DenseSimulator::new();
        let circuit = ghz(6);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let run = backend.run_once(&circuit, &NoiseModel::noiseless(), &mut rng);
            assert!(run.outcome == 0 || run.outcome == 0b111111);
        }
    }

    #[test]
    fn observables_match_dd_backend_for_noiseless_runs() {
        use crate::dd_backend::DdSimulator;
        let circuit = ghz(5);
        let noiseless = NoiseModel::noiseless();
        let dense = DenseSimulator::new();
        let dd = DdSimulator::new();
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        let mut run_a = dense.run_once(&circuit, &noiseless, &mut rng_a);
        let mut run_b = dd.run_once(&circuit, &noiseless, &mut rng_b);
        for observable in [
            Observable::BasisProbability(0),
            Observable::BasisProbability(31),
            Observable::QubitExcitation(3),
        ] {
            let a = dense.evaluate(&mut run_a, &observable);
            let b = dd.evaluate(&mut run_b, &observable);
            assert!(
                (a - b).abs() < 1e-10,
                "observable {observable:?}: dense {a} vs dd {b}"
            );
        }
    }

    #[test]
    fn damping_eventually_decays_an_excited_qubit() {
        let backend = DenseSimulator::new();
        let mut circuit = Circuit::new(1);
        // Many identity gates, each exposing the qubit to T1 decay.
        circuit.x(0);
        for _ in 0..200 {
            circuit.gate(qsdd_circuit::Gate::I, 0);
        }
        let noise = NoiseModel::new(0.0, 0.05, 0.0);
        let mut rng = StdRng::seed_from_u64(123);
        let mut decays = 0;
        for _ in 0..50 {
            let run = backend.run_once(&circuit, &noise, &mut rng);
            if run.outcome == 0 {
                decays += 1;
            }
        }
        // With 200 damping opportunities at 5% each, decay is near certain.
        assert!(decays >= 48, "only {decays} of 50 runs decayed");
    }
}
