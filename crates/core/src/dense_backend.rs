//! The dense statevector back-end: the baseline the paper compares against.
//!
//! This back-end runs exactly the same stochastic noise-injection protocol
//! as the decision-diagram back-end but stores the state as a flat `2^n`
//! amplitude array (like Qiskit's statevector simulator or the Atos QLM
//! LinAlg simulator). Its per-gate cost is Θ(2ⁿ) regardless of any
//! structure in the state, which is what limits the baselines in Table I.
//!
//! Compilation resolves every gate to its concrete matrix once (no per-shot
//! trigonometry) and snapshots the noise-channel operator tables; the
//! execution context keeps two amplitude buffers — the live state and a
//! scratch vector for the amplitude-damping branch probe — that are rewound
//! in place between shots instead of being reallocated.

use qsdd_circuit::{Circuit, Operation};
use qsdd_dd::Matrix2;
use qsdd_noise::{
    ErrorChannel, ErrorPattern, NoiseModel, PresamplePlan, SampledError, SiteChannel,
};
use qsdd_statevector::StateVector;
use rand::rngs::StdRng;
use rand::Rng;

use crate::backend::{next_program_id, pack_clbits, SingleRun, StochasticBackend};
use crate::dedup::DedupSupport;
use crate::estimator::Observable;

/// One executable step of a compiled dense program.
#[derive(Clone, Debug)]
enum DenseStep {
    /// Apply the resolved matrix to `target` under `controls`, then expose
    /// `noise_qubits` to the channels.
    Gate {
        matrix: Matrix2,
        target: usize,
        controls: Vec<usize>,
        noise_qubits: Vec<usize>,
    },
    /// Exchange two qubits, then expose them to the channels.
    Swap {
        a: usize,
        b: usize,
        noise_qubits: Vec<usize>,
    },
    /// Projective measurement into a classical bit.
    Measure { qubit: usize, clbit: usize },
    /// Reset to `|0>`.
    Reset { qubit: usize },
}

/// A compiled circuit + noise model pair for the dense back-end: the
/// resolved step list plus per-channel operator tables.
#[derive(Clone, Debug)]
pub struct DenseProgram {
    id: u64,
    num_qubits: usize,
    num_clbits: usize,
    measured_any: bool,
    steps: Vec<DenseStep>,
    channels: Vec<ErrorChannel>,
    /// `unitaries[channel][i]`: the channel's `i`-th unitary error matrix.
    unitaries: Vec<Vec<Matrix2>>,
    /// `kraus[channel]`: the `[decay, keep]` Kraus pair, if any.
    kraus: Vec<Option<[Matrix2; 2]>>,
    /// Whether every shot's error decisions are presampleable: no
    /// measurement or reset consumes randomness mid-shot, and every channel
    /// is state-independent (the dense back-end precomputes no damping
    /// thresholds, so any state-dependent channel forces the live path).
    dedupable: bool,
}

impl DenseProgram {
    /// Number of qubits of the compiled circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of executable steps (barriers are compiled away).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }
}

/// A reusable per-worker execution context for the dense back-end: the live
/// amplitude buffer plus a damping scratch buffer, both rewound in place.
#[derive(Clone, Debug)]
pub struct DenseContext {
    state: StateVector,
    scratch: StateVector,
    seated: u64,
    /// Fork-join pool for chunk-partitioned kernels; kept here so seating
    /// onto a different-width program (which reallocates the buffers) can
    /// re-install it.
    pool: Option<std::sync::Arc<qsdd_dd::IntraPool>>,
}

impl DenseContext {
    /// Creates an unseated context.
    pub fn new() -> Self {
        DenseContext {
            state: StateVector::new(1),
            scratch: StateVector::new(1),
            seated: 0,
            pool: None,
        }
    }

    /// Installs (or clears) a fork-join pool: subsequent gate kernels
    /// split their chunk-partitioned loops across the pool (see
    /// [`StateVector::set_intra_pool`]). Results stay bit-identical to
    /// serial execution.
    pub fn set_intra_pool(&mut self, pool: Option<std::sync::Arc<qsdd_dd::IntraPool>>) {
        self.state.set_intra_pool(pool.clone());
        self.scratch.set_intra_pool(pool.clone());
        self.pool = pool;
    }

    /// Rewinds the live buffer to `|0...0>`, reallocating only when the
    /// context moves to a program with a different qubit count — every
    /// shot starts from the zero state, so the buffer is reusable across
    /// programs of equal width.
    fn seat(&mut self, program: &DenseProgram) {
        if self.seated != 0 && self.state.num_qubits() == program.num_qubits {
            self.state.reset_to_zero();
        } else {
            self.state = StateVector::new(program.num_qubits);
            self.state.set_intra_pool(self.pool.clone());
        }
        self.seated = program.id;
    }

    /// Read access to the most recent shot's final state.
    pub fn state(&self) -> &StateVector {
        &self.state
    }
}

impl Default for DenseContext {
    fn default() -> Self {
        DenseContext::new()
    }
}

/// The dense statevector simulator back-end (the "Qiskit"/"QLM" stand-in).
#[derive(Clone, Copy, Debug, Default)]
pub struct DenseSimulator;

impl DenseSimulator {
    /// Creates the back-end.
    pub fn new() -> Self {
        DenseSimulator
    }
}

impl StochasticBackend for DenseSimulator {
    /// The final state lives in the context ([`DenseContext::state`]); the
    /// run itself carries no extra handle.
    type State = ();
    type Program = DenseProgram;
    type Context = DenseContext;

    fn name(&self) -> &'static str {
        "statevector"
    }

    fn compile(&self, circuit: &Circuit, noise: &NoiseModel) -> DenseProgram {
        let channels = noise.channels();
        let mut steps = Vec::with_capacity(circuit.len());
        let mut measured_any = false;
        for op in circuit {
            match op {
                Operation::Gate {
                    gate,
                    target,
                    controls,
                } => {
                    let matrix = gate
                        .matrix()
                        .expect("non-swap gates always provide a matrix");
                    steps.push(DenseStep::Gate {
                        matrix,
                        target: *target,
                        controls: controls.clone(),
                        noise_qubits: if channels.is_empty() {
                            Vec::new()
                        } else {
                            op.qubits()
                        },
                    });
                }
                Operation::Swap { a, b } => steps.push(DenseStep::Swap {
                    a: *a,
                    b: *b,
                    noise_qubits: if channels.is_empty() {
                        Vec::new()
                    } else {
                        op.qubits()
                    },
                }),
                Operation::Measure { qubit, clbit } => {
                    measured_any = true;
                    steps.push(DenseStep::Measure {
                        qubit: *qubit,
                        clbit: *clbit,
                    });
                }
                Operation::Reset { qubit } => steps.push(DenseStep::Reset { qubit: *qubit }),
                Operation::Barrier => {}
            }
        }
        let unitaries = channels.iter().map(ErrorChannel::unitaries).collect();
        let kraus = channels.iter().map(ErrorChannel::kraus_branches).collect();
        let dedupable = steps
            .iter()
            .all(|step| matches!(step, DenseStep::Gate { .. } | DenseStep::Swap { .. }))
            && !channels.iter().any(ErrorChannel::state_dependent);
        DenseProgram {
            id: next_program_id(),
            num_qubits: circuit.num_qubits(),
            num_clbits: circuit.num_clbits(),
            measured_any,
            steps,
            channels,
            unitaries,
            kraus,
            dedupable,
        }
    }

    fn new_context(&self) -> DenseContext {
        DenseContext::new()
    }

    fn set_intra_pool(
        &self,
        ctx: &mut DenseContext,
        pool: Option<std::sync::Arc<qsdd_dd::IntraPool>>,
    ) {
        ctx.set_intra_pool(pool);
    }

    fn run_shot(
        &self,
        program: &DenseProgram,
        ctx: &mut DenseContext,
        rng: &mut StdRng,
    ) -> SingleRun<()> {
        ctx.seat(program);
        let mut clbits = vec![false; program.num_clbits];
        let mut error_events = 0usize;

        for step in &program.steps {
            let noise_qubits: &[usize] = match step {
                DenseStep::Gate {
                    matrix,
                    target,
                    controls,
                    noise_qubits,
                } => {
                    ctx.state.apply_controlled(controls, *target, matrix);
                    noise_qubits
                }
                DenseStep::Swap { a, b, noise_qubits } => {
                    ctx.state.apply_swap(*a, *b);
                    noise_qubits
                }
                DenseStep::Measure { qubit, clbit } => {
                    clbits[*clbit] = ctx.state.measure_qubit(*qubit, rng);
                    continue;
                }
                DenseStep::Reset { qubit } => {
                    ctx.state.reset_qubit(*qubit, rng);
                    continue;
                }
            };
            for &qubit in noise_qubits {
                for (index, channel) in program.channels.iter().enumerate() {
                    match channel.sample_error(rng) {
                        SampledError::None => {}
                        SampledError::Unitary(u) => {
                            error_events += 1;
                            ctx.state.apply_single(qubit, &program.unitaries[index][u]);
                        }
                        SampledError::Kraus => {
                            let branches = program.kraus[index]
                                .as_ref()
                                .expect("Kraus events only come from Kraus channels");
                            apply_damping(
                                &mut ctx.state,
                                &mut ctx.scratch,
                                qubit,
                                branches,
                                rng,
                                &mut error_events,
                            );
                        }
                    }
                }
            }
        }

        let outcome = if program.measured_any {
            pack_clbits(&clbits)
        } else {
            ctx.state.sample_measurement(rng)
        };
        SingleRun {
            outcome,
            clbits,
            error_events,
            dd_nodes: 0,
            dd_nodes_peak: 0,
            state: (),
        }
    }

    fn evaluate(
        &self,
        program: &DenseProgram,
        ctx: &mut DenseContext,
        _run: &mut SingleRun<()>,
        observable: &Observable,
    ) -> f64 {
        debug_assert_eq!(
            ctx.seated, program.id,
            "evaluate must use the context the run executed in"
        );
        match observable {
            Observable::BasisProbability(index) => ctx.state.probability_of_index(*index),
            Observable::QubitExcitation(qubit) => ctx.state.probability_one(*qubit),
            Observable::Fidelity(reference) => {
                let reference = StateVector::from_amplitudes(reference.clone());
                reference.fidelity(&ctx.state)
            }
        }
    }

    fn dedup_support(&self, program: &DenseProgram) -> Option<DedupSupport> {
        if !program.dedupable {
            return None;
        }
        let mut sites = Vec::new();
        for step in &program.steps {
            let noise_qubits = match step {
                DenseStep::Gate { noise_qubits, .. } | DenseStep::Swap { noise_qubits, .. } => {
                    noise_qubits
                }
                DenseStep::Measure { .. } | DenseStep::Reset { .. } => {
                    unreachable!("dedupable programs contain no measurements or resets")
                }
            };
            for _ in noise_qubits {
                sites.extend(program.channels.iter().copied().map(SiteChannel::Passive));
            }
        }
        Some(DedupSupport {
            plan: PresamplePlan::new(sites),
            prefix_steps: program.steps.len(),
            full: true,
        })
    }

    fn run_pattern(
        &self,
        program: &DenseProgram,
        ctx: &mut DenseContext,
        pattern: &ErrorPattern,
    ) -> SingleRun<()> {
        ctx.seat(program);
        let width = program.channels.len();
        let events = pattern.events();
        let mut next = 0usize;
        let mut site = 0u32;
        for step in &program.steps {
            let noise_qubits: &[usize] = match step {
                DenseStep::Gate {
                    matrix,
                    target,
                    controls,
                    noise_qubits,
                } => {
                    ctx.state.apply_controlled(controls, *target, matrix);
                    noise_qubits
                }
                DenseStep::Swap { a, b, noise_qubits } => {
                    ctx.state.apply_swap(*a, *b);
                    noise_qubits
                }
                DenseStep::Measure { .. } | DenseStep::Reset { .. } => {
                    unreachable!("dedupable programs contain no measurements or resets")
                }
            };
            let step_end = site + (noise_qubits.len() * width) as u32;
            while next < events.len() && events[next].site < step_end {
                let event = events[next];
                let position = (event.site - site) as usize;
                let qubit = noise_qubits[position / width];
                let channel = position % width;
                ctx.state
                    .apply_single(qubit, &program.unitaries[channel][event.error as usize]);
                next += 1;
            }
            site = step_end;
        }
        debug_assert_eq!(next, events.len(), "pattern events beyond the program");
        SingleRun {
            // Each member samples its own outcome from the shared state.
            outcome: 0,
            clbits: vec![false; program.num_clbits],
            error_events: events.len(),
            dd_nodes: 0,
            dd_nodes_peak: 0,
            state: (),
        }
    }

    fn sample_outcome(
        &self,
        program: &DenseProgram,
        ctx: &mut DenseContext,
        _run: &SingleRun<()>,
        rng: &mut StdRng,
    ) -> u64 {
        debug_assert_eq!(
            ctx.seated, program.id,
            "sample_outcome must use the context the pattern ran in"
        );
        ctx.state.sample_measurement(rng)
    }

    fn outcome_distribution(
        &self,
        program: &DenseProgram,
        ctx: &mut DenseContext,
        _run: &SingleRun<()>,
        sink: &mut dyn FnMut(u64, f64),
    ) {
        debug_assert_eq!(
            ctx.seated, program.id,
            "outcome_distribution must use the context the pattern ran in"
        );
        // Same outcome convention as `sample_measurement`: the amplitude
        // index with qubit 0 as the most significant bit.
        for (index, amplitude) in ctx.state.amplitudes().iter().enumerate() {
            let probability = amplitude.norm_sqr();
            if probability > 0.0 {
                sink(index as u64, probability);
            }
        }
    }
}

/// Applies the state-dependent amplitude-damping channel: the decay branch
/// fires with probability equal to the squared norm of `A0 |psi>`. The
/// probe state is built in `scratch` (reusing its allocation) and swapped
/// into place when the decay branch wins.
fn apply_damping(
    state: &mut StateVector,
    scratch: &mut StateVector,
    qubit: usize,
    branches: &[Matrix2; 2],
    rng: &mut StdRng,
    error_events: &mut usize,
) {
    scratch.clone_from(state);
    scratch.apply_single(qubit, &branches[0]);
    let p_decay = scratch.norm_sqr();
    if rng.gen::<f64>() < p_decay {
        *error_events += 1;
        scratch.normalize();
        std::mem::swap(state, scratch);
    } else {
        state.apply_single(qubit, &branches[1]);
        state.normalize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsdd_circuit::generators::ghz;
    use rand::SeedableRng;

    #[test]
    fn noiseless_ghz_yields_correlated_outcomes() {
        let backend = DenseSimulator::new();
        let circuit = ghz(6);
        let program = backend.compile(&circuit, &NoiseModel::noiseless());
        let mut ctx = backend.new_context();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let run = backend.run_shot(&program, &mut ctx, &mut rng);
            assert!(run.outcome == 0 || run.outcome == 0b111111);
        }
    }

    #[test]
    fn observables_match_dd_backend_for_noiseless_runs() {
        use crate::dd_backend::DdSimulator;
        let circuit = ghz(5);
        let noiseless = NoiseModel::noiseless();
        let dense = DenseSimulator::new();
        let dd = DdSimulator::new();
        let dense_program = dense.compile(&circuit, &noiseless);
        let dd_program = dd.compile(&circuit, &noiseless);
        let mut dense_ctx = dense.new_context();
        let mut dd_ctx = dd.new_context();
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(1);
        let mut run_a = dense.run_shot(&dense_program, &mut dense_ctx, &mut rng_a);
        let mut run_b = dd.run_shot(&dd_program, &mut dd_ctx, &mut rng_b);
        for observable in [
            Observable::BasisProbability(0),
            Observable::BasisProbability(31),
            Observable::QubitExcitation(3),
        ] {
            let a = dense.evaluate(&dense_program, &mut dense_ctx, &mut run_a, &observable);
            let b = dd.evaluate(&dd_program, &mut dd_ctx, &mut run_b, &observable);
            assert!(
                (a - b).abs() < 1e-10,
                "observable {observable:?}: dense {a} vs dd {b}"
            );
        }
    }

    #[test]
    fn damping_eventually_decays_an_excited_qubit() {
        let backend = DenseSimulator::new();
        let mut circuit = Circuit::new(1);
        // Many identity gates, each exposing the qubit to T1 decay.
        circuit.x(0);
        for _ in 0..200 {
            circuit.gate(qsdd_circuit::Gate::I, 0);
        }
        let noise = NoiseModel::new(0.0, 0.05, 0.0);
        let program = backend.compile(&circuit, &noise);
        let mut ctx = backend.new_context();
        let mut rng = StdRng::seed_from_u64(123);
        let mut decays = 0;
        for _ in 0..50 {
            let run = backend.run_shot(&program, &mut ctx, &mut rng);
            if run.outcome == 0 {
                decays += 1;
            }
        }
        // With 200 damping opportunities at 5% each, decay is near certain.
        assert!(decays >= 48, "only {decays} of 50 runs decayed");
    }

    #[test]
    fn reused_context_reproduces_fresh_context_shots_exactly() {
        let backend = DenseSimulator::new();
        let mut circuit = ghz(4);
        circuit.measure_all();
        let program = backend.compile(&circuit, &NoiseModel::paper_defaults());
        let mut reused = backend.new_context();
        for seed in 0..32u64 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let a = backend.run_shot(&program, &mut reused, &mut rng_a);
            let mut fresh = backend.new_context();
            let b = backend.run_shot(&program, &mut fresh, &mut rng_b);
            assert_eq!(a.outcome, b.outcome);
            assert_eq!(a.clbits, b.clbits);
            assert_eq!(a.error_events, b.error_events);
            assert_eq!(reused.state(), fresh.state(), "reuse changed the state");
        }
    }
}
