//! Weighted trajectory enumeration: exact mixtures instead of samples.
//!
//! The Monte-Carlo drivers ([`crate::stochastic`], [`crate::dedup`]) *sample*
//! error trajectories: every shot draws a pattern and the histogram converges
//! at the usual `1/sqrt(shots)` rate. Under realistic noise strengths that is
//! wasteful — a handful of patterns (no error, one error, …) carries almost
//! all of the probability mass, and their occurrence probabilities are known
//! in closed form. This module walks those patterns *deterministically*
//! ([`PatternEnumerator`]), simulates each enumerated trajectory exactly
//! once, and accumulates its **exact** outcome distribution scaled by the
//! pattern's probability. Shot count stops being the cost driver: the
//! enumerated mass is computed exactly, and shots only matter for the
//! residual tail.
//!
//! # The estimator
//!
//! Let `E` be the enumerated pattern set with total mass `M`, and `d_pi` the
//! exact outcome distribution of trajectory `pi`. The weighted estimate is
//!
//! ```text
//! d  =  sum_{pi in E} P(pi) d_pi  +  (1 - M) * t
//! ```
//!
//! where `t` is the empirical distribution of the **residual tail**:
//! rejection-sampled shots whose presampled pattern is *not* in `E` (plus
//! the live shots a state-dependent channel forces). The tail draws from the
//! exact conditional distribution given "not enumerated", so `d` is an
//! unbiased estimator of the true outcome distribution for every cutoff.
//! The tail is sized at `(1 - M)^2 * shots` draws (floored at a small
//! constant): its contribution is scaled by `1 - M`, so that many draws
//! already match the `1/sqrt(shots)` error scale of plain sampling while the
//! covered mass contributes no sampling noise at all.
//! With full coverage (`M = 1`) or [`WeightedOptions::exact_histogram`] the
//! tail is skipped and the histogram is exact (respectively, conditioned on
//! the covered mass).
//!
//! # Determinism
//!
//! The whole driver is serial, so results are bit-identical across repeat
//! runs and independent of any requested thread count. Tail shot `k`
//! derives its generator from the engine seed XOR a fixed salt — disjoint
//! from the ordinary shot streams, and stable under re-runs.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use qsdd_noise::{ErrorPattern, PatternEnumerator, Presampled, WeightedPattern};
use qsdd_telemetry::trace;
use qsdd_telemetry::Stage;

use crate::deadline::{Deadline, TimedOut};
use crate::estimator::Observable;
use crate::fxhash::FxHashMap;
use crate::shot_engine::{ExecContext, ShotEngine};
use crate::stochastic::{
    publish_job_metrics, run_engine_dedup_deadline, run_engine_in_deadline, shot_rng,
    trace_dd_attrs, trace_dd_stats, StochasticOutcome,
};

/// Largest circuit (in qubits) the weighted driver accepts: beyond this the
/// exact histogram can outgrow memory, so the engine falls back to sampling.
pub const MAX_WEIGHTED_QUBITS: usize = 20;

/// Salt XOR-ed into the engine seed for the tail candidate stream, keeping
/// it disjoint from the ordinary per-shot generators.
const TAIL_SALT: u64 = 0x7A11_5A17_D15C_0DE5;

/// Residual mass below this is treated as fully covered: no tail runs.
const RESIDUAL_EPSILON: f64 = 1e-12;

/// Per accepted tail shot, how many rejected candidates the sampler will
/// tolerate before giving up (a safety valve against a residual-mass
/// estimate that rounds a near-zero acceptance probability up).
const TAIL_CANDIDATE_FACTOR: u64 = 1000;

/// Floor on the tail sample size whenever a tail runs at all, so the
/// conditional shape of the residual is estimated from more than a couple
/// of draws even when the variance-matched size rounds to almost nothing.
const MIN_TAIL_SHOTS: u64 = 16;

/// Tuning knobs of the weighted-enumeration driver.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedOptions {
    /// Stop enumerating once this much probability mass is covered
    /// (`1.0` = enumerate everything the budget allows).
    pub mass_cutoff: f64,
    /// Hard cap on the number of enumerated trajectories.
    pub max_patterns: u64,
    /// Skip the residual tail entirely: the reported distribution is exact
    /// but conditioned on the covered mass (renormalised over it). Use when
    /// the histogram — not an unbiased estimate — is the deliverable.
    pub exact_histogram: bool,
}

impl Default for WeightedOptions {
    fn default() -> Self {
        WeightedOptions {
            mass_cutoff: 0.999,
            max_patterns: 1024,
            exact_histogram: false,
        }
    }
}

impl WeightedOptions {
    /// Sets the mass cutoff.
    pub fn with_mass_cutoff(mut self, cutoff: f64) -> Self {
        self.mass_cutoff = cutoff;
        self
    }

    /// Sets the enumeration budget.
    pub fn with_max_patterns(mut self, max: u64) -> Self {
        self.max_patterns = max;
        self
    }

    /// Enables or disables the exact-histogram mode (no tail shots).
    pub fn with_exact_histogram(mut self, exact: bool) -> Self {
        self.exact_histogram = exact;
        self
    }
}

/// What the weighted driver actually did, carried on
/// [`StochasticOutcome::weighted`].
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedStats {
    /// Probability mass of the enumerated trajectories.
    pub covered_mass: f64,
    /// Number of trajectories enumerated (and simulated exactly once each).
    pub enumerated_trajectories: u64,
    /// Number of residual-tail shots actually simulated (`0` with full
    /// coverage or [`WeightedOptions::exact_histogram`]).
    pub tail_shots: u64,
    /// The estimated outcome distribution (normalised, sorted by outcome).
    /// This is the exact deliverable; [`StochasticOutcome::counts`] is an
    /// integer rendering of it (largest-remainder rounding to `shots`).
    pub distribution: Vec<(u64, f64)>,
}

/// Runs the weighted-enumeration driver on a prepared [`ShotEngine`].
///
/// Enumerates error patterns in descending probability order (bounded by
/// `options`), simulates each once for its exact outcome distribution, and
/// covers the un-enumerated mass with `~residual^2 * shots` rejection-sampled
/// tail shots (see the module docs for the estimator and its sizing).
/// `shots` also sizes the integer histogram synthesised from the final
/// distribution.
///
/// Falls back to [`run_engine_dedup`] — same inputs, sampled estimator —
/// when the engine does not support weighted enumeration (mid-circuit
/// measurement/reset, more than [`MAX_WEIGHTED_QUBITS`] qubits, or an
/// unsupported channel kind); `threads` is only used by that fallback, the
/// weighted path itself is serial and bit-deterministic.
pub fn run_engine_weighted(
    engine: &ShotEngine,
    shots: usize,
    threads: usize,
    observables: &[Observable],
    options: &WeightedOptions,
) -> StochasticOutcome {
    run_engine_weighted_deadline(
        engine,
        shots,
        threads,
        observables,
        options,
        &Deadline::unbounded(),
    )
    .expect("an unbounded deadline never expires")
}

/// [`run_engine_weighted`] under a cooperative [`Deadline`], checked per
/// enumerated pattern and per tail candidate; on expiry the run returns
/// [`TimedOut`] with no partial results.
pub fn run_engine_weighted_deadline(
    engine: &ShotEngine,
    shots: usize,
    threads: usize,
    observables: &[Observable],
    options: &WeightedOptions,
    deadline: &Deadline,
) -> Result<StochasticOutcome, TimedOut> {
    if engine.weighted_plan().is_none() {
        return run_engine_dedup_deadline(engine, shots, threads, observables, deadline);
    }
    let mut ctx = engine.new_context();
    // The weighted driver is serial (one worker), so the engine's requested
    // intra-shot width is honoured as-is.
    ctx.set_intra_threads(engine.intra_threads());
    run_engine_weighted_in_deadline(engine, &mut ctx, shots, observables, options, deadline)
}

/// The in-context twin of [`run_engine_weighted`], for callers that own a
/// long-lived [`ExecContext`] (the server worker pool). Serial, on the
/// calling thread; results are bit-identical to [`run_engine_weighted`].
pub fn run_engine_weighted_in(
    engine: &ShotEngine,
    ctx: &mut ExecContext,
    shots: usize,
    observables: &[Observable],
    options: &WeightedOptions,
) -> StochasticOutcome {
    run_engine_weighted_in_deadline(
        engine,
        ctx,
        shots,
        observables,
        options,
        &Deadline::unbounded(),
    )
    .expect("an unbounded deadline never expires")
}

/// [`run_engine_weighted_in`] under a cooperative [`Deadline`] (see
/// [`run_engine_weighted_deadline`] for the check sites).
pub fn run_engine_weighted_in_deadline(
    engine: &ShotEngine,
    ctx: &mut ExecContext,
    shots: usize,
    observables: &[Observable],
    options: &WeightedOptions,
    deadline: &Deadline,
) -> Result<StochasticOutcome, TimedOut> {
    let started = Instant::now();
    let bounded = !deadline.is_unbounded();
    let Some(plan) = engine.weighted_plan() else {
        return run_engine_in_deadline(engine, ctx, shots, observables, true, deadline);
    };
    let dd_before = ctx.dd_table_stats();
    let mapped = engine.map_observables(observables);

    // Enumeration books under the presample stage: it is the weighted
    // counterpart of resolving shots' error decisions up front.
    let enumerate_started = Instant::now();
    let enumerate_span = trace::span("weighted_enumerate");
    let mut enumerator = PatternEnumerator::new(plan)
        .with_mass_cutoff(options.mass_cutoff)
        .with_max_patterns(options.max_patterns);
    let patterns: Vec<WeightedPattern> = enumerator.by_ref().collect();
    let covered = enumerator.covered_mass();
    let residual = enumerator.residual_mass();
    trace::attr("patterns", patterns.len());
    trace::attr("covered_mass", covered);
    drop(enumerate_span);
    let enumerate_time = enumerate_started.elapsed();
    // Tail candidate presampling also books under the presample stage.
    let mut tail_presample_time = std::time::Duration::ZERO;

    let execute_started = Instant::now();
    let patterns_span = trace::span("weighted_patterns");
    trace::attr("patterns", patterns.len());
    let patterns_dd_before = trace_dd_stats(ctx);
    let mut distribution: FxHashMap<u64, f64> = FxHashMap::default();
    let mut observable_sums = vec![0.0f64; mapped.len()];
    let mut error_events = 0u64;
    let mut nodes_sum = 0u64;
    let mut nodes_peak = 0u64;
    for weighted in &patterns {
        if bounded && deadline.expired() {
            return Err(TimedOut);
        }
        let probability = weighted.probability;
        let mut sink = |outcome: u64, p: f64| {
            *distribution.entry(outcome).or_insert(0.0) += probability * p;
        };
        let (sample, values) =
            engine.run_weighted_pattern_in(ctx, &weighted.pattern, &mapped, &mut sink);
        for (sum, value) in observable_sums.iter_mut().zip(&values) {
            *sum += probability * value;
        }
        error_events += sample.error_events;
        nodes_sum += sample.dd_nodes;
        nodes_peak = nodes_peak.max(sample.dd_nodes_peak);
    }
    trace_dd_attrs(ctx, patterns_dd_before);
    drop(patterns_span);
    let simulated = patterns.len() as u64;

    // Residual tail: rejection-sample the conditional distribution over the
    // un-enumerated patterns (and the live shots state-dependent channels
    // force). Sizing is variance-matched rather than proportional: the
    // enumerated mass carries zero sampling noise, so the tail only has to
    // resolve the residual's conditional shape. Its contribution to the
    // final distribution is scaled by `residual`, giving a standard error of
    // `residual / sqrt(n)` per outcome; matching the plain per-shot
    // baseline's `1 / sqrt(shots)` scale yields `n = residual^2 * shots`.
    // Proportional allocation (`residual * shots`) would over-sample —
    // and the residual trajectories are exactly the expensive ones (every
    // state-dependent live replay lands here), so it would also forfeit
    // most of the enumeration speedup.
    let mut tail_shots = 0u64;
    let run_tail = !options.exact_histogram && residual > RESIDUAL_EPSILON && shots > 0;
    if run_tail {
        let tail_span = trace::span("weighted_tail");
        trace::attr("residual_mass", residual);
        let enumerated: HashSet<&ErrorPattern> =
            patterns.iter().map(|weighted| &weighted.pattern).collect();
        let matched = (residual * residual * shots as f64).ceil() as u64;
        let target = matched.max(MIN_TAIL_SHOTS).min(shots as u64).max(1);
        let max_candidates = target.saturating_mul(TAIL_CANDIDATE_FACTOR);
        let salted = engine.seed() ^ TAIL_SALT;
        let mut tail_counts: FxHashMap<u64, u64> = FxHashMap::default();
        let mut tail_sums = vec![0.0f64; mapped.len()];
        let mut accepted = 0u64;
        let mut candidate = 0u64;
        while accepted < target && candidate < max_candidates {
            if bounded && deadline.expired() {
                return Err(TimedOut);
            }
            let k = candidate;
            candidate += 1;
            let presample_started = Instant::now();
            let mut rng = shot_rng(salted, k);
            let presampled = plan.presample(&mut rng);
            tail_presample_time += presample_started.elapsed();
            match presampled {
                Presampled::Pattern(pattern) => {
                    if enumerated.contains(&pattern) {
                        continue;
                    }
                    // The generator is positioned exactly after the covered
                    // exposures — the dedup group-member contract — so the
                    // member samples its outcome like any live shot would.
                    let mut members = vec![(accepted, rng)];
                    for (_, sample, values) in
                        engine.run_group_in(ctx, &pattern, &mut members, &mapped)
                    {
                        *tail_counts.entry(sample.outcome).or_insert(0) += 1;
                        for (sum, value) in tail_sums.iter_mut().zip(&values) {
                            *sum += value;
                        }
                        error_events += sample.error_events;
                        nodes_sum += sample.dd_nodes;
                        nodes_peak = nodes_peak.max(sample.dd_nodes_peak);
                    }
                }
                Presampled::Live => {
                    // State-dependent decision ahead: replay the candidate
                    // live from the top with a fresh generator (the stream
                    // prefix matches what the presampler consumed).
                    let mut rng = shot_rng(salted, k);
                    let (sample, values) = engine.run_with_rng_in(ctx, &mut rng, &mapped);
                    *tail_counts.entry(sample.outcome).or_insert(0) += 1;
                    for (sum, value) in tail_sums.iter_mut().zip(&values) {
                        *sum += value;
                    }
                    error_events += sample.error_events;
                    nodes_sum += sample.dd_nodes;
                    nodes_peak = nodes_peak.max(sample.dd_nodes_peak);
                }
            }
            accepted += 1;
        }
        if accepted > 0 {
            let scale = residual / accepted as f64;
            for (outcome, count) in tail_counts {
                *distribution.entry(outcome).or_insert(0.0) += scale * count as f64;
            }
            for (sum, tail_sum) in observable_sums.iter_mut().zip(&tail_sums) {
                *sum += scale * tail_sum;
            }
        }
        trace::attr("tail_shots", accepted);
        drop(tail_span);
        tail_shots = accepted;
    }
    let execute_time = execute_started
        .elapsed()
        .saturating_sub(tail_presample_time);
    let presample_time = enumerate_time + tail_presample_time;

    // Normalise over the mass actually accounted for (covered mass plus the
    // residual when the tail ran) so the distribution sums to 1 and the
    // observable sums become proper expectations.
    let aggregate_started = Instant::now();
    let aggregate_span = trace::span("aggregate");
    let accounted = if tail_shots > 0 {
        covered + residual
    } else {
        covered
    };
    let mut entries: Vec<(u64, f64)> = distribution.into_iter().collect();
    entries.sort_unstable_by_key(|&(outcome, _)| outcome);
    let total: f64 = entries.iter().map(|(_, p)| p).sum();
    if total > 0.0 {
        for (_, p) in &mut entries {
            *p /= total;
        }
    }
    if accounted > 0.0 {
        for sum in &mut observable_sums {
            *sum /= accounted;
        }
    }
    let counts = synthesize_counts(&entries, shots);
    drop(aggregate_span);

    let mut outcome = StochasticOutcome {
        counts,
        shots,
        observable_estimates: observable_sums,
        // Error events / node statistics describe the work actually
        // performed (enumerated simulations plus tail shots), not a
        // per-shot average — the whole point is that far fewer
        // simulations ran than `shots`.
        error_events,
        dd_nodes_avg: if simulated + tail_shots > 0 {
            nodes_sum as f64 / (simulated + tail_shots) as f64
        } else {
            0.0
        },
        dd_nodes_peak: nodes_peak,
        wall_time: started.elapsed(),
        threads: 1,
        dedup: None,
        weighted: Some(WeightedStats {
            covered_mass: covered,
            enumerated_trajectories: simulated,
            tail_shots,
            distribution: entries,
        }),
        stage_timings: qsdd_telemetry::StageTimings::new(),
    };
    outcome
        .stage_timings
        .record(Stage::Presample, presample_time);
    outcome.stage_timings.record(Stage::Execute, execute_time);
    outcome
        .stage_timings
        .record(Stage::Aggregate, aggregate_started.elapsed());
    outcome.stage_timings.merge(&engine.stage_timings());
    if ctx.intra_pool().is_some() {
        outcome
            .stage_timings
            .record(Stage::IntraExecute, execute_time);
    }
    publish_job_metrics(&outcome, ctx.dd_table_stats().since(&dd_before), ctx);
    Ok(outcome)
}

/// Renders a normalised distribution as an integer histogram of exactly
/// `shots` counts via largest-remainder rounding (ties towards the smaller
/// outcome), so every downstream counts consumer keeps working unchanged.
fn synthesize_counts(distribution: &[(u64, f64)], shots: usize) -> HashMap<u64, u64> {
    let mut counts = HashMap::new();
    if shots == 0 || distribution.is_empty() {
        return counts;
    }
    let shots = shots as u64;
    let mut floor_total = 0u64;
    let mut remainders: Vec<(f64, u64)> = Vec::with_capacity(distribution.len());
    for &(outcome, p) in distribution {
        let exact = p * shots as f64;
        let floor = exact.floor() as u64;
        if floor > 0 {
            counts.insert(outcome, floor);
        }
        floor_total += floor;
        remainders.push((exact - floor as f64, outcome));
    }
    // Distribute the leftover counts to the largest fractional remainders;
    // the outcome index breaks exact ties deterministically.
    let leftover = shots.saturating_sub(floor_total);
    remainders.sort_unstable_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("remainders are finite")
            .then_with(|| a.1.cmp(&b.1))
    });
    for &(_, outcome) in remainders.iter().take(leftover as usize) {
        *counts.entry(outcome).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::BackendKind;
    use qsdd_circuit::generators::ghz;
    use qsdd_noise::NoiseModel;
    use qsdd_transpile::OptLevel;

    fn engine(qubits: usize, noise: NoiseModel) -> ShotEngine {
        ShotEngine::new(
            &ghz(qubits),
            BackendKind::DecisionDiagram,
            noise,
            11,
            OptLevel::O0,
        )
    }

    #[test]
    fn full_coverage_is_exact_and_needs_no_tail() {
        let engine = engine(4, NoiseModel::noiseless().with_depolarizing(0.01));
        let options = WeightedOptions::default()
            .with_mass_cutoff(1.0)
            .with_max_patterns(u64::MAX);
        let outcome = run_engine_weighted(&engine, 1000, 1, &[], &options);
        let stats = outcome.weighted.expect("weighted path must engage");
        assert!((stats.covered_mass - 1.0).abs() < 1e-9);
        assert_eq!(stats.tail_shots, 0);
        let total: u64 = outcome.counts.values().sum();
        assert_eq!(total, 1000);
        let mass: f64 = stats.distribution.iter().map(|(_, p)| p).sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_runs_are_bit_identical_across_repeats() {
        let engine = engine(5, NoiseModel::paper_defaults());
        let options = WeightedOptions::default();
        let first = run_engine_weighted(&engine, 500, 1, &[], &options);
        let second = run_engine_weighted(&engine, 500, 8, &[], &options);
        assert_eq!(first.counts, second.counts);
        let (a, b) = (first.weighted.unwrap(), second.weighted.unwrap());
        assert_eq!(a.distribution.len(), b.distribution.len());
        for ((oa, pa), (ob, pb)) in a.distribution.iter().zip(&b.distribution) {
            assert_eq!(oa, ob);
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
    }

    #[test]
    fn unsupported_engines_fall_back_to_dedup() {
        use qsdd_circuit::Circuit;
        let mut circuit = Circuit::new(2);
        circuit.h(0);
        circuit.measure(0, 0);
        circuit.x(1);
        circuit.measure(1, 1);
        let engine = ShotEngine::new(
            &circuit,
            BackendKind::DecisionDiagram,
            NoiseModel::paper_defaults(),
            5,
            OptLevel::O0,
        );
        assert!(!engine.supports_weighted());
        let outcome = run_engine_weighted(&engine, 200, 1, &[], &WeightedOptions::default());
        assert!(outcome.weighted.is_none());
        assert_eq!(outcome.counts.values().sum::<u64>(), 200);
    }

    #[test]
    fn synthesize_counts_is_exact_and_deterministic() {
        let distribution = vec![(0u64, 0.5), (3, 0.25), (7, 0.25)];
        let counts = synthesize_counts(&distribution, 101);
        assert_eq!(counts.values().sum::<u64>(), 101);
        // 50.5 / 25.25 / 25.25: the halves tie, the smaller outcome wins
        // the leftover count (0 gets 51).
        assert_eq!(counts[&0], 51);
        assert_eq!(counts[&3], 25);
        assert_eq!(counts[&7], 25);
        assert!(synthesize_counts(&distribution, 0).is_empty());
        assert!(synthesize_counts(&[], 10).is_empty());
    }
}
